"""Seeded stochastic traffic generators.

The paper's §3.1 observation — "the writes happen when packets arrive from
a network and are probabilistic in nature" — is what creates the arbitrated
organization's non-deterministic latency.  These generators reproduce that
probabilistic producer behaviour reproducibly: every generator takes a
seed, so a benchmark run is repeatable while still exercising irregular
arrival patterns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .packet import Ipv4Packet, ip


@dataclass
class PacketFactory:
    """Generates destination/source-varied packets deterministically.

    The factory sits on the simulator's per-cycle hot path (one to two
    packets per cycle under dense traffic), so the draw is hand-inlined
    in :meth:`make_message`: it mirrors :meth:`random.Random.randrange`'s
    rejection sampling bit-for-bit on the same generator state, and the
    checksum is folded from the raw header words.  The packet *stream* —
    field values and RNG consumption — is identical to the original
    ``randrange``/``with_checksum`` formulation; committed golden traces
    depend on that, and ``tests/net/test_traffic.py`` pins it.
    """

    seed: int = 1
    ports: int = 4
    _rng: random.Random = field(init=False, repr=False)
    _sequence: int = field(default=0, init=False)
    _ports_bits: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._ports_bits = self.ports.bit_length()

    def make(self) -> Ipv4Packet:
        message = self.make_message()
        return Ipv4Packet(
            src_addr=message["src_addr"],
            dst_addr=message["dst_addr"],
            length=message["length"],
            ttl=64,
            checksum=message["checksum"],
            payload=message["payload"],
        )

    def make_message(self) -> dict[str, int]:
        """``make().to_message()`` without materializing the packet —
        what the attached simulation hook injects (interfaces carry
        message dicts; the dataclass would be built only to be
        flattened right back into one).

        Each ``getrandbits`` rejection loop replicates CPython's
        ``Random._randbelow_with_getrandbits`` exactly — ``randrange(n)``
        draws ``n.bit_length()`` bits and rejects values ``>= n`` — so
        the consumed bit stream matches the pre-inline code.
        """
        self._sequence += 1
        getrandbits = self._rng.getrandbits
        port = getrandbits(self._ports_bits)  # randrange(self.ports)
        while port >= self.ports:
            port = getrandbits(self._ports_bits)
        low = getrandbits(13)  # randrange(1 << 12): bit_length(4096) == 13
        while low >= 4096:
            low = getrandbits(13)
        step = getrandbits(5)  # randrange(0, 1400, 64): 64 * randbelow(22)
        while step >= 22:
            step = getrandbits(5)
        dst = (10 << 24) | (port << 16) | low
        src = 0xC0A80000 | (1 + self._sequence % 254)  # 192.168.0.x
        length = 64 + 64 * step
        # RFC 1071 ones'-complement fold over the header words.
        total = (
            length
            + ((64 << 8) | 17)  # the {ttl, protocol} word
            + (src >> 16)
            + (src & 0xFFFF)
            + (dst >> 16)
            + (dst & 0xFFFF)
        )
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        return {
            "length": length,
            "port_in": 0,
            "port_out": 0,
            "src_addr": src,
            "dst_addr": dst,
            "ttl": 64,
            "protocol": 17,
            "checksum": (~total) & 0xFFFF,
            "payload": self._sequence,
        }


class TrafficGenerator:
    """Base class: yields 0..n packets per cycle."""

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        raise NotImplementedError

    def messages_at(self, cycle: int) -> list[dict[str, int]]:
        """The same arrivals as :meth:`packets_at`, already in interface
        message form — the attached hook's path.  Subclasses with a
        :class:`PacketFactory` override this with ``make_message`` to
        skip the packet dataclass; the base fallback guarantees any
        generator stays attachable.  Call one or the other per cycle,
        never both: each call consumes the cycle's RNG draw."""
        return [packet.to_message() for packet in self.packets_at(cycle)]

    def attach(self, rx_interface) -> "_AttachedHook":
        """A kernel pre-cycle hook that injects this generator's packets."""
        return _AttachedHook(self, rx_interface)


@dataclass
class _AttachedHook:
    """Pre-cycle hook injecting a generator's packets into an rx queue.

    The hook draws ``generator.packets_at(c)`` exactly once per cycle,
    in increasing cycle order — whether the kernel executes every cycle
    (the reference kernel calls ``__call__`` per cycle) or skips idle
    stretches (the fast kernel calls :meth:`next_wake` to look ahead).
    Lookahead draws are buffered and delivered at their exact cycles,
    so the generator's RNG stream and the injected packet sequence are
    identical under both kernels.
    """

    generator: TrafficGenerator
    rx_interface: object
    injected: int = 0
    #: cycles ``< _drawn_until`` have been drawn from the generator
    _drawn_until: int = field(default=0, init=False, repr=False)
    #: drawn-ahead arrivals not yet injected, keyed by cycle
    _buffered: dict = field(default_factory=dict, init=False, repr=False)

    #: compiled-kernel fast-path contract: this hook reads nothing from
    #: the kernel and mutates only the rx queue, so a generated span may
    #: keep running it without falling back to interpreted ticks
    mutates_only_rx = True

    def _draw_through(self, cycle: int) -> None:
        while self._drawn_until <= cycle:
            messages = self.generator.messages_at(self._drawn_until)
            if messages:
                self._buffered[self._drawn_until] = messages
            self._drawn_until += 1

    def __call__(self, cycle: int, kernel) -> None:
        self._draw_through(cycle)
        for message in self._buffered.pop(cycle, ()):
            self.rx_interface.push(message)
            self.injected += 1

    def prepare_span(self, start: int, end: int):
        """Compiled-kernel batched path: pre-draw every arrival through
        cycle ``end - 1`` and expose the internal buffer.

        The caller (a generated ``run_span``) pops each cycle it
        executes from the returned dict, pushes the messages itself, and
        adds to :attr:`injected` — exactly what ``__call__`` would have
        done cycle by cycle, minus the per-cycle function calls.  The
        RNG draw order is untouched (the pre-draw is the same lookahead
        the wheel kernel's ``next_wake`` uses), and arrivals left
        unpopped on an early exit stay buffered for later delivery.
        """
        if self._drawn_until < end:
            span = getattr(self.generator, "messages_span", None)
            if span is None:
                self._draw_through(end - 1)
            else:
                # span cycles start at _drawn_until, so the keys cannot
                # collide with anything already buffered
                self._buffered.update(span(self._drawn_until, end))
                self._drawn_until = end
        return self._buffered

    def next_wake(self, cycle: int, limit: int, kernel):
        """Earliest arrival in ``(cycle, limit]``; ``None`` if silent.

        Part of the fast-kernel hook wake contract: the kernel only
        skips a cycle range after every hook has bounded it.  Draws at
        most through ``limit``, preserving the once-per-cycle order.
        """
        pending = [c for c in self._buffered if c > cycle]
        while self._drawn_until <= limit:
            drawn = self._drawn_until
            messages = self.generator.messages_at(drawn)
            self._drawn_until += 1
            if messages:
                self._buffered[drawn] = messages
                if drawn > cycle:
                    pending.append(drawn)
                    break  # drawn in order: this is the earliest new one
        return min(pending) if pending else None


@dataclass
class BernoulliTraffic(TrafficGenerator):
    """Independent per-cycle arrival with probability ``rate``."""

    rate: float
    seed: int = 1
    factory: Optional[PacketFactory] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be a probability")
        self._rng = random.Random(self.seed)
        if self.factory is None:
            self.factory = PacketFactory(seed=self.seed + 1)

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        if self._rng.random() < self.rate:
            return [self.factory.make()]
        return []

    def messages_at(self, cycle: int) -> list[dict[str, int]]:
        if self._rng.random() < self.rate:
            return [self.factory.make_message()]
        return []

    def messages_span(self, start: int, end: int) -> dict[int, list]:
        """Batched ``messages_at`` over ``[start, end)``: identical
        draws in identical order, keyed by cycle (arrival cycles only).
        The compiled kernel's span pre-draw uses this to skip the
        per-cycle method call and empty-list churn."""
        rng_random = self._rng.random
        rate = self.rate
        make_message = self.factory.make_message
        arrivals: dict[int, list] = {}
        for cycle in range(start, end):
            if rng_random() < rate:
                arrivals[cycle] = [make_message()]
        return arrivals


@dataclass
class PoissonTraffic(TrafficGenerator):
    """Geometric inter-arrival gaps (the discrete-time Poisson analogue)."""

    mean_gap: float
    seed: int = 1
    factory: Optional[PacketFactory] = None
    _rng: random.Random = field(init=False, repr=False)
    _next_arrival: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.mean_gap < 1.0:
            raise ValueError("mean gap must be at least one cycle")
        self._rng = random.Random(self.seed)
        if self.factory is None:
            self.factory = PacketFactory(seed=self.seed + 1)
        self._next_arrival = self._gap()

    def _gap(self) -> int:
        # Geometric with mean self.mean_gap.
        p = 1.0 / self.mean_gap
        gap = 1
        while self._rng.random() > p:
            gap += 1
        return gap

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        if cycle >= self._next_arrival:
            self._next_arrival = cycle + self._gap()
            return [self.factory.make()]
        return []

    def messages_at(self, cycle: int) -> list[dict[str, int]]:
        if cycle >= self._next_arrival:
            self._next_arrival = cycle + self._gap()
            return [self.factory.make_message()]
        return []


@dataclass
class BurstyTraffic(TrafficGenerator):
    """On/off bursts: back-to-back packets during bursts, silence between."""

    burst_len: int = 8
    gap_len: int = 24
    seed: int = 1
    factory: Optional[PacketFactory] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.burst_len <= 0 or self.gap_len < 0:
            raise ValueError("burst length must be positive, gap non-negative")
        self._rng = random.Random(self.seed)
        if self.factory is None:
            self.factory = PacketFactory(seed=self.seed + 1)

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        period = self.burst_len + self.gap_len
        if (cycle % period) < self.burst_len:
            return [self.factory.make()]
        return []

    def messages_at(self, cycle: int) -> list[dict[str, int]]:
        period = self.burst_len + self.gap_len
        if (cycle % period) < self.burst_len:
            return [self.factory.make_message()]
        return []


@dataclass
class DeterministicTraffic(TrafficGenerator):
    """One packet every ``interval`` cycles — the control case."""

    interval: int = 4
    factory: Optional[PacketFactory] = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.factory is None:
            self.factory = PacketFactory(seed=7)

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        if cycle % self.interval == 0:
            return [self.factory.make()]
        return []

    def messages_at(self, cycle: int) -> list[dict[str, int]]:
        if cycle % self.interval == 0:
            return [self.factory.make_message()]
        return []


def replay(generator: TrafficGenerator, cycles: int) -> Iterator[tuple[int, Ipv4Packet]]:
    """Offline expansion of a generator over a cycle range."""
    for cycle in range(cycles):
        for packet in generator.packets_at(cycle):
            yield cycle, packet
