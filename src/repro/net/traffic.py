"""Seeded stochastic traffic generators.

The paper's §3.1 observation — "the writes happen when packets arrive from
a network and are probabilistic in nature" — is what creates the arbitrated
organization's non-deterministic latency.  These generators reproduce that
probabilistic producer behaviour reproducibly: every generator takes a
seed, so a benchmark run is repeatable while still exercising irregular
arrival patterns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .packet import Ipv4Packet, ip


@dataclass
class PacketFactory:
    """Generates destination/source-varied packets deterministically."""

    seed: int = 1
    ports: int = 4
    _rng: random.Random = field(init=False, repr=False)
    _sequence: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def make(self) -> Ipv4Packet:
        self._sequence += 1
        dst = ip(10, self._rng.randrange(self.ports), 0, 0) | self._rng.randrange(
            1 << 12
        )
        src = ip(192, 168, 0, 1 + (self._sequence % 254))
        return Ipv4Packet(
            src_addr=src,
            dst_addr=dst,
            length=64 + self._rng.randrange(0, 1400, 64),
            ttl=64,
            payload=self._sequence,
        ).with_checksum()


class TrafficGenerator:
    """Base class: yields 0..n packets per cycle."""

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        raise NotImplementedError

    def attach(self, rx_interface) -> "_AttachedHook":
        """A kernel pre-cycle hook that injects this generator's packets."""
        return _AttachedHook(self, rx_interface)


@dataclass
class _AttachedHook:
    """Pre-cycle hook injecting a generator's packets into an rx queue.

    The hook draws ``generator.packets_at(c)`` exactly once per cycle,
    in increasing cycle order — whether the kernel executes every cycle
    (the reference kernel calls ``__call__`` per cycle) or skips idle
    stretches (the fast kernel calls :meth:`next_wake` to look ahead).
    Lookahead draws are buffered and delivered at their exact cycles,
    so the generator's RNG stream and the injected packet sequence are
    identical under both kernels.
    """

    generator: TrafficGenerator
    rx_interface: object
    injected: int = 0
    #: cycles ``< _drawn_until`` have been drawn from the generator
    _drawn_until: int = field(default=0, init=False, repr=False)
    #: drawn-ahead arrivals not yet injected, keyed by cycle
    _buffered: dict = field(default_factory=dict, init=False, repr=False)

    def _draw_through(self, cycle: int) -> None:
        while self._drawn_until <= cycle:
            packets = self.generator.packets_at(self._drawn_until)
            if packets:
                self._buffered[self._drawn_until] = packets
            self._drawn_until += 1

    def __call__(self, cycle: int, kernel) -> None:
        self._draw_through(cycle)
        for packet in self._buffered.pop(cycle, ()):
            self.rx_interface.push(packet.to_message())
            self.injected += 1

    def next_wake(self, cycle: int, limit: int, kernel):
        """Earliest arrival in ``(cycle, limit]``; ``None`` if silent.

        Part of the fast-kernel hook wake contract: the kernel only
        skips a cycle range after every hook has bounded it.  Draws at
        most through ``limit``, preserving the once-per-cycle order.
        """
        pending = [c for c in self._buffered if c > cycle]
        while self._drawn_until <= limit:
            drawn = self._drawn_until
            packets = self.generator.packets_at(drawn)
            self._drawn_until += 1
            if packets:
                self._buffered[drawn] = packets
                if drawn > cycle:
                    pending.append(drawn)
                    break  # drawn in order: this is the earliest new one
        return min(pending) if pending else None


@dataclass
class BernoulliTraffic(TrafficGenerator):
    """Independent per-cycle arrival with probability ``rate``."""

    rate: float
    seed: int = 1
    factory: Optional[PacketFactory] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be a probability")
        self._rng = random.Random(self.seed)
        if self.factory is None:
            self.factory = PacketFactory(seed=self.seed + 1)

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        if self._rng.random() < self.rate:
            return [self.factory.make()]
        return []


@dataclass
class PoissonTraffic(TrafficGenerator):
    """Geometric inter-arrival gaps (the discrete-time Poisson analogue)."""

    mean_gap: float
    seed: int = 1
    factory: Optional[PacketFactory] = None
    _rng: random.Random = field(init=False, repr=False)
    _next_arrival: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.mean_gap < 1.0:
            raise ValueError("mean gap must be at least one cycle")
        self._rng = random.Random(self.seed)
        if self.factory is None:
            self.factory = PacketFactory(seed=self.seed + 1)
        self._next_arrival = self._gap()

    def _gap(self) -> int:
        # Geometric with mean self.mean_gap.
        p = 1.0 / self.mean_gap
        gap = 1
        while self._rng.random() > p:
            gap += 1
        return gap

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        if cycle >= self._next_arrival:
            self._next_arrival = cycle + self._gap()
            return [self.factory.make()]
        return []


@dataclass
class BurstyTraffic(TrafficGenerator):
    """On/off bursts: back-to-back packets during bursts, silence between."""

    burst_len: int = 8
    gap_len: int = 24
    seed: int = 1
    factory: Optional[PacketFactory] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.burst_len <= 0 or self.gap_len < 0:
            raise ValueError("burst length must be positive, gap non-negative")
        self._rng = random.Random(self.seed)
        if self.factory is None:
            self.factory = PacketFactory(seed=self.seed + 1)

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        period = self.burst_len + self.gap_len
        if (cycle % period) < self.burst_len:
            return [self.factory.make()]
        return []


@dataclass
class DeterministicTraffic(TrafficGenerator):
    """One packet every ``interval`` cycles — the control case."""

    interval: int = 4
    factory: Optional[PacketFactory] = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.factory is None:
            self.factory = PacketFactory(seed=7)

    def packets_at(self, cycle: int) -> list[Ipv4Packet]:
        if cycle % self.interval == 0:
            return [self.factory.make()]
        return []


def replay(generator: TrafficGenerator, cycles: int) -> Iterator[tuple[int, Ipv4Packet]]:
    """Offline expansion of a generator over a cycle range."""
    for cycle in range(cycles):
        for packet in generator.packets_at(cycle):
            yield cycle, packet
