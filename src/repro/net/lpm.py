"""Longest-prefix-match forwarding table.

The core function of the IP forwarder: map a destination address to an
egress port.  The implementation keeps one exact-match dictionary per
prefix length and probes from /32 down — simple, correct, and fast enough
for simulation (the paper's hardware version is the ~1000-slice "core
forwarding function" whose area we treat as a constant, §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .packet import format_ip


@dataclass(frozen=True)
class Route:
    """One routing entry."""

    prefix: int
    prefix_len: int
    egress_port: int

    def __str__(self) -> str:
        return f"{format_ip(self.prefix)}/{self.prefix_len} -> port {self.egress_port}"


def _mask(prefix_len: int) -> int:
    if prefix_len == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF


@dataclass
class LpmTable:
    """Longest-prefix-match table over IPv4 destinations."""

    default_port: int = 0
    _by_length: dict[int, dict[int, Route]] = field(default_factory=dict)

    def add_route(self, prefix: int, prefix_len: int, egress_port: int) -> Route:
        """Insert a route; the prefix is masked to its length."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length {prefix_len} out of range")
        if egress_port < 0:
            raise ValueError("egress port must be non-negative")
        masked = prefix & _mask(prefix_len)
        route = Route(masked, prefix_len, egress_port)
        self._by_length.setdefault(prefix_len, {})[masked] = route
        return route

    def remove_route(self, prefix: int, prefix_len: int) -> None:
        masked = prefix & _mask(prefix_len)
        table = self._by_length.get(prefix_len, {})
        if masked not in table:
            raise KeyError(
                f"no route {format_ip(masked)}/{prefix_len}"
            )
        del table[masked]

    def lookup(self, dst_addr: int) -> int:
        """The egress port of the longest matching prefix (or the default)."""
        route = self.lookup_route(dst_addr)
        return route.egress_port if route is not None else self.default_port

    def lookup_route(self, dst_addr: int) -> Optional[Route]:
        for prefix_len in sorted(self._by_length, reverse=True):
            masked = dst_addr & _mask(prefix_len)
            route = self._by_length[prefix_len].get(masked)
            if route is not None:
                return route
        return None

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_length.values())

    def routes(self) -> list[Route]:
        return sorted(
            (route for entries in self._by_length.values()
             for route in entries.values()),
            key=lambda r: (-r.prefix_len, r.prefix),
        )

    def as_function(self) -> Callable[[int], int]:
        """The table as a combinational-function stand-in for the hic
        ``lpm_lookup`` intrinsic (plugged into the simulator)."""
        return self.lookup


def demo_table(ports: int = 4) -> LpmTable:
    """A small deterministic table spreading 10.x/16 prefixes over ports."""
    from .packet import ip

    table = LpmTable(default_port=0)
    for i in range(ports):
        table.add_route(ip(10, i, 0, 0), 16, i % max(1, ports))
    table.add_route(ip(192, 168, 0, 0), 24, ports % max(1, ports + 1))
    return table
