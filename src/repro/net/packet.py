"""IPv4 packet model matching the hic ``message`` layout.

The paper's evaluation uses "a simple Internet Protocol (IP) packet
forwarding application"; this module provides the packet representation the
traffic generators emit and the forwarding threads process.  Field names
mirror :data:`repro.hic.types.MESSAGE_FIELDS`, so a packet converts to the
message dictionary the simulator's interfaces carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hic.types import MESSAGE_FIELDS


def ip(a: int, b: int, c: int, d: int) -> int:
    """Dotted-quad helper: ``ip(10, 0, 0, 1)`` -> the 32-bit address."""
    for octet in (a, b, c, d):
        if not 0 <= octet <= 255:
            raise ValueError(f"octet {octet} out of range")
    return (a << 24) | (b << 16) | (c << 8) | d


def format_ip(addr: int) -> str:
    """Inverse of :func:`ip`."""
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Ipv4Packet:
    """One packet, with the header fields the forwarding path touches."""

    src_addr: int
    dst_addr: int
    length: int = 64
    ttl: int = 64
    protocol: int = 17  # UDP
    port_in: int = 0
    port_out: int = 0
    checksum: int = 0
    payload: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 255:
            raise ValueError(f"ttl {self.ttl} out of range")
        if not 20 <= self.length <= 65535:
            raise ValueError(f"length {self.length} out of range")

    # -- checksum --------------------------------------------------------------------

    def header_words(self) -> list[int]:
        """The 16-bit header words covered by the checksum (checksum field
        itself excluded, per RFC 791)."""
        return [
            self.length & 0xFFFF,
            ((self.ttl & 0xFF) << 8) | (self.protocol & 0xFF),
            (self.src_addr >> 16) & 0xFFFF,
            self.src_addr & 0xFFFF,
            (self.dst_addr >> 16) & 0xFFFF,
            self.dst_addr & 0xFFFF,
        ]

    def compute_checksum(self) -> int:
        """RFC 1071 ones'-complement sum over the header words."""
        total = sum(self.header_words())
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        return (~total) & 0xFFFF

    def with_checksum(self) -> "Ipv4Packet":
        return replace(self, checksum=self.compute_checksum())

    @property
    def checksum_ok(self) -> bool:
        return self.checksum == self.compute_checksum()

    # -- forwarding transformations ----------------------------------------------------

    @staticmethod
    def incremental_checksum_update(
        checksum: int, old_word: int, new_word: int
    ) -> int:
        """RFC 1624 incremental checksum update: recompute the header
        checksum after one 16-bit header word changed (the TTL decrement
        case in a forwarder), without touching the other words:
        ``HC' = ~(~HC + ~m + m')``."""
        total = (~checksum & 0xFFFF) + (~old_word & 0xFFFF) + (new_word & 0xFFFF)
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        return (~total) & 0xFFFF

    @staticmethod
    def ttl_checksum_update(checksum: int, ttl: int, protocol: int) -> int:
        """The forwarder's specific case: the {TTL, protocol} word after a
        TTL decrement."""
        old_word = ((ttl & 0xFF) << 8) | (protocol & 0xFF)
        new_word = (((ttl - 1) & 0xFF) << 8) | (protocol & 0xFF)
        return Ipv4Packet.incremental_checksum_update(
            checksum, old_word, new_word
        )

    def forwarded(self, egress_port: int) -> "Ipv4Packet":
        """The packet after one forwarding hop: TTL decremented, egress
        port stamped, checksum updated."""
        if self.ttl == 0:
            raise ValueError("cannot forward a packet with TTL 0")
        return replace(
            self, ttl=self.ttl - 1, port_out=egress_port
        ).with_checksum()

    @property
    def expired(self) -> bool:
        return self.ttl <= 1

    # -- message conversion --------------------------------------------------------------

    def to_message(self) -> dict[str, int]:
        """The simulator-interface representation (field name -> value)."""
        values = {
            "length": self.length,
            "port_in": self.port_in,
            "port_out": self.port_out,
            "src_addr": self.src_addr,
            "dst_addr": self.dst_addr,
            "ttl": self.ttl,
            "protocol": self.protocol,
            "checksum": self.checksum,
            "payload": self.payload,
        }
        assert set(values) == set(MESSAGE_FIELDS)
        return values

    @classmethod
    def from_message(cls, message: dict[str, int]) -> "Ipv4Packet":
        return cls(
            src_addr=message.get("src_addr", 0),
            dst_addr=message.get("dst_addr", 0),
            length=message.get("length", 64),
            ttl=message.get("ttl", 64),
            protocol=message.get("protocol", 17),
            port_in=message.get("port_in", 0),
            port_out=message.get("port_out", 0),
            checksum=message.get("checksum", 0),
            payload=message.get("payload", 0),
        )
