"""The IP packet-forwarding reference application (paper §4).

The evaluation scenarios map "two, four, and eight pseudo-ports
representing varying number of consumers for a single producer" onto one
BRAM: a classifier thread receives packets, computes the forwarding
decision (longest-prefix-match on the destination, TTL decrement), and
produces the decision word that N egress threads consume.

:func:`forwarding_source` emits the hic program for a scenario;
:func:`forwarding_functions` binds the ``lpm_lookup`` intrinsic to a real
:class:`~repro.net.lpm.LpmTable`.  The constants below carry the paper's
in-text area figures used by the E4 overhead experiment.
"""

from __future__ import annotations

from typing import Callable

from .lpm import LpmTable, demo_table
from .packet import Ipv4Packet

#: §4: "the total amount of area devoted to the core functionality of the
#: IP forwarding is about 1000 slices".
CORE_FORWARDING_SLICES = 1000

#: §4: "The two-port IP forwarding application ... used a total of 5430
#: slices".
APP_TOTAL_SLICES = 5430

#: §4: "the area overhead can vary from 5-20%".
OVERHEAD_BAND = (0.05, 0.20)


def forwarding_source(consumers: int, with_io: bool = True) -> str:
    """The hic text of the forwarding application with ``consumers``
    egress threads consuming the classifier's decision word.

    Args:
        consumers: Number of consumer (egress) threads — the paper sweeps
            2, 4, 8.
        with_io: Include the network interfaces and receive/transmit
            statements.  Disable for pure synchronization studies where no
            traffic generator is attached (the classifier then free-runs).
    """
    if consumers < 1:
        raise ValueError("need at least one consumer thread")

    lines: list[str] = []
    if with_io:
        lines.append("#interface{eth_in, gige}")
        lines.append("#interface{eth_out, gige}")
    lines.append("#constant{ttl_floor, 1}")

    links = ", ".join(f"[egress{i},d{i}]" for i in range(consumers))
    lines.append("thread classify () {")
    if with_io:
        lines.append("  message pkt;")
    lines.append("  int decision, dst, t;")
    if with_io:
        lines.append("  receive(pkt, eth_in);")
        lines.append("  dst = pkt.dst_addr;")
        lines.append("  t = pkt.ttl;")
        lines.append("  if (t > ttl_floor) {")
        lines.append(
            "    pkt.checksum = ttl_checksum(pkt.checksum, t, pkt.protocol);"
        )
        lines.append("    pkt.ttl = t - 1;")
        lines.append(f"    #consumer{{fw,{links}}}")
        lines.append("    decision = lpm_lookup(dst);")
        lines.append("    transmit(pkt, eth_out);")
        lines.append("  }")
    else:
        lines.append("  dst = dst + 1;")
        lines.append(f"  #consumer{{fw,{links}}}")
        lines.append("  decision = lpm_lookup(dst);")
    lines.append("}")

    for i in range(consumers):
        lines.append(f"thread egress{i} () {{")
        lines.append(f"  int d{i}, queued{i};")
        lines.append("  #producer{fw,[classify,decision]}")
        lines.append(f"  d{i} = g(decision, queued{i});")
        lines.append(f"  if (d{i} == {i}) {{")
        lines.append(f"    queued{i} = queued{i} + 1;")
        lines.append("  }")
        lines.append("}")

    return "\n".join(lines)


def forwarding_functions(
    table: LpmTable | None = None,
) -> dict[str, Callable[..., int]]:
    """The intrinsic bindings for the forwarding application.

    ``lpm_lookup`` resolves against a real LPM table; ``ttl_checksum`` is
    the RFC 1624 incremental header-checksum update for the TTL decrement;
    ``g`` models the egress-side queue-admission function (deterministic).
    """
    if table is None:
        table = demo_table()

    def g(decision: int, queued: int) -> int:
        # The egress thread extracts the port from the decision word.
        return decision & 0xFF

    return {
        "lpm_lookup": table.as_function(),
        "ttl_checksum": Ipv4Packet.ttl_checksum_update,
        "g": g,
    }


def multi_pair_source(pairs: int, consumers_per_pair: int = 1) -> str:
    """Several independent producer/consumer pairs sharing one BRAM — the
    configuration §3.1 calls out as the source of non-deterministic timing
    ("more than one producer-consumer pairs are mapped to the same BRAM").
    """
    if pairs < 1:
        raise ValueError("need at least one pair")
    lines: list[str] = []
    for p in range(pairs):
        links = ", ".join(
            f"[sink{p}_{c},v{p}_{c}]" for c in range(consumers_per_pair)
        )
        lines.append(f"thread src{p} () {{")
        lines.append(f"  int data{p}, seq{p};")
        lines.append(f"  seq{p} = seq{p} + 1;")
        lines.append(f"  #consumer{{dep{p},{links}}}")
        lines.append(f"  data{p} = f(seq{p});")
        lines.append("}")
        for c in range(consumers_per_pair):
            lines.append(f"thread sink{p}_{c} () {{")
            lines.append(f"  int v{p}_{c}, acc{p}_{c};")
            lines.append(f"  #producer{{dep{p},[src{p},data{p}]}}")
            lines.append(f"  v{p}_{c} = g(data{p}, acc{p}_{c});")
            lines.append("}")
    return "\n".join(lines)
