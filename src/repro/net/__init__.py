"""Networking substrate: packets, routing, traffic, and the IP forwarder.

* :mod:`~repro.net.packet` — IPv4 packets with checksum and message
  conversion;
* :mod:`~repro.net.lpm` — the longest-prefix-match forwarding table;
* :mod:`~repro.net.traffic` — seeded stochastic traffic generators
  (Bernoulli, Poisson-like, bursty, deterministic);
* :mod:`~repro.net.forwarding` — the paper's IP-forwarding evaluation
  application in hic, with its intrinsic bindings and area constants.
"""

from .forwarding import (
    APP_TOTAL_SLICES,
    CORE_FORWARDING_SLICES,
    OVERHEAD_BAND,
    forwarding_functions,
    forwarding_source,
    multi_pair_source,
)
from .lpm import LpmTable, Route, demo_table
from .packet import Ipv4Packet, format_ip, ip
from .traffic import (
    BernoulliTraffic,
    BurstyTraffic,
    DeterministicTraffic,
    PacketFactory,
    PoissonTraffic,
    TrafficGenerator,
    replay,
)

__all__ = [
    "APP_TOTAL_SLICES",
    "CORE_FORWARDING_SLICES",
    "OVERHEAD_BAND",
    "forwarding_functions",
    "forwarding_source",
    "multi_pair_source",
    "LpmTable",
    "Route",
    "demo_table",
    "Ipv4Packet",
    "format_ip",
    "ip",
    "BernoulliTraffic",
    "BurstyTraffic",
    "DeterministicTraffic",
    "PacketFactory",
    "PoissonTraffic",
    "TrafficGenerator",
    "replay",
]
