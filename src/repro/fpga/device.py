"""Virtex-II Pro device models.

The paper's evaluation targets a Xilinx XC2VP20 with ISE 6.3 SP3.  This
module provides the family's resource tables and the fabric timing
constants used by the estimation models.  Slice/BRAM counts follow the
Virtex-II Pro data sheet; the delay constants are -6 speed-grade-class
*model* values chosen once for the whole reproduction (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FabricTiming:
    """Fabric delay constants, in nanoseconds."""

    #: Register clock-to-out plus downstream setup (one FF-to-FF overhead).
    clk_to_q_plus_setup: float = 1.6
    #: One LUT level including its average local routing.
    per_logic_level: float = 0.42
    #: Extra setup into a BRAM address/write port.
    bram_setup: float = 0.0

    def period_ns(self, logic_levels: int) -> float:
        return (
            self.clk_to_q_plus_setup
            + self.bram_setup
            + logic_levels * self.per_logic_level
        )

    def fmax_mhz(self, logic_levels: int) -> float:
        return 1000.0 / self.period_ns(logic_levels)


@dataclass(frozen=True)
class Device:
    """One Virtex-II Pro family member."""

    name: str
    slices: int
    bram_blocks: int
    multipliers: int
    ppc_cores: int
    timing: FabricTiming = FabricTiming()

    @property
    def luts(self) -> int:
        return self.slices * 2

    @property
    def ffs(self) -> int:
        return self.slices * 2

    def fits(self, slices: int, brams: int = 0) -> bool:
        return slices <= self.slices and brams <= self.bram_blocks


#: Virtex-II Pro family table (data-sheet resource counts).
VIRTEX2PRO_FAMILY: dict[str, Device] = {
    device.name: device
    for device in (
        Device("XC2VP2", slices=1408, bram_blocks=12, multipliers=12, ppc_cores=0),
        Device("XC2VP4", slices=3008, bram_blocks=28, multipliers=28, ppc_cores=1),
        Device("XC2VP7", slices=4928, bram_blocks=44, multipliers=44, ppc_cores=1),
        Device("XC2VP20", slices=9280, bram_blocks=88, multipliers=88, ppc_cores=2),
        Device("XC2VP30", slices=13696, bram_blocks=136, multipliers=136, ppc_cores=2),
        Device("XC2VP50", slices=23616, bram_blocks=232, multipliers=232, ppc_cores=2),
    )
}

#: The paper's target part.
XC2VP20 = VIRTEX2PRO_FAMILY["XC2VP20"]


def device(name: str) -> Device:
    """Look up a family member by part name."""
    if name not in VIRTEX2PRO_FAMILY:
        raise KeyError(
            f"unknown Virtex-II Pro part {name!r}; "
            f"known: {sorted(VIRTEX2PRO_FAMILY)}"
        )
    return VIRTEX2PRO_FAMILY[name]
