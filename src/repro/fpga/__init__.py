"""FPGA device models and estimation (the ISE substitute).

* :mod:`~repro.fpga.device` — Virtex-II Pro family table and fabric
  timing constants (the paper's XC2VP20 target);
* :mod:`~repro.fpga.packing` — LUT/FF to slice packing;
* :mod:`~repro.fpga.area` — area estimation over generated netlists;
* :mod:`~repro.fpga.timing` — critical-path to fmax estimation against
  the paper's 125 MHz target.
"""

from .area import (
    AreaReport,
    UtilizationReport,
    estimate_area,
    estimate_design,
    overhead_fraction,
)
from .device import (
    VIRTEX2PRO_FAMILY,
    XC2VP20,
    Device,
    FabricTiming,
    device,
)
from .packing import (
    DEFAULT_EFFICIENCY,
    FFS_PER_SLICE,
    LUTS_PER_SLICE,
    SliceCount,
    pack,
)
from .timing import (
    PAPER_TARGET_MHZ,
    TimingReport,
    compare_organizations,
    estimate_timing,
)

__all__ = [
    "AreaReport",
    "UtilizationReport",
    "estimate_area",
    "estimate_design",
    "overhead_fraction",
    "VIRTEX2PRO_FAMILY",
    "XC2VP20",
    "Device",
    "FabricTiming",
    "device",
    "DEFAULT_EFFICIENCY",
    "FFS_PER_SLICE",
    "LUTS_PER_SLICE",
    "SliceCount",
    "pack",
    "PAPER_TARGET_MHZ",
    "TimingReport",
    "compare_organizations",
    "estimate_timing",
]
