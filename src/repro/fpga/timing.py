"""Timing estimation: critical path to achievable clock frequency.

Each generated module documents its critical paths as LUT-level counts
(:meth:`repro.rtl.netlist.Module.note_path`); this module converts the
worst one into a period/fmax with the device's fabric constants and checks
it against a target clock — reproducing the §4 experiment where each
configuration was placed and routed against a 125 MHz target.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtl.netlist import Module
from .device import Device, XC2VP20

#: The paper's target clock rate for every scenario (§4).
PAPER_TARGET_MHZ = 125.0


@dataclass(frozen=True)
class TimingReport:
    """Result of timing estimation for one module."""

    module: str
    critical_path: str
    logic_levels: int
    period_ns: float
    fmax_mhz: float
    target_mhz: float

    @property
    def meets_target(self) -> bool:
        return self.fmax_mhz >= self.target_mhz

    @property
    def slack_ns(self) -> float:
        """Positive slack means the target period has margin."""
        return (1000.0 / self.target_mhz) - self.period_ns

    def render(self) -> str:
        status = "MET" if self.meets_target else "FAILED"
        return (
            f"{self.module}: {self.fmax_mhz:.0f} MHz "
            f"(period {self.period_ns:.2f} ns, {self.logic_levels} levels "
            f"on {self.critical_path}); target {self.target_mhz:.0f} MHz "
            f"{status} (slack {self.slack_ns:+.2f} ns)"
        )


def estimate_timing(
    module: Module,
    device: Device = XC2VP20,
    target_mhz: float = PAPER_TARGET_MHZ,
) -> TimingReport:
    """Estimate the achievable frequency of a module hierarchy."""
    path_name, levels = module.worst_path()
    period = device.timing.period_ns(levels)
    return TimingReport(
        module=module.name,
        critical_path=path_name,
        logic_levels=levels,
        period_ns=period,
        fmax_mhz=1000.0 / period,
        target_mhz=target_mhz,
    )


@dataclass
class FabricTimingReport:
    """Timing of a multi-bank fabric: banks and crossbar as pipeline stages."""

    banks: list[TimingReport]
    crossbar: TimingReport

    @property
    def worst(self) -> TimingReport:
        """The stage limiting the fabric clock (longest period)."""
        return max(self.banks + [self.crossbar], key=lambda r: r.period_ns)

    @property
    def fmax_mhz(self) -> float:
        return self.worst.fmax_mhz

    @property
    def meets_target(self) -> bool:
        return self.worst.meets_target

    def render(self) -> str:
        lines = [
            f"fabric fmax {self.fmax_mhz:.0f} MHz "
            f"(limited by {self.worst.module})"
        ]
        for report in self.banks + [self.crossbar]:
            lines.append("  " + report.render())
        return "\n".join(lines)


def estimate_fabric_timing(
    bank_modules: dict[str, Module],
    crossbar_module: Module,
    device: Device = XC2VP20,
    target_mhz: float = PAPER_TARGET_MHZ,
) -> FabricTimingReport:
    """Timing of a fabric: the clock is set by the slowest stage.

    Banks and crossbar are register-bounded stages (the crossbar's link
    registers decouple them), so the fabric period is the max of the stage
    periods — and since the crossbar's routing path deepens with the bank
    count, the fabric period is monotonically non-decreasing in banks.
    """
    banks = [
        estimate_timing(module, device, target_mhz)
        for __, module in sorted(bank_modules.items())
    ]
    crossbar = estimate_timing(crossbar_module, device, target_mhz)
    return FabricTimingReport(banks=banks, crossbar=crossbar)


def compare_organizations(
    arbitrated: Module, event_driven: Module, device: Device = XC2VP20
) -> dict[str, TimingReport]:
    """Timing of both organizations for the same scenario (E3)."""
    return {
        "arbitrated": estimate_timing(arbitrated, device),
        "event_driven": estimate_timing(event_driven, device),
    }
