"""Area estimation from generated netlists.

Sums macro-primitive costs over a module hierarchy and packs them into
Virtex-II Pro slices.  This is the reproduction's substitute for ISE map
results: the LUT/FF columns of the paper's Tables 1 and 2 come from
exactly this walk over the generated wrapper structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.netlist import Module
from .device import Device, XC2VP20
from .packing import DEFAULT_EFFICIENCY, SliceCount, pack


@dataclass(frozen=True)
class AreaReport:
    """Area of one module (hierarchy included)."""

    module: str
    luts: int
    ffs: int
    brams: int
    slices: int

    def table_row(self) -> tuple[int, int, int]:
        """(LUT, FF, Slices) in the paper's table column order."""
        return (self.luts, self.ffs, self.slices)


@dataclass
class UtilizationReport:
    """Device-level utilization of a full design."""

    device: Device
    total: AreaReport
    per_module: list[AreaReport] = field(default_factory=list)

    @property
    def slice_utilization(self) -> float:
        return self.total.slices / self.device.slices

    @property
    def bram_utilization(self) -> float:
        if self.device.bram_blocks == 0:
            return 0.0
        return self.total.brams / self.device.bram_blocks

    @property
    def fits(self) -> bool:
        return self.device.fits(self.total.slices, self.total.brams)

    def render(self) -> str:
        lines = [
            f"device {self.device.name}: "
            f"{self.total.slices}/{self.device.slices} slices "
            f"({100 * self.slice_utilization:.1f}%), "
            f"{self.total.brams}/{self.device.bram_blocks} BRAMs"
        ]
        for report in self.per_module:
            lines.append(
                f"  {report.module:<32} LUT={report.luts:<5} FF={report.ffs:<5}"
                f" slices={report.slices}"
            )
        return "\n".join(lines)


def estimate_area(
    module: Module, efficiency: float = DEFAULT_EFFICIENCY
) -> AreaReport:
    """Estimate one module's area (its whole hierarchy)."""
    luts = module.total_luts()
    ffs = module.total_ffs()
    packed: SliceCount = pack(luts, ffs, efficiency)
    return AreaReport(
        module=module.name,
        luts=luts,
        ffs=ffs,
        brams=module.total_brams(),
        slices=packed.slices,
    )


def estimate_design(
    top: Module,
    device: Device = XC2VP20,
    efficiency: float = DEFAULT_EFFICIENCY,
) -> UtilizationReport:
    """Estimate a top-level design against a device."""
    per_module = []
    for instance in top.instances:
        if isinstance(instance.component, Module):
            per_module.append(estimate_area(instance.component, efficiency))
    total = estimate_area(top, efficiency)
    return UtilizationReport(device=device, total=total, per_module=per_module)


@dataclass
class FabricAreaReport:
    """Area of a multi-bank fabric: per-bank wrappers plus the crossbar."""

    banks: list[AreaReport]
    crossbar: AreaReport
    total: AreaReport

    def render(self) -> str:
        lines = [
            f"fabric ({len(self.banks)} banks): LUT={self.total.luts} "
            f"FF={self.total.ffs} BRAM={self.total.brams} "
            f"slices={self.total.slices}"
        ]
        for report in self.banks + [self.crossbar]:
            lines.append(
                f"  {report.module:<32} LUT={report.luts:<5} "
                f"FF={report.ffs:<5} slices={report.slices}"
            )
        return "\n".join(lines)


def estimate_fabric_area(
    bank_modules: dict[str, Module],
    crossbar_module: Module,
    efficiency: float = DEFAULT_EFFICIENCY,
) -> FabricAreaReport:
    """Aggregate fabric area: every bank wrapper plus the crossbar.

    The totals are the sum of the parts (the fabric adds no logic of its
    own beyond the crossbar), so area grows monotonically with the bank
    count: each extra bank contributes a whole wrapper plus a crossbar
    output column.
    """
    banks = [
        estimate_area(module, efficiency)
        for __, module in sorted(bank_modules.items())
    ]
    crossbar = estimate_area(crossbar_module, efficiency)
    parts = banks + [crossbar]
    luts = sum(r.luts for r in parts)
    ffs = sum(r.ffs for r in parts)
    packed = pack(luts, ffs, efficiency)
    total = AreaReport(
        module="fabric",
        luts=luts,
        ffs=ffs,
        brams=sum(r.brams for r in parts),
        slices=packed.slices,
    )
    return FabricAreaReport(banks=banks, crossbar=crossbar, total=total)


def overhead_fraction(wrapper: AreaReport, core_slices: int) -> float:
    """The §4 overhead metric: wrapper slices as a fraction of the
    application's core-function slices (~1000 for the IP forwarder)."""
    if core_slices <= 0:
        raise ValueError("core slice count must be positive")
    return wrapper.slices / core_slices
