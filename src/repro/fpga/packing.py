"""Slice packing model.

A Virtex-II Pro slice holds two 4-input LUTs and two flip-flops.  Perfect
packing would need ``max(ceil(LUT/2), ceil(FF/2))`` slices; real placement
pairs unrelated LUTs/FFs imperfectly (control sets, carry chains, timing-
driven spreading), which the model captures with a packing efficiency
factor.  The default of 0.85 reflects typical ISE-era map results for
control-dominated logic like these wrappers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: LUTs (and FFs) per slice on Virtex-II Pro.
LUTS_PER_SLICE = 2
FFS_PER_SLICE = 2

#: Default packing efficiency (fraction of slice capacity actually used).
DEFAULT_EFFICIENCY = 0.85


@dataclass(frozen=True)
class SliceCount:
    """The packed result."""

    luts: int
    ffs: int
    slices: int

    @property
    def lut_limited(self) -> bool:
        return self.luts >= self.ffs


def pack(luts: int, ffs: int, efficiency: float = DEFAULT_EFFICIENCY) -> SliceCount:
    """Pack LUTs and FFs into slices.

    LUT-FF pairs sharing a slice are the common case (a LUT followed by its
    output register), so the slice count is driven by the larger of the two
    populations, inflated by the packing efficiency.
    """
    if luts < 0 or ffs < 0:
        raise ValueError("resource counts cannot be negative")
    if not 0 < efficiency <= 1:
        raise ValueError("efficiency must be in (0, 1]")
    if luts == 0 and ffs == 0:
        return SliceCount(0, 0, 0)
    lut_slices = luts / LUTS_PER_SLICE
    ff_slices = ffs / FFS_PER_SLICE
    slices = int(math.ceil(max(lut_slices, ff_slices) / efficiency))
    return SliceCount(luts=luts, ffs=ffs, slices=max(1, slices))
