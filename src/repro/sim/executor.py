"""FSM thread executor: interprets synthesized thread FSMs cycle by cycle.

Each :class:`ThreadExecutor` owns one thread's datapath state (its register
environment) and walks its FSM under the two-phase protocol of
:mod:`repro.sim.kernel`:

* **phase 1** — the executor performs the current state's register-only
  work, or submits its memory request / checks its interface;
* **phase 2** — after the memory controllers arbitrate, granted executors
  absorb read data and take a transition; blocked executors stay put (the
  hardware analogue: the FSM state register holds).

Expression evaluation is exact two's-complement 32-bit arithmetic, with
hic's combinational functions (``f``, ``g``, ``h``, the forwarding lookup,
…) resolved through a caller-supplied function table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.controller import MemRequest, MemResult, MemoryController
from ..hic import ast
from ..hic.semantic import CheckedProgram
from ..hic.types import MESSAGE_FIELDS
from ..memory.allocation import MemoryMap, Residency
from ..synth.fsm import (
    ComputeOp,
    MemReadOp,
    MemWriteOp,
    ReceiveOp,
    ThreadFsm,
    TransmitOp,
)

MASK32 = (1 << 32) - 1


def _free_names(expr: ast.Expr, acc: set) -> set:
    """Collect register names an expression reads (for park analysis)."""
    if isinstance(expr, ast.Name):
        acc.add(expr.ident)
    elif isinstance(expr, ast.Unary):
        _free_names(expr.operand, acc)
    elif isinstance(expr, ast.Binary):
        _free_names(expr.left, acc)
        _free_names(expr.right, acc)
    elif isinstance(expr, ast.Conditional):
        _free_names(expr.cond, acc)
        _free_names(expr.then_value, acc)
        _free_names(expr.else_value, acc)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            _free_names(arg, acc)
    return acc


@dataclass
class ParkClass:
    """Static classification of one FSM state for the fast kernel.

    A state is *parkable* when re-running :meth:`ThreadExecutor.phase1`
    in it is provably a no-op on the architectural state (registers,
    memories, interfaces) apart from per-cycle statistics and the
    re-assertion of the same memory request lines.  The three parkable
    shapes mirror how a blocked FSM state holds in hardware:

    * ``"mem"`` — blocked on a memory request: the request lines stay
      asserted with the same address/data every cycle;
    * ``"recv"`` — blocked on an empty ingress queue: nothing happens
      until a message arrives;
    * ``"terminal"`` — no transition can fire and the state's ops are
      register-idempotent: the FSM holds forever.

    ``kind is None`` means the state is not parkable (e.g. it transmits
    a message per cycle, or a register feeds back on itself) — the fast
    kernel then executes it cycle by cycle, which is always correct.
    """

    kind: Optional[str]
    #: interfaces a "recv" park waits on (unpark when any has backlog)
    rx_interfaces: tuple = ()
    #: the last MemReadOp of a "mem" park (phase 2 absorbs into its dest)
    waiting_read: Optional[MemReadOp] = None
    #: memory ops of a "mem" park, in submission order
    mem_ops: tuple = ()


def _classify_state(state) -> ParkClass:
    """Compute the :class:`ParkClass` of one FSM state.

    The idempotence condition: executing the op list a second time with
    the environment produced by the first execution must yield the same
    environment and the same memory requests.  Sequential evaluation
    makes this hold exactly when no evaluated expression reads a
    register written by a compute op at the *same or a later* position
    (forward-only dataflow) — a self-increment like ``i = i + 1`` or a
    read-before-write pair re-executes differently and disqualifies.
    """
    has_recv = any(isinstance(op, ReceiveOp) for op in state.ops)
    has_tx = any(isinstance(op, TransmitOp) for op in state.ops)
    mem_ops = tuple(
        op for op in state.ops if isinstance(op, (MemReadOp, MemWriteOp))
    )
    if has_tx or (has_recv and mem_ops):
        # A transmit fires every held cycle; a mixed receive+memory
        # state would consume messages while blocked.  Never park.
        return ParkClass(kind=None)

    # Registers a grant writes in phase 2: an expression reading one
    # would re-evaluate differently after a granted-but-not-advancing
    # cycle, so such states are never parked.
    read_dests = {
        op.dest for op in state.ops if isinstance(op, MemReadOp)
    }

    # Forward-only dataflow check over every evaluated expression.
    for index, op in enumerate(state.ops):
        exprs = []
        if isinstance(op, ComputeOp):
            exprs.append(op.expr)
        elif isinstance(op, (MemReadOp, MemWriteOp)):
            if op.offset_expr is not None:
                exprs.append(op.offset_expr)
            if isinstance(op, MemWriteOp):
                exprs.append(op.value_expr)
        if not exprs:
            continue
        later_dests = {
            later.dest
            for later in state.ops[index:]
            if isinstance(later, ComputeOp)
        }
        reads: set = set()
        for expr in exprs:
            _free_names(expr, reads)
        if reads & (later_dests | read_dests):
            return ParkClass(kind=None)

    if mem_ops:
        waiting = None
        for op in mem_ops:
            if isinstance(op, MemReadOp):
                waiting = op
        return ParkClass(kind="mem", waiting_read=waiting, mem_ops=mem_ops)
    if has_recv:
        interfaces = tuple(
            op.interface for op in state.ops if isinstance(op, ReceiveOp)
        )
        return ParkClass(kind="recv", rx_interfaces=interfaces)
    # Compute-only (or empty) state: parkable when held as a terminal
    # wait state — phase 2 proved no transition fires, and the frozen
    # environment keeps every guard false.
    return ParkClass(kind="terminal")


def to_signed(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value & (1 << 31) else value


def to_unsigned(value: int) -> int:
    return value & MASK32


def default_intrinsic(name: str) -> Callable[..., int]:
    """A deterministic stand-in for an unknown combinational function.

    Mixes the arguments with a Knuth multiplicative hash salted by the
    function name, so distinct functions produce distinct (but repeatable)
    results — adequate for exercising dataflow without the real logic.
    """
    salt = sum(ord(c) for c in name)

    def fn(*args: int) -> int:
        acc = salt & MASK32
        for arg in args:
            acc = (acc * 2654435761 + (arg & MASK32) + 1) & MASK32
        return acc

    return fn


class RxInterface:
    """Ingress side of a network interface: a message queue the traffic
    generator fills and receive states drain."""

    def __init__(self, name: str):
        self.name = name
        self._queue: list[dict[str, int]] = []
        self.delivered = 0

    def push(self, message: dict[str, int]) -> None:
        self._queue.append(dict(message))

    def pop(self) -> Optional[dict[str, int]]:
        if not self._queue:
            return None
        self.delivered += 1
        return self._queue.pop(0)

    @property
    def backlog(self) -> int:
        return len(self._queue)


class TxInterface:
    """Egress side: collects transmitted messages with timestamps."""

    def __init__(self, name: str):
        self.name = name
        self.messages: list[tuple[int, dict[str, int]]] = []

    def push(self, cycle: int, message: dict[str, int]) -> None:
        self.messages.append((cycle, dict(message)))

    @property
    def count(self) -> int:
        return len(self.messages)


@dataclass
class ExecutorStats:
    """Per-thread execution statistics."""

    cycles: int = 0
    stall_cycles: int = 0
    state_visits: dict[str, int] = field(default_factory=dict)
    rounds_completed: int = 0
    #: state transitions actually taken — the watchdog's progress signal
    advances: int = 0

    @property
    def utilization(self) -> float:
        if self.cycles == 0:
            return 0.0
        return 1.0 - self.stall_cycles / self.cycles


class ThreadExecutor:
    """Cycle-level interpreter for one synthesized thread FSM."""

    def __init__(
        self,
        checked: CheckedProgram,
        memory_map: MemoryMap,
        fsm: ThreadFsm,
        controllers: dict[str, MemoryController],
        functions: Optional[dict[str, Callable[..., int]]] = None,
        rx_interfaces: Optional[dict[str, RxInterface]] = None,
        tx_interfaces: Optional[dict[str, TxInterface]] = None,
        guarded_port_override: Optional[dict[str, str]] = None,
    ):
        self._checked = checked
        self._map = memory_map
        self.fsm = fsm
        self._controllers = controllers
        self._functions = dict(functions or {})
        self._rx = rx_interfaces or {}
        self._tx = tx_interfaces or {}
        #: remap guarded ports per organization: the event-driven wrapper
        #: serves both producer writes and consumer reads on port "B".
        self._port_override = guarded_port_override or {}

        self.env: dict[str, int] = {}
        for name, value in checked.constants.items():
            self.env[name] = to_unsigned(value)
        self.state_name = fsm.initial
        self.stats = ExecutorStats()
        #: per-state :class:`ParkClass` cache for the fast kernel
        self._park_classes: dict[str, ParkClass] = {}
        #: architectural state at the last completed round — the
        #: phase-insensitive snapshot golden-trace comparison diffs
        self.last_round_env: Optional[dict[str, int]] = None
        self._waiting_read: Optional[MemReadOp] = None
        #: last request constructed per micro-op (keyed by op identity):
        #: a stalled thread re-asserts the same request lines every
        #: cycle, so reusing the frozen object skips re-construction —
        #: and gives observers a stable identity across stall cycles
        self._req_cache: dict[int, MemRequest] = {}
        self._op_index = 0
        self._blocked = False

    # -- expression evaluation ------------------------------------------------------

    def evaluate(self, expr: ast.Expr) -> int:
        """Evaluate a rewritten (register-only) expression to 32 bits."""
        if isinstance(expr, ast.IntLiteral):
            return to_unsigned(expr.value)
        if isinstance(expr, ast.CharLiteral):
            return expr.value & 0xFF
        if isinstance(expr, ast.BoolLiteral):
            return int(expr.value)
        if isinstance(expr, ast.Name):
            return to_unsigned(self.env.get(expr.ident, 0))
        if isinstance(expr, ast.Unary):
            operand = self.evaluate(expr.operand)
            if expr.op == "-":
                return to_unsigned(-to_signed(operand))
            if expr.op == "!":
                return int(operand == 0)
            if expr.op == "~":
                return to_unsigned(~operand)
            raise ValueError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Conditional):
            if self.evaluate(expr.cond):
                return self.evaluate(expr.then_value)
            return self.evaluate(expr.else_value)
        if isinstance(expr, ast.Call):
            args = [self.evaluate(a) for a in expr.args]
            fn = self._functions.get(expr.callee)
            if fn is None:
                fn = default_intrinsic(expr.callee)
                self._functions[expr.callee] = fn
            return to_unsigned(fn(*args))
        raise TypeError(
            f"cannot evaluate {type(expr).__name__} at simulation time"
        )

    def _eval_binary(self, expr: ast.Binary) -> int:
        op = expr.op
        left = self.evaluate(expr.left)
        if op == "&&":
            return int(bool(left) and bool(self.evaluate(expr.right)))
        if op == "||":
            return int(bool(left) or bool(self.evaluate(expr.right)))
        right = self.evaluate(expr.right)
        sl, sr = to_signed(left), to_signed(right)
        if op == "+":
            return to_unsigned(sl + sr)
        if op == "-":
            return to_unsigned(sl - sr)
        if op == "*":
            return to_unsigned(sl * sr)
        if op == "/":
            if sr == 0:
                return MASK32  # hardware divide-by-zero convention
            return to_unsigned(int(sl / sr))
        if op == "%":
            if sr == 0:
                return 0
            return to_unsigned(sl - int(sl / sr) * sr)
        if op == "<<":
            return to_unsigned(left << (right & 31))
        if op == ">>":
            return to_unsigned(left >> (right & 31))
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(sl < sr)
        if op == "<=":
            return int(sl <= sr)
        if op == ">":
            return int(sl > sr)
        if op == ">=":
            return int(sl >= sr)
        raise ValueError(f"unknown binary operator {op!r}")

    # -- cycle protocol ---------------------------------------------------------------

    @property
    def state(self):
        return self.fsm.states[self.state_name]

    def phase1(self, cycle: int) -> None:
        """Do register work or submit this state's memory/interface request."""
        self.stats.cycles += 1
        self.stats.state_visits[self.state_name] = (
            self.stats.state_visits.get(self.state_name, 0) + 1
        )
        self._blocked = False
        state = self.state
        ops = state.ops
        if not ops:
            return

        for op in ops:
            if isinstance(op, ComputeOp):
                self.env[op.dest] = self.evaluate(op.expr)
            elif isinstance(op, MemReadOp):
                self._submit_read(op)
            elif isinstance(op, MemWriteOp):
                self._submit_write(op)
            elif isinstance(op, ReceiveOp):
                self._try_receive(op, cycle)
            elif isinstance(op, TransmitOp):
                self._do_transmit(op, cycle)
            else:  # pragma: no cover
                raise TypeError(f"unknown micro-op {type(op).__name__}")

    def _address_of(self, op) -> int:
        address = op.base_address
        if op.offset_expr is not None:
            address += to_signed(self.evaluate(op.offset_expr))
        return address

    def _port_for(self, op) -> str:
        if op.dep_id is not None:
            return self._port_override.get(op.port, op.port)
        return op.port

    def _submit_read(self, op: MemReadOp) -> None:
        controller = self._controllers[op.bram]
        port = self._port_for(op)
        address = self._address_of(op)
        request = self._req_cache.get(id(op))
        if (
            request is None
            or request.port != port
            or request.address != address
        ):
            request = MemRequest(
                client=self.fsm.thread,
                port=port,
                address=address,
                write=False,
                dep_id=op.dep_id,
            )
            self._req_cache[id(op)] = request
        controller.submit(request)
        self._waiting_read = op
        self._blocked = True  # resolved in phase 2 if granted

    def _submit_write(self, op: MemWriteOp) -> None:
        controller = self._controllers[op.bram]
        port = self._port_for(op)
        address = self._address_of(op)
        data = self.evaluate(op.value_expr)
        request = self._req_cache.get(id(op))
        if (
            request is None
            or request.port != port
            or request.address != address
            or request.data != data
        ):
            request = MemRequest(
                client=self.fsm.thread,
                port=port,
                address=address,
                write=True,
                data=data,
                dep_id=op.dep_id,
            )
            self._req_cache[id(op)] = request
        controller.submit(request)
        self._blocked = True

    def _try_receive(self, op: ReceiveOp, cycle: int) -> None:
        rx = self._rx.get(op.interface)
        message = rx.pop() if rx is not None else None
        if message is None:
            self._blocked = True
            return
        self._store_message(op.target, message)

    def _do_transmit(self, op: TransmitOp, cycle: int) -> None:
        tx = self._tx.get(op.interface)
        if tx is not None:
            tx.push(cycle, self._load_message(op.source))

    # -- message storage (interface-side DMA over the dedicated port) ----------------

    def _message_placement(self, var: str):
        placement = self._map.placements.get((self.fsm.thread, var))
        if placement is None or placement.residency is not Residency.BRAM:
            raise KeyError(
                f"message variable {self.fsm.thread}.{var} is not BRAM-resident"
            )
        return placement

    def _store_message(self, var: str, message: dict[str, int]) -> None:
        placement = self._message_placement(var)
        bram = self._controllers[placement.bram].bram
        for index, field_name in enumerate(MESSAGE_FIELDS):
            bram.write(
                placement.base_address + index, message.get(field_name, 0)
            )

    def _load_message(self, var: str) -> dict[str, int]:
        placement = self._message_placement(var)
        bram = self._controllers[placement.bram].bram
        return {
            field_name: bram.peek(placement.base_address + index)
            for index, field_name in enumerate(MESSAGE_FIELDS)
        }

    # -- phase 2 ------------------------------------------------------------------------

    def phase2(self, results: dict[str, dict[str, MemResult]]) -> None:
        """Absorb grants and advance the state register."""
        state = self.state
        if self._blocked:
            granted = False
            if state.memory_ops:
                op = state.memory_ops[0]
                result = results.get(op.bram, {}).get(self.fsm.thread)
                if result is not None and result.granted:
                    granted = True
                    if self._waiting_read is not None:
                        self.env[self._waiting_read.dest] = result.data
            if not granted:
                self.stats.stall_cycles += 1
                self._waiting_read = None
                return
        self._waiting_read = None
        self._advance()

    def _advance(self) -> None:
        state = self.state
        for transition in state.transitions:
            if transition.guard is None or self.evaluate(transition.guard):
                if transition.target == self.fsm.initial:
                    self.stats.rounds_completed += 1
                    self.last_round_env = dict(self.env)
                self.state_name = transition.target
                self.stats.advances += 1
                return
        # A state with no matching transition holds (terminal wait state).
        self.stats.stall_cycles += 1

    # -- fast-kernel park protocol (see repro.sim.wheel) ----------------------------

    def park_class(self) -> ParkClass:
        """The (cached) park classification of the current state."""
        park = self._park_classes.get(self.state_name)
        if park is None:
            park = _classify_state(self.state)
            self._park_classes[self.state_name] = park
        return park

    def build_park_requests(self, park: ParkClass) -> tuple:
        """Rebuild the memory requests a parked "mem" state re-asserts.

        Evaluated against the (frozen) register environment, so each
        rebuilt request equals the one the last real :meth:`phase1`
        submitted — the park idempotence condition guarantees the
        address/value expressions are stable while the state holds.
        :class:`MemRequest` is frozen, so the same objects are safely
        resubmitted every parked cycle.
        """
        requests = []
        for op in park.mem_ops:
            if isinstance(op, MemReadOp):
                requests.append(
                    (
                        op.bram,
                        MemRequest(
                            client=self.fsm.thread,
                            port=self._port_for(op),
                            address=self._address_of(op),
                            write=False,
                            dep_id=op.dep_id,
                        ),
                    )
                )
            else:
                requests.append(
                    (
                        op.bram,
                        MemRequest(
                            client=self.fsm.thread,
                            port=self._port_for(op),
                            address=self._address_of(op),
                            write=True,
                            data=self.evaluate(op.value_expr),
                            dep_id=op.dep_id,
                        ),
                    )
                )
        return tuple(requests)

    def parked_phase1(
        self, cycle: int, park: ParkClass, requests: tuple
    ) -> None:
        """Equivalent of :meth:`phase1` for a parked state, O(ops) avoided.

        Replays exactly the per-cycle effects a held state has: the
        statistics tick, the blocked flag, and (for "mem" parks) the
        re-asserted request lines.  Register work is skipped — the park
        idempotence condition proved it a no-op on the frozen
        environment.
        """
        self.stats.cycles += 1
        self.stats.state_visits[self.state_name] = (
            self.stats.state_visits.get(self.state_name, 0) + 1
        )
        if park.kind == "terminal":
            # phase 2 is skipped for terminal parks; account its stall
            # here (no transition can fire on the frozen environment).
            self._blocked = False
            self.stats.stall_cycles += 1
            return
        self._blocked = True
        if park.kind == "mem":
            for bram, request in requests:
                self._controllers[bram].submit(request)
            # phase 2's blocked path clears this every ungranted cycle.
            self._waiting_read = park.waiting_read

    def park_idle(self, count: int) -> None:
        """Account ``count`` skipped cycles spent parked in this state.

        Mirrors the per-cycle increments the reference kernel performs
        for a held state: every parked shape stalls every cycle (a
        blocked "mem"/"recv" state stalls in phase 2, a "terminal"
        state stalls in ``_advance``).
        """
        self.stats.cycles += count
        self.stats.stall_cycles += count
        self.stats.state_visits[self.state_name] = (
            self.stats.state_visits.get(self.state_name, 0) + count
        )
