"""Event-wheel fast simulation kernel.

The reference :class:`~repro.sim.kernel.SimulationKernel` ticks every
component every cycle.  The paper's controllers are *reactive*: an
arbitrated wrapper (§3.1) only changes state when a request is granted,
the event-driven organization (§3.2) is modulo-scheduled, and blocked
FSM states simply hold their request lines.  Most simulated cycles are
therefore provably idle — and :class:`FastKernel` skips them in O(1)
while staying **cycle-equivalent** to the reference kernel (same
consumer values, same statistics, same event cycle numbers; enforced by
``tests/differential/``).

Two mechanisms, both conservative (anything unprovable falls back to
cycle-by-cycle execution, which is always correct):

* **parking** — an executor whose FSM state is provably idempotent
  while held (see :class:`~repro.sim.executor.ParkClass`) stops
  re-interpreting its micro-ops; a parked cycle is a statistics tick
  plus re-assertion of the frozen memory requests;
* **skipping** — when *every* executor is parked, every controller
  reports quiescence through ``next_wake()``, and every hook bounds its
  next effect, the kernel jumps straight to the earliest wake scheduled
  on a hierarchical :class:`TimingWheel`, batch-accounting the skipped
  cycles (``park_idle`` / ``on_idle_cycles``).

The wake contract (see ``docs/simulation_kernels.md``): a component
that can change observable state at cycle ``t > now`` without any new
input must report a wake ``<= t``; a component with no such ``t``
reports ``None``.  Hooks use ``next_wake(cycle, limit, kernel)``
(resolved off the hook or its bound instance); any hook without one
disables skipping entirely.

The run's final cycle is always executed, never skipped, so end-of-run
snapshot state (blocked ages, pending counts, controller cycle
registers) is byte-identical to the reference kernel's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..core.controller import MemResult, MemoryController
from .executor import ParkClass, ThreadExecutor
from .kernel import SimulationKernel, SimulationResult


class TimingWheel:
    """Hierarchical timing wheel keyed by absolute cycle.

    ``levels`` wheels of ``slot_count`` slots each; level ``L`` slots
    span ``slot_count ** L`` cycles, so the wheel covers a horizon of
    ``slot_count ** levels`` cycles from its base.  Scheduling is O(1)
    (index arithmetic); events beyond the horizon go to an overflow
    list and cascade in as the base advances — the classic hashed
    hierarchical wheel.
    """

    def __init__(self, slot_count: int = 64, levels: int = 3, start: int = 0):
        if slot_count < 2 or levels < 1:
            raise ValueError("wheel needs >= 2 slots and >= 1 level")
        self.slot_count = slot_count
        self.levels = levels
        self._base = start
        self._slots: list[list[list[tuple[int, object]]]] = [
            [[] for __ in range(slot_count)] for __ in range(levels)
        ]
        self._overflow: list[tuple[int, object]] = []
        self._count = 0

    @property
    def horizon(self) -> int:
        """Cycles covered from the base before events overflow."""
        return self.slot_count ** self.levels

    def __len__(self) -> int:
        return self._count

    def level_of(self, cycle: int) -> int:
        """The wheel level an event at ``cycle`` currently hashes to
        (``self.levels`` means the overflow list)."""
        delta = cycle - self._base
        span = self.slot_count
        for level in range(self.levels):
            if delta < span:
                return level
            span *= self.slot_count
        return self.levels

    def schedule(self, cycle: int, token: object = None) -> None:
        """Insert an event; O(1)."""
        if cycle < self._base:
            raise ValueError(
                f"cannot schedule cycle {cycle} before wheel base "
                f"{self._base}"
            )
        level = self.level_of(cycle)
        if level >= self.levels:
            self._overflow.append((cycle, token))
        else:
            span = self.slot_count ** level
            slot = (cycle // span) % self.slot_count
            self._slots[level][slot].append((cycle, token))
        self._count += 1

    def earliest(self) -> Optional[int]:
        """The earliest scheduled cycle, or ``None`` if empty."""
        best: Optional[int] = None
        for level in self._slots:
            for slot in level:
                for cycle, __ in slot:
                    if best is None or cycle < best:
                        best = cycle
        for cycle, __ in self._overflow:
            if best is None or cycle < best:
                best = cycle
        return best

    def advance(self, to_cycle: int) -> None:
        """Move the base forward, cascading events into finer levels."""
        if to_cycle < self._base:
            raise ValueError("the wheel does not run backwards")
        pending: list[tuple[int, object]] = []
        for level in self._slots:
            for slot in level:
                pending.extend(slot)
                slot.clear()
        pending.extend(self._overflow)
        self._overflow.clear()
        self._base = to_cycle
        self._count = 0
        for cycle, token in pending:
            if cycle < to_cycle:
                raise ValueError(
                    f"event at cycle {cycle} would be dropped by "
                    f"advancing to {to_cycle}"
                )
            self.schedule(cycle, token)

    def pop_due(self, now: int) -> list[object]:
        """Remove and return tokens of all events at cycles ``<= now``."""
        due: list[object] = []
        for level in self._slots:
            for slot in level:
                keep = []
                for cycle, token in slot:
                    if cycle <= now:
                        due.append(token)
                    else:
                        keep.append((cycle, token))
                slot[:] = keep
        keep = []
        for cycle, token in self._overflow:
            if cycle <= now:
                due.append(token)
            else:
                keep.append((cycle, token))
        self._overflow = keep
        self._count -= len(due)
        return due

    def clear(self, base: int = 0) -> None:
        for level in self._slots:
            for slot in level:
                slot.clear()
        self._overflow.clear()
        self._base = base
        self._count = 0


@dataclass
class _Park:
    """Runtime record of one parked executor."""

    park: ParkClass
    #: frozen ``(bram, MemRequest)`` pairs a "mem" park re-asserts
    requests: tuple = ()
    #: rx interfaces a "recv" park watches for arrivals
    rx: tuple = ()


class FastKernel(SimulationKernel):
    """Event-wheel kernel: cycle-equivalent, idle stretches skipped.

    :meth:`step` still executes exactly one real cycle (external
    single-stepping stays exact); the skipping happens inside
    :meth:`run` between steps, and only when ``until`` is ``None``
    (an ``until`` predicate may inspect per-cycle state).
    """

    def __init__(
        self,
        executors: dict[str, ThreadExecutor],
        controllers: dict[str, MemoryController],
    ):
        super().__init__(executors, controllers)
        #: introspection counters (benchmarks and tests read these)
        self.cycles_executed = 0
        self.cycles_skipped = 0
        self.wheel = TimingWheel()
        self._parked: dict[str, _Park] = {}
        self._named_order = [
            (name, executors[name]) for name in sorted(executors)
        ]
        self._wakers: Optional[list] = []
        self._waker_cache_key: Optional[tuple[int, int]] = (0, 0)

    # -- one real cycle -------------------------------------------------------------

    def step(self) -> dict[str, dict[str, MemResult]]:
        cycle = self.cycle
        for hook in self._pre_hooks:
            hook(cycle, self)

        parked = self._parked
        if parked:
            # An arrival un-parks a receive wait before phase 1 reads it.
            for name in [
                name
                for name, record in parked.items()
                if record.park.kind == "recv"
                and any(rx.backlog > 0 for rx in record.rx)
            ]:
                del parked[name]

        for name, executor in self._named_order:
            record = parked.get(name)
            if record is not None:
                executor.parked_phase1(cycle, record.park, record.requests)
            else:
                executor.phase1(cycle)

        results: dict[str, dict[str, MemResult]] = {}
        for bram_name, controller in self._controller_order:
            results[bram_name] = controller.arbitrate(cycle)

        for name, executor in self._named_order:
            record = parked.get(name)
            if record is not None and record.park.kind == "terminal":
                continue  # provably no transition; stall accounted above
            before = executor.stats.advances
            executor.phase2(results)
            if executor.stats.advances != before:
                if record is not None:
                    del parked[name]
            elif record is None:
                self._maybe_park(name, executor)

        for hook in self._post_hooks:
            hook(cycle, self)
        if self.observer is not None:
            self.observer.on_cycle(cycle, self)
        self.cycle = cycle + 1
        self.cycles_executed += 1
        return results

    def _maybe_park(self, name: str, executor: ThreadExecutor) -> None:
        """Classify an executor that just held (no advance) for parking."""
        park = executor.park_class()
        kind = park.kind
        if kind is None:
            return
        if kind == "terminal":
            if executor._blocked:
                return
            self._parked[name] = _Park(park=park)
        elif not executor._blocked:
            return
        elif kind == "mem":
            self._parked[name] = _Park(
                park=park, requests=executor.build_park_requests(park)
            )
        else:  # recv
            rx = tuple(
                executor._rx[interface]
                for interface in park.rx_interfaces
                if interface in executor._rx
            )
            if any(queue.backlog > 0 for queue in rx):
                # A multi-receive state drains its non-empty queues
                # every held cycle; only an all-empty wait can park.
                return
            self._parked[name] = _Park(park=park, rx=rx)

    # -- the skip decision ----------------------------------------------------------

    def _resolve_wakers(self) -> Optional[list]:
        """Wake functions for every hook, or ``None`` if any hook lacks
        one (which disables skipping — a hook of unknown behaviour must
        run every cycle, e.g. a VCD sampler)."""
        key = (len(self._pre_hooks), len(self._post_hooks))
        if key != self._waker_cache_key:
            wakers: Optional[list] = []
            for hook in self._pre_hooks + self._post_hooks:
                fn = getattr(hook, "next_wake", None)
                if fn is None:
                    owner = getattr(hook, "__self__", None)
                    if owner is not None:
                        fn = getattr(owner, "next_wake", None)
                if fn is None:
                    wakers = None
                    break
                wakers.append(fn)
            self._wakers = wakers
            self._waker_cache_key = key
        return self._wakers

    def _skip_target(self, last_cycle: int) -> Optional[int]:
        """The next cycle that must actually execute, or ``None`` if
        skipping is not currently provable.  ``self.cycle`` is the next
        unexecuted cycle; wake queries are posed at ``self.cycle - 1``,
        the cycle all component state currently reflects.  The run's
        final cycle is never skipped."""
        if len(self._parked) < len(self.executors):
            return None
        for record in self._parked.values():
            if record.park.kind == "recv" and any(
                rx.backlog > 0 for rx in record.rx
            ):
                return None
        if self.observer is not None and not hasattr(
            self.observer, "on_idle_cycles"
        ):
            return None
        wakers = self._resolve_wakers()
        if wakers is None:
            return None

        now = self.cycle - 1
        wheel = self.wheel
        wheel.clear(base=self.cycle)
        wheel.schedule(last_cycle)
        for __, controller in self._controller_order:
            wake_fn = getattr(controller, "next_wake", None)
            if wake_fn is None:
                return None
            wake = wake_fn(now)
            if wake is not None:
                if wake <= now:  # pragma: no cover - contract violation
                    return None
                if wake < last_cycle:
                    wheel.schedule(wake)
        limit = wheel.earliest()
        for waker in wakers:
            wake = waker(now, limit, self)
            if wake is not None:
                if wake <= now:  # pragma: no cover - contract violation
                    return None
                if wake < limit:
                    wheel.schedule(wake)
                    limit = min(limit, wake)
        target = wheel.earliest()
        if target is None or target <= self.cycle:
            return None
        return target

    def _skip_to(self, target: int) -> None:
        """Batch-account the provably idle cycles ``self.cycle ..
        target - 1`` and jump to ``target``."""
        count = target - self.cycle
        for name in self._parked:
            self.executors[name].park_idle(count)
        for __, controller in self._controller_order:
            # The skipped arbitrate() calls were no-ops except for cycle
            # tracking, which stamps later submissions' issue cycles.
            controller.note_idle_cycles(target - 1)
        if self.observer is not None:
            self.observer.on_idle_cycles(self.cycle, count, self)
        self.cycles_skipped += count
        self.cycle = target

    # -- driving ---------------------------------------------------------------------

    def run(
        self, cycles: int, until=None, max_wall_seconds=None
    ) -> SimulationResult:
        deadline = self._deadline(max_wall_seconds)
        end = self.cycle + cycles
        last_cycle = end - 1
        while self.cycle < end:
            self.step()
            if deadline is not None and time.monotonic() >= deadline:
                self._raise_wall_timeout(max_wall_seconds)
            if until is not None:
                # Per-cycle predicates may inspect any state: never skip.
                if until(self):
                    break
                continue
            if self.cycle >= end:
                break
            target = self._skip_target(last_cycle)
            if target is not None and target > self.cycle:
                self._skip_to(target)
        return self._result()

    def reset(self) -> None:
        super().reset()
        self._parked.clear()
        self.cycles_executed = 0
        self.cycles_skipped = 0
        self.wheel.clear()
