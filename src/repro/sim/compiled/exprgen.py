"""Expression compiler: hic AST expressions to exact-semantics Python.

The compiled simulation backend flattens every expression a thread FSM
evaluates into a Python source fragment.  The emitted fragments must be
**bit-identical** to :meth:`repro.sim.executor.ThreadExecutor.evaluate`,
including every 32-bit two's-complement corner:

* results are always masked into ``[0, 2**32)`` (the emit invariant —
  every fragment this module produces evaluates to such an int, so
  parent fragments can compose without re-masking);
* ``/`` and ``%`` truncate toward zero via *float* division exactly as
  the interpreter's ``int(sl / sr)`` does (see ``_div``/``_mod`` in the
  generated prologue — ``//`` would round differently for negatives);
* signed comparisons use the sign-bias trick ``(l ^ 2**31) < (r ^ 2**31)``
  which totally orders unsigned encodings by their signed value;
* ``&&``/``||`` short-circuit (the right operand may call functions).

Function calls are resolved at *bind* time: each distinct callee gets a
module-level alias recorded in :attr:`ExprCompiler.calls`; the generated
``bind()`` resolves them through the executor's function table exactly
like the interpreter (memoizing :func:`default_intrinsic` on a miss).
"""

from __future__ import annotations

from ...hic import ast

#: 2**32 - 1 — the 32-bit mask literal embedded in generated fragments.
M = (1 << 32) - 1
#: the sign bit, for the signed-comparison bias trick
SIGN = 1 << 31


class UnsupportedExpression(Exception):
    """An expression with no compiled equivalent (the interpreter would
    raise at simulation time too, e.g. an unrewritten field access)."""


def canonical(expr) -> str:
    """Canonical S-expression serialization of ``expr`` — the stable
    content-hash input for the codegen cache.  Two expressions with the
    same canonical form compile to the same fragment."""
    if isinstance(expr, ast.IntLiteral):
        return f"(i {expr.value})"
    if isinstance(expr, ast.CharLiteral):
        return f"(c {expr.value})"
    if isinstance(expr, ast.BoolLiteral):
        return f"(b {int(expr.value)})"
    if isinstance(expr, ast.Name):
        return f"(n {expr.ident})"
    if isinstance(expr, ast.Unary):
        return f"(u{expr.op} {canonical(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({expr.op} {canonical(expr.left)} {canonical(expr.right)})"
    if isinstance(expr, ast.Conditional):
        return (
            f"(?: {canonical(expr.cond)} {canonical(expr.then_value)}"
            f" {canonical(expr.else_value)})"
        )
    if isinstance(expr, ast.Call):
        args = " ".join(canonical(a) for a in expr.args)
        return f"(call {expr.callee} {args})"
    # Unevaluable node: still serialize stably so the fingerprint is
    # well-defined; codegen will reject it separately.
    return f"(raw {type(expr).__name__})"


class ExprCompiler:
    """Compiles one thread's expressions against its env-dict alias.

    ``env_name`` is the generated local aliasing ``executor.env``;
    ``fn_prefix`` namespaces the per-callee function aliases.
    """

    def __init__(self, env_name: str, fn_prefix: str):
        self.env = env_name
        self.fn_prefix = fn_prefix
        #: callee -> generated alias, in first-use order
        self.calls: dict[str, str] = {}

    def compile(self, expr) -> str:
        """Emit a fragment evaluating ``expr`` to an int in ``[0, 2**32)``."""
        if isinstance(expr, ast.IntLiteral):
            return repr(expr.value & M)
        if isinstance(expr, ast.CharLiteral):
            return repr(expr.value & 0xFF)
        if isinstance(expr, ast.BoolLiteral):
            return "1" if expr.value else "0"
        if isinstance(expr, ast.Name):
            # env values may carry up to 36 bits (a grant absorbs raw
            # BRAM words); reads re-mask like to_unsigned does.
            return f"({self.env}.get({expr.ident!r},0)&{M})"
        if isinstance(expr, ast.Unary):
            operand = self.compile(expr.operand)
            if expr.op == "-":
                return f"(-({operand})&{M})"
            if expr.op == "!":
                return f"(0 if ({operand}) else 1)"
            if expr.op == "~":
                return f"(~({operand})&{M})"
            raise UnsupportedExpression(f"unary operator {expr.op!r}")
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Conditional):
            cond = self.compile(expr.cond)
            then_value = self.compile(expr.then_value)
            else_value = self.compile(expr.else_value)
            return f"(({then_value}) if ({cond}) else ({else_value}))"
        if isinstance(expr, ast.Call):
            alias = self.calls.get(expr.callee)
            if alias is None:
                alias = f"{self.fn_prefix}{len(self.calls)}"
                self.calls[expr.callee] = alias
            args = ",".join(self.compile(a) for a in expr.args)
            return f"({alias}({args})&{M})"
        raise UnsupportedExpression(
            f"cannot compile {type(expr).__name__} for simulation"
        )

    def _binary(self, expr) -> str:
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        # Short-circuit forms evaluate the right fragment lazily, exactly
        # like the interpreter.
        if op == "&&":
            return f"(1 if ({left}) and ({right}) else 0)"
        if op == "||":
            return f"(1 if ({left}) or ({right}) else 0)"
        # sl op sr is congruent to l op r mod 2**32 for ring operations.
        if op == "+":
            return f"(({left})+({right})&{M})"
        if op == "-":
            return f"(({left})-({right})&{M})"
        if op == "*":
            return f"(({left})*({right})&{M})"
        if op == "/":
            return f"_div({left},{right})"
        if op == "%":
            return f"_mod({left},{right})"
        if op == "<<":
            return f"(({left})<<(({right})&31)&{M})"
        if op == ">>":
            # left is already masked, so the shift cannot overflow 32 bits
            return f"(({left})>>(({right})&31))"
        if op == "&":
            return f"(({left})&({right}))"
        if op == "|":
            return f"(({left})|({right}))"
        if op == "^":
            return f"(({left})^({right}))"
        if op == "==":
            return f"(1 if ({left})==({right}) else 0)"
        if op == "!=":
            return f"(1 if ({left})!=({right}) else 0)"
        if op == "<":
            return f"(1 if (({left})^{SIGN})<(({right})^{SIGN}) else 0)"
        if op == "<=":
            return f"(1 if (({left})^{SIGN})<=(({right})^{SIGN}) else 0)"
        if op == ">":
            return f"(1 if (({left})^{SIGN})>(({right})^{SIGN}) else 0)"
        if op == ">=":
            return f"(1 if (({left})^{SIGN})>=(({right})^{SIGN}) else 0)"
        raise UnsupportedExpression(f"binary operator {op!r}")
