"""Compiled per-design simulation backend.

Specializes each compiled design into one generated straight-line
Python tick function (``exec``-compiled once per design, cached
in-process by content hash), proven byte-for-byte cycle-equivalent to
the reference kernel by ``tests/differential/``.  See
``docs/simulation_kernels.md`` for when to pick it.
"""

from .cache import (
    CompiledProgram,
    cache_size,
    clear_cache,
    compile_program,
    design_fingerprint,
    generation_count,
)
from .codegen import CODEGEN_VERSION, UnsupportedDesign, generate_source
from .exprgen import ExprCompiler, UnsupportedExpression, canonical
from .kernel import CompiledKernel

__all__ = [
    "CODEGEN_VERSION",
    "CompiledKernel",
    "CompiledProgram",
    "ExprCompiler",
    "UnsupportedDesign",
    "UnsupportedExpression",
    "cache_size",
    "canonical",
    "clear_cache",
    "compile_program",
    "design_fingerprint",
    "generate_source",
    "generation_count",
]
