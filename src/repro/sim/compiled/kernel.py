"""The compiled simulation kernel: generated fast path + interpreted escape.

:class:`CompiledKernel` is a drop-in :class:`~repro.sim.kernel.SimulationKernel`
whose ``run`` executes the design's generated tick function
(:mod:`.codegen`) for whole spans of cycles, falling back to the
interpreted two-phase protocol — the base class, unchanged — whenever
byte-equivalence cannot be guaranteed cheaply:

* an observer (telemetry/profiler), post-cycle hook (watchdog, probes),
  controller tap/observer, or BRAM trace is attached — those seams see
  *intra*-cycle state the flattened code does not materialize;
* a pre-cycle hook is not marked ``mutates_only_rx`` (the traffic
  injector is; a fault injector is not);
* ``run`` is called with an ``until`` predicate (evaluated per cycle);
* the design uses a construct codegen rejects, or binding the generated
  module to the live objects failed a drift assertion.

The escape hatch is per-*call*: a campaign can attach a watchdog, run
interpreted, detach it, and continue compiled — state is shared because
the generated span flushes everything back into the real executor and
controller objects on exit (including on exceptions).

``cycles_compiled`` / ``cycles_interpreted`` count where cycles actually
ran, so tests can assert the fast path really was taken (differential
coverage that silently falling back would otherwise fake).

Set ``REPRO_COMPILED_STRICT=1`` to turn silent fallbacks on bind
failures into hard errors (debugging aid for codegen work).
"""

from __future__ import annotations

import os

from ..kernel import SimulationKernel
from .cache import compile_program


def _controller_untapped(controller) -> bool:
    """No seam on this controller (or, for a fabric, any of its banks)
    observes intra-cycle state the generated code skips."""
    if controller.request_taps:
        return False
    if controller.observer is not None or controller.submit_observer is not None:
        return False
    bram = getattr(controller, "bram", None)
    if bram is not None and getattr(bram, "trace_enabled", False):
        return False
    banks = getattr(controller, "banks", None)
    if banks is not None:
        return all(_controller_untapped(bank) for bank in banks.values())
    return True


class CompiledKernel(SimulationKernel):
    """Runs the generated per-design tick function when it is safe to."""

    def __init__(self, executors, controllers, design=None):
        super().__init__(executors, controllers)
        self.design = design
        self.program = None
        self.bind_error: str | None = None
        self._run_span = None
        #: cycle counters by execution path (observability + tests)
        self.cycles_compiled = 0
        self.cycles_interpreted = 0
        if design is not None:
            self.program = compile_program(design)
            if self.program.supported:
                namespace: dict = {}
                try:
                    exec(self.program.code, namespace)
                    self._run_span = namespace["bind"](self)
                except Exception as exc:  # drift between codegen and runtime
                    if os.environ.get("REPRO_COMPILED_STRICT"):
                        raise
                    self.bind_error = f"{type(exc).__name__}: {exc}"
                    self._run_span = None
            else:
                self.bind_error = self.program.reason

    # -- fast-path eligibility --------------------------------------------------------

    def _fast_path_ok(self) -> bool:
        if self._run_span is None:
            return False
        if self.observer is not None or self._post_hooks:
            return False
        for hook in self._pre_hooks:
            if not getattr(hook, "mutates_only_rx", False):
                return False
        return all(
            _controller_untapped(controller)
            for controller in self.controllers.values()
        )

    # -- kernel protocol ---------------------------------------------------------------

    def step(self):
        self.cycles_interpreted += 1
        return super().step()

    def run(self, cycles, until=None, max_wall_seconds=None):
        if cycles > 0 and until is None and self._fast_path_ok():
            deadline = self._deadline(max_wall_seconds)
            start = self.cycle
            try:
                self._run_span(
                    start, start + cycles, deadline, max_wall_seconds
                )
            finally:
                self.cycles_compiled += self.cycle - start
            return self._result()
        return super().run(
            cycles, until=until, max_wall_seconds=max_wall_seconds
        )

    def reset(self) -> None:
        super().reset()
        self.cycles_compiled = 0
        self.cycles_interpreted = 0
