"""Per-design code generator for the compiled simulation backend.

``generate_source`` flattens one :class:`repro.flow.CompiledDesign` —
every thread FSM, the arbitrated controller policy (round-robin
arbiters, dependency-list guards, priority D > C > B), and the
interface DMA — into the source of one straight-line Python module with
a single ``bind(kernel) -> run_span`` entry point.  ``run_span(start,
end, deadline, max_wall_seconds)`` advances the kernel exactly like
``SimulationKernel.step`` called ``end - start`` times, then flushes the
accumulated state back into the real executor/controller objects, so
interpreted and compiled cycles interleave freely.

Equivalence contract (byte-for-byte, proven by ``tests/differential/``):

* phase order per cycle: pre-hooks, all executors phase 1 (sorted thread
  order), all controllers (sorted name order), all executors phase 2;
* every interpreter quirk is replicated, deliberately: issue cycles are
  stamped with the *previous* arbitrate's cycle number; a granted client
  retires **all** of its pending requests (one latency sample each);
  phase 2 checks the grant of ``state.memory_ops[0]`` only and absorbs
  that controller's data into the *last* read's destination; ``/`` and
  ``%`` truncate via float division; read grants absorb the raw (up to
  36-bit) BRAM word unmasked.

Organizations other than single-address-space ARBITRATED (event-driven,
lock baseline, fabric, off-chip banks) keep their controller *objects*
and go through ``controller.arbitrate`` per cycle — still several times
faster than the interpreter because the executors are compiled — while
the arbitrated wrapper, the hot path of every benchmark, is fully
inlined (flat request tuples, list-indexed guard counters).

Designs using constructs with no compiled equivalent (unevaluable
expressions, non-BRAM message placements, out-of-range static
addresses) raise :class:`UnsupportedDesign`; the kernel then falls back
to the interpreter permanently, which is always correct.
"""

from __future__ import annotations

from ...core.advisor import Organization
from ...hic.types import MESSAGE_FIELDS
from ...memory.allocation import Residency
from ...synth.fsm import (
    ComputeOp,
    MemReadOp,
    MemWriteOp,
    ReceiveOp,
    TransmitOp,
)
from .exprgen import ExprCompiler, UnsupportedExpression

#: Bump whenever the generated code's shape or semantics change: the
#: version participates in the design fingerprint, so stale in-process
#: cache entries can never serve a new codegen scheme.
CODEGEN_VERSION = 2

#: Geometry the inline arbitrated path is specialized for (the flow
#: always builds ``BlockRam(name)`` with these defaults; ``bind``
#: re-asserts them and refuses to bind anything else).
_BRAM_DEPTH = 512
_BRAM_MASK = (1 << 36) - 1

_PRELUDE = '''\
from time import monotonic as _monotonic

from repro.core.controller import BlockedRequest, LatencySample, MemRequest
from repro.core.errors import GuardViolationError, SimulationTimeout
from repro.sim.executor import default_intrinsic as _default_intrinsic

_E = {}


def _div(l, r):
    sl = l - 4294967296 if l >= 2147483648 else l
    sr = r - 4294967296 if r >= 2147483648 else r
    if sr == 0:
        return 4294967295
    return int(sl / sr) & 4294967295


def _mod(l, r):
    sl = l - 4294967296 if l >= 2147483648 else l
    sr = r - 4294967296 if r >= 2147483648 else r
    if sr == 0:
        return 0
    return (sl - int(sl / sr) * sr) & 4294967295


def _oob(name, address, depth):
    raise IndexError(
        f"address {address} out of range for {name} (depth {depth})"
    )


def _sortkey(blocked):
    return blocked.request.sort_key
'''


class UnsupportedDesign(Exception):
    """The design uses a construct the code generator cannot compile."""


def _indent(lines, pad="    "):
    return [pad + line if line else line for line in lines]


class _Codegen:
    def __init__(self, design):
        self.design = design
        # bind-level sections, assembled in dependency order
        self.bind_head: list[str] = []
        self.bind_exec: list[str] = []
        self.bind_iface: list[str] = []
        self.bind_ctl: list[str] = []
        self.bind_const: list[str] = []
        self.bind_fns: list[str] = []
        # run_span sections
        self.entry: list[str] = []
        self.body_p1: list[str] = []
        self.body_ctl: list[str] = []
        self.body_p2: list[str] = []
        self.exit: list[str] = []
        self._nconst = 0
        # interface registries: name -> (index, first-user thread index)
        self._rx: dict[str, int] = {}
        self._tx: dict[str, int] = {}

        self.threads = sorted(design.fsms)
        if design.fabric is not None:
            from ...memory.allocation import FABRIC_BRAM

            self.ctrl_names = [FABRIC_BRAM]
        else:
            self.ctrl_names = sorted(
                list(design.memory_map.bram_names)
                + list(design.memory_map.offchip_names)
                + list(design.memory_map.fifo_names)
            )
        self.ctrl_index = {name: j for j, name in enumerate(self.ctrl_names)}
        self.inline = {
            name: (
                design.fabric is None
                and design.organization is Organization.ARBITRATED
                and name in design.memory_map.bram_names
            )
            for name in self.ctrl_names
        }
        from ...flow import _PORT_OVERRIDES

        self.override = _PORT_OVERRIDES[design.organization]

    # -- small helpers ---------------------------------------------------------------

    def _const(self, expr_src: str) -> str:
        name = f"C{self._nconst}"
        self._nconst += 1
        self.bind_const.append(f"{name} = {expr_src}")
        return name

    def _rx_index(self, name: str, thread_idx: int) -> int:
        k = self._rx.get(name)
        if k is None:
            k = len(self._rx)
            self._rx[name] = k
            self.bind_iface.append(f"rxo_r{k} = x_t{thread_idx}._rx[{name!r}]")
            self.bind_iface.append(f"b_rxq_r{k} = rxo_r{k}._queue")
            self.entry.append(f"rxq_r{k} = b_rxq_r{k}")
            self.entry.append(f"dlv_r{k} = 0")
            self.exit.append(f"rxo_r{k}.delivered += dlv_r{k}")
        else:
            self.bind_iface.append(
                f"if x_t{thread_idx}._rx[{name!r}] is not rxo_r{k}:"
            )
            self.bind_iface.append(
                "    raise RuntimeError('rx interface aliasing drifted')"
            )
        return k

    def _tx_index(self, name: str, thread_idx: int) -> int:
        k = self._tx.get(name)
        if k is None:
            k = len(self._tx)
            self._tx[name] = k
            self.bind_iface.append(f"txo_x{k} = x_t{thread_idx}._tx[{name!r}]")
            self.bind_iface.append(f"b_txm_x{k} = txo_x{k}.messages")
            self.entry.append(f"txm_x{k} = b_txm_x{k}")
        else:
            self.bind_iface.append(
                f"if x_t{thread_idx}._tx[{name!r}] is not txo_x{k}:"
            )
            self.bind_iface.append(
                "    raise RuntimeError('tx interface aliasing drifted')"
            )
        return k

    def _port_for(self, op) -> str:
        if op.dep_id is not None:
            return self.override.get(op.port, op.port)
        return op.port

    def _placement(self, thread: str, var: str):
        placement = self.design.memory_map.placements.get((thread, var))
        if placement is None or placement.residency is not Residency.BRAM:
            raise UnsupportedDesign(
                f"message variable {thread}.{var} is not BRAM-resident"
            )
        if placement.bram not in self.ctrl_index:
            raise UnsupportedDesign(
                f"message variable {thread}.{var} targets unknown "
                f"memory {placement.bram!r}"
            )
        return placement

    # -- generation ------------------------------------------------------------------

    def generate(self, digest: str) -> str:
        self.bind_head.append(f"if sorted(executors) != {self.threads!r}:")
        self.bind_head.append(
            "    raise RuntimeError('executor set drifted from the design')"
        )
        self.bind_head.append(
            f"if sorted(controllers) != {sorted(self.ctrl_names)!r}:"
        )
        self.bind_head.append(
            "    raise RuntimeError('controller set drifted from the design')"
        )

        for j, name in enumerate(self.ctrl_names):
            if self.inline[name]:
                self._emit_inline_controller(j, name)
            else:
                self._emit_object_controller(j, name)

        for i, thread in enumerate(self.threads):
            self._emit_thread(i, thread)

        return self._assemble(digest)

    # -- controllers -----------------------------------------------------------------

    def _emit_object_controller(self, j: int, name: str) -> None:
        self.bind_ctl.append(f"ctl_c{j} = controllers[{name!r}]")
        self.bind_ctl.append(f"brm_c{j} = ctl_c{j}.bram")
        self.body_ctl.append(f"res_c{j} = ctl_c{j}.arbitrate(cycle)")

    def _emit_inline_controller(self, j: int, name: str) -> None:
        design = self.design
        deps = design.dep_groups.get(name, [])
        cli_c = sorted({t for dep in deps for t in dep.consumer_threads()}) or ["-"]
        cli_d = sorted({dep.producer_thread for dep in deps}) or ["-"]
        entries = design.deplists[name].entries
        n = len(entries)
        dep_ids = [e.dep_id for e in entries]
        producers = [e.producer_thread for e in entries]
        consumers = [tuple(e.consumer_threads) for e in entries]

        b = self.bind_ctl
        b.append(f"ctl_c{j} = controllers[{name!r}]")
        b.append(f"if type(ctl_c{j}).__name__ != 'ArbitratedController':")
        b.append("    raise RuntimeError('controller organization drifted')")
        b.append(f"_b = ctl_c{j}.bram")
        b.append(
            f"if _b.depth != {_BRAM_DEPTH} or _b.width != 36 "
            "or type(_b).__name__ != 'BlockRam':"
        )
        b.append("    raise RuntimeError('bram geometry drifted')")
        b.append(f"b_wd_c{j} = _b._words")
        b.append(f"dl_c{j} = ctl_c{j}.deplist")
        b.append(f"if [_e.dep_id for _e in dl_c{j}.entries] != {dep_ids!r}:")
        b.append("    raise RuntimeError('dependency list drifted')")
        b.append(
            f"if [_e.producer_thread for _e in dl_c{j}.entries] != {producers!r}:"
        )
        b.append("    raise RuntimeError('dependency list drifted')")
        b.append(
            f"if [tuple(_e.consumer_threads) for _e in dl_c{j}.entries] "
            f"!= {consumers!r}:"
        )
        b.append("    raise RuntimeError('dependency list drifted')")
        b.append(f"arbA_c{j} = ctl_c{j}._arb_a")
        b.append(f"arbC_c{j} = ctl_c{j}._arb_c")
        b.append(f"arbD_c{j} = ctl_c{j}._arb_d")
        b.append(f"if list(arbC_c{j}.clients) != {cli_c!r}:")
        b.append("    raise RuntimeError('port C arbiter clients drifted')")
        b.append(f"if list(arbD_c{j}.clients) != {cli_d!r}:")
        b.append("    raise RuntimeError('port D arbiter clients drifted')")
        b.append(f"b_cliA_c{j} = arbA_c{j}.clients")
        b.append(f"b_cliC_c{j} = arbC_c{j}.clients")
        b.append(f"b_cliD_c{j} = arbD_c{j}.clients")
        b.append(f"b_histA_c{j} = arbA_c{j}.grant_history")
        b.append(f"b_histC_c{j} = arbC_c{j}.grant_history")
        b.append(f"b_histD_c{j} = arbD_c{j}.grant_history")
        b.append(f"CSC_c{j} = frozenset({cli_c!r})")
        b.append(f"CSD_c{j} = frozenset({cli_d!r})")
        b.append(f"b_issue_c{j} = ctl_c{j}._issue_cycle")
        b.append(f"b_samp_c{j} = ctl_c{j}.latency_samples")
        # Dependency-list guard tables: outstanding counters and the
        # CAM's address match live in flat lists; configuration-derived
        # lookups memoize per (address, client, dep) until the deplist's
        # config_version moves (a corruption fault re-syncs at span entry).
        b.append(f"out_c{j} = [0] * {n}")
        b.append(f"dn_c{j} = [0] * {n}")
        b.append(f"ba_c{j} = {{}}")
        b.append(f"prod_c{j} = {tuple(producers)!r}")
        b.append(
            f"cons_c{j} = ({', '.join(f'frozenset({c!r})' for c in consumers)}"
            f"{',' if n else ''})"
        )
        b.append(f"did_c{j} = {tuple(dep_ids)!r}")
        b.append(f"_ver_c{j} = [-1]")
        b.append(f"_rdc_c{j} = {{}}")
        b.append(f"_wrc_c{j} = {{}}")
        b.append(f"def _sync_c{j}():")
        b.append(f"    _v = dl_c{j}.config_version")
        b.append(f"    if _v == _ver_c{j}[0]:")
        b.append("        return")
        b.append(f"    _ver_c{j}[0] = _v")
        b.append(f"    ba_c{j}.clear()")
        b.append(f"    _rdc_c{j}.clear()")
        b.append(f"    _wrc_c{j}.clear()")
        b.append(f"    for _ii, _e in enumerate(dl_c{j}.entries):")
        b.append(f"        dn_c{j}[_ii] = _e.dependency_number")
        b.append(f"        _l = ba_c{j}.get(_e.base_address)")
        b.append("        if _l is None:")
        b.append(f"            ba_c{j}[_e.base_address] = [_ii]")
        b.append("        else:")
        b.append("            _l.append(_ii)")
        b.append(f"def _wr_ent_c{j}(_addr, _cl, _dep):")
        b.append("    _key = (_addr, _cl, _dep)")
        b.append(f"    _x = _wrc_c{j}.get(_key, -2)")
        b.append("    if _x != -2:")
        b.append("        return _x")
        b.append("    _x = -1")
        b.append(f"    for _ii in ba_c{j}.get(_addr, ()):")
        b.append(
            f"        if prod_c{j}[_ii] == _cl and "
            f"(_dep is None or did_c{j}[_ii] == _dep):"
        )
        b.append("            _x = _ii")
        b.append("            break")
        b.append(f"    _wrc_c{j}[_key] = _x")
        b.append("    return _x")
        b.append(f"def _wr_ok_c{j}(_addr, _cl, _dep):")
        b.append(f"    if _wr_ent_c{j}(_addr, _cl, _dep) < 0:")
        b.append("        return False")
        b.append(f"    for _ii in ba_c{j}.get(_addr, ()):")
        b.append(f"        if out_c{j}[_ii]:")
        b.append("            return False")
        b.append("    return True")
        b.append(f"def _rd_ent_c{j}(_addr, _cl, _dep):")
        b.append("    _key = (_addr, _cl, _dep)")
        b.append(f"    _x = _rdc_c{j}.get(_key)")
        b.append("    if _x is None:")
        b.append(
            f"        _cand = tuple(_ii for _ii in ba_c{j}.get(_addr, ()) "
            f"if _cl in cons_c{j}[_ii])"
        )
        b.append("        if _dep is not None:")
        b.append("            _x = -1")
        b.append("            for _ii in _cand:")
        b.append(f"                if did_c{j}[_ii] == _dep:")
        b.append("                    _x = _ii")
        b.append("                    break")
        b.append("        else:")
        b.append("            _x = _cand")
        b.append(f"        _rdc_c{j}[_key] = _x")
        b.append("    if type(_x) is int:")
        b.append("        return _x")
        b.append("    for _ii in _x:")
        b.append(f"        if out_c{j}[_ii] > 0:")
        b.append("            return _ii")
        b.append("    return _x[0] if _x else -1")
        b.append(f"def _rd_ok_c{j}(_addr, _cl, _dep):")
        b.append(f"    _x = _rd_ent_c{j}(_addr, _cl, _dep)")
        b.append(f"    return _x < 0 or out_c{j}[_x] > 0")

        e = self.entry
        e.append(f"_sync_c{j}()")
        e.append(f"_ents = dl_c{j}.entries")
        e.append(f"for _ii in range({n}):")
        e.append(f"    out_c{j}[_ii] = _ents[_ii].outstanding")
        e.append(f"ptrA_c{j} = arbA_c{j}._pointer")
        e.append(f"ptrC_c{j} = arbC_c{j}._pointer")
        e.append(f"ptrD_c{j} = arbD_c{j}._pointer")
        e.append(f"cyc_c{j} = ctl_c{j}.cycle")
        e.append(f"over_c{j} = 0")
        e.append(f"epoch_c{j} = 0")
        e.append(f"pend_c{j} = {{}}")
        e.append(f"left_c{j} = None")
        e.append(f"issue_c{j} = b_issue_c{j}")
        e.append(f"samp_c{j} = b_samp_c{j}")
        e.append(f"wd_c{j} = b_wd_c{j}")
        e.append(f"cliA_c{j} = b_cliA_c{j}")
        e.append(f"cliC_c{j} = b_cliC_c{j}")
        e.append(f"cliD_c{j} = b_cliD_c{j}")
        e.append(f"histA_c{j} = b_histA_c{j}")
        e.append(f"setA_c{j} = set(cliA_c{j})")
        e.append(f"histC_c{j} = b_histC_c{j}")
        e.append(f"histD_c{j} = b_histD_c{j}")

        self.body_ctl.extend(self._inline_cycle_lines(j, name))

        x = self.exit
        x.append(f"ctl_c{j}.cycle = cyc_c{j}")
        x.append(f"arbA_c{j}._pointer = ptrA_c{j}")
        x.append(f"arbC_c{j}._pointer = ptrC_c{j}")
        x.append(f"arbD_c{j}._pointer = ptrD_c{j}")
        x.append(f"ctl_c{j}.override_count += over_c{j}")
        x.append(f"ctl_c{j}.classify_epoch += epoch_c{j}")
        x.append(f"_ents = dl_c{j}.entries")
        x.append(f"for _ii in range({n}):")
        x.append(f"    _ents[_ii].outstanding = out_c{j}[_ii]")
        x.append(f"if left_c{j} is not None:")
        x.append(f"    ctl_c{j}._pending = {{}}")
        x.append("    _bl = []")
        x.append(f"    for _k, _r in left_c{j}.items():")
        x.append(f"        _ic = issue_c{j}[_k]")
        x.append(
            "    " * 2
            + "_bl.append(BlockedRequest(MemRequest(_r[0], _r[1], _r[2], "
            f"_r[3], _r[4], _r[5]), _ic, cyc_c{j} - _ic))"
        )
        x.append("    _bl.sort(key=_sortkey)")
        x.append(f"    ctl_c{j}.blocked = _bl")
        x.append(f"    _ks = set(left_c{j})")
        x.append(f"    if _ks != ctl_c{j}._blocked_keys:")
        x.append("        _bc = {}")
        x.append("        for _bb in _bl:")
        x.append("            _cn = _bb.request.client")
        x.append("            if _cn not in _bc:")
        x.append("                _bc[_cn] = _bb.request")
        x.append(f"        ctl_c{j}.blocked_by_client = _bc")
        x.append(f"        ctl_c{j}._blocked_keys = _ks")

    def _rr_lines(self, j: int, port: str, nclients) -> list[str]:
        """Round-robin grant over ``_reqs``: scan from the saved pointer,
        advance past the winner (mod the client count), record history."""
        ptr = f"ptr{port}_c{j}"
        cli = f"cli{port}_c{j}"
        n_src = f"len({cli})" if nclients is None else str(nclients)
        return [
            f"_n = {n_src}",
            f"_i = {ptr}",
            "while True:",
            f"    _w = {cli}[_i]",
            "    if _w in _reqs:",
            f"        {ptr} = _i + 1",
            f"        if {ptr} == _n:",
            f"            {ptr} = 0",
            "        break",
            "    _i += 1",
            "    if _i == _n:",
            "        _i = 0",
            f"hist{port}_c{j}.append(_w)",
        ]

    def _inline_cycle_lines(self, j: int, name: str) -> list[str]:
        bounds = [
            f"if _a < 0 or _a >= {_BRAM_DEPTH}:",
            f"    _oob({name!r}, _a, {_BRAM_DEPTH})",
        ]
        c: list[str] = []
        c.append(f"if pend_c{j}:")
        c.append("    bA = bB = bC = bD = None")
        c.append(f"    for _r in pend_c{j}.values():")
        c.append("        _p = _r[1]")
        for port, bucket in (("C", "bC"), ("D", "bD"), ("A", "bA")):
            kw = "if" if port == "C" else "elif"
            c.append(f"        {kw} _p == {port!r}:")
            c.append(f"            if {bucket} is None:")
            c.append(f"                {bucket} = [_r]")
            c.append("            else:")
            c.append(f"                {bucket}.append(_r)")
        c.append("        else:")
        c.append("            if bB is None:")
        c.append("                bB = [_r]")
        c.append("            else:")
        c.append("                bB.append(_r)")
        c.append(f"    res_c{j} = {{}}")
        # Physical port 0: direct port-A access, round-robin on overbooking.
        c.append("    if bA is not None:")
        c.append("        _reqs = {_r[0] for _r in bA}")
        c.append(f"        if not _reqs <= setA_c{j}:")
        c.append(f"            for _cn in sorted(_reqs - setA_c{j}):")
        c.append(f"                cliA_c{j}.append(_cn)")
        c.append(f"                setA_c{j}.add(_cn)")
        c.extend(_indent(self._rr_lines(j, "A", None), "        "))
        c.append("        for _r in bA:")
        c.append("            if _r[0] == _w:")
        c.append("                break")
        c.append("        _a = _r[2]")
        c.extend(_indent(bounds, "        "))
        c.append("        if _r[3]:")
        c.append(f"            wd_c{j}[_a] = _r[4]")
        c.append(f"            res_c{j}[_w] = 0")
        c.append("        else:")
        c.append(f"            res_c{j}[_w] = wd_c{j}[_a]")
        # Physical port 1: priority D > C > B among grantable requests.
        # Guard filters: the memo-hit path (entry already resolved for
        # this (addr, client, dep) triple) is inlined — only a cold
        # lookup or an untagged candidate scan pays the closure call.
        c.append("    dal = None")
        c.append("    if bD is not None:")
        c.append("        for _r in bD:")
        c.append(f"            _x = _wrc_c{j}.get((_r[2], _r[0], _r[5]), -2)")
        c.append("            if _x == -2:")
        c.append(f"                _ok = _wr_ok_c{j}(_r[2], _r[0], _r[5])")
        c.append("            elif _x < 0:")
        c.append("                _ok = False")
        c.append("            else:")
        c.append("                _ok = True")
        c.append(f"                for _ii in ba_c{j}[_r[2]]:")
        c.append(f"                    if out_c{j}[_ii]:")
        c.append("                        _ok = False")
        c.append("                        break")
        c.append("            if _ok:")
        c.append("                if dal is None:")
        c.append("                    dal = [_r]")
        c.append("                else:")
        c.append("                    dal.append(_r)")
        c.append("    cal = None")
        c.append("    if bC is not None:")
        c.append("        for _r in bC:")
        c.append(f"            _x = _rdc_c{j}.get((_r[2], _r[0], _r[5]))")
        c.append("            if type(_x) is int:")
        c.append(f"                _ok = _x < 0 or out_c{j}[_x] > 0")
        c.append("            else:")
        c.append(f"                _ok = _rd_ok_c{j}(_r[2], _r[0], _r[5])")
        c.append("            if _ok:")
        c.append("                if cal is None:")
        c.append("                    cal = [_r]")
        c.append("                else:")
        c.append("                    cal.append(_r)")
        c.append("    if dal is not None:")
        c.append("        _reqs = {_r[0] for _r in dal}")
        c.append(f"        if not _reqs <= CSD_c{j}:")
        c.append(
            "            raise KeyError(f\"unknown arbiter clients: "
            f"{{sorted(_reqs - CSD_c{j})}}\")"
        )
        c.extend(
            _indent(self._rr_lines(j, "D", self._n_clients(j, "D")), "        ")
        )
        c.append("        for _r in dal:")
        c.append("            if _r[0] == _w:")
        c.append("                break")
        c.append("        _a = _r[2]")
        c.extend(_indent(bounds, "        "))
        c.append("        if _r[3]:")
        c.append(f"            wd_c{j}[_a] = _r[4]")
        c.append(f"            res_c{j}[_w] = 0")
        c.append("        else:")
        c.append(f"            res_c{j}[_w] = wd_c{j}[_a]")
        c.append(f"        _x = _wrc_c{j}.get((_a, _w, _r[5]), -2)")
        c.append("        if _x == -2:")
        c.append(f"            _x = _wr_ent_c{j}(_a, _w, _r[5])")
        c.append(f"        out_c{j}[_x] = dn_c{j}[_x]")
        c.append(f"        epoch_c{j} += 1")
        c.append("        if bC is not None:")
        c.append(f"            over_c{j} += 1")
        c.append("    elif cal is not None:")
        c.append("        _reqs = {_r[0] for _r in cal}")
        c.append(f"        if not _reqs <= CSC_c{j}:")
        c.append(
            "            raise KeyError(f\"unknown arbiter clients: "
            f"{{sorted(_reqs - CSC_c{j})}}\")"
        )
        c.extend(
            _indent(self._rr_lines(j, "C", self._n_clients(j, "C")), "        ")
        )
        c.append("        for _r in cal:")
        c.append("            if _r[0] == _w:")
        c.append("                break")
        c.append("        _a = _r[2]")
        c.extend(_indent(bounds, "        "))
        c.append("        if _r[3]:")
        c.append(f"            wd_c{j}[_a] = _r[4]")
        c.append(f"            res_c{j}[_w] = 0")
        c.append("        else:")
        c.append(f"            res_c{j}[_w] = wd_c{j}[_a]")
        c.append(f"        _x = _rdc_c{j}.get((_a, _w, _r[5]))")
        c.append("        if type(_x) is not int:")
        c.append(f"            _x = _rd_ent_c{j}(_a, _w, _r[5])")
        c.append("        if _x >= 0:")
        c.append(f"            _o = out_c{j}[_x]")
        c.append("            if _o <= 0:")
        c.append(
            "                raise GuardViolationError(f\"consumer read at "
            "address {_a} with no outstanding produce-consume cycle\", "
            f"bram={name!r}, client=_w, dep_id=_r[5] or did_c{j}[_x])"
        )
        c.append("            _o -= 1")
        c.append(f"            out_c{j}[_x] = _o")
        c.append("            if not _o:")
        c.append(f"                epoch_c{j} += 1")
        c.append("    elif bB is not None and bC is None and bD is None:")
        c.append("        _r = bB[0]")
        c.append("        for _rr in bB:")
        c.append("            if _rr[0] < _r[0]:")
        c.append("                _r = _rr")
        c.append("        _a = _r[2]")
        c.extend(_indent(bounds, "        "))
        c.append("        if _r[3]:")
        c.append(f"            wd_c{j}[_a] = _r[4]")
        c.append(f"            res_c{j}[_r[0]] = 0")
        c.append("        else:")
        c.append(f"            res_c{j}[_r[0]] = wd_c{j}[_a]")
        # Base-class bookkeeping: a granted client retires every pending
        # request it had (one latency sample each, insertion order).
        c.append(f"    if res_c{j}:")
        c.append("        _drop = None")
        c.append(f"        for _k, _r in pend_c{j}.items():")
        c.append(f"            if _r[0] in res_c{j}:")
        c.append(
            f"                samp_c{j}.append(LatencySample(_r[0], _r[1], "
            f"_r[5], issue_c{j}.pop(_k), cycle))"
        )
        c.append("                if _drop is None:")
        c.append("                    _drop = [_k]")
        c.append("                else:")
        c.append("                    _drop.append(_k)")
        c.append("        if _drop is not None:")
        c.append("            for _k in _drop:")
        c.append(f"                del pend_c{j}[_k]")
        c.append(f"    left_c{j} = pend_c{j}")
        c.append(f"    pend_c{j} = {{}}")
        c.append("else:")
        c.append(f"    res_c{j} = _E")
        c.append(f"    left_c{j} = _E")
        c.append(f"cyc_c{j} = cycle")
        return c

    def _n_clients(self, j: int, port: str) -> int:
        name = self.ctrl_names[j]
        deps = self.design.dep_groups.get(name, [])
        if port == "C":
            clients = sorted(
                {t for dep in deps for t in dep.consumer_threads()}
            ) or ["-"]
        else:
            clients = sorted({dep.producer_thread for dep in deps}) or ["-"]
        return len(clients)

    # -- threads -----------------------------------------------------------------------

    def _emit_thread(self, i: int, thread: str) -> None:
        fsm = self.design.fsms[thread]
        state_names = list(fsm.states)
        state_index = {s: k for k, s in enumerate(state_names)}
        if fsm.initial not in state_index:
            raise UnsupportedDesign(f"thread {thread} has no initial state")
        n = len(state_names)
        ec = ExprCompiler(f"env_t{i}", f"f_t{i}_")

        b = self.bind_exec
        b.append(f"x_t{i} = executors[{thread!r}]")
        b.append(f"if tuple(x_t{i}.fsm.states) != {tuple(state_names)!r}:")
        b.append("    raise RuntimeError('thread FSM drifted from the design')")
        b.append(f"if x_t{i}.fsm.initial != {fsm.initial!r}:")
        b.append("    raise RuntimeError('thread FSM drifted from the design')")
        b.append(f"b_env_t{i} = x_t{i}.env")
        b.append(f"SN_t{i} = {tuple(state_names)!r}")
        b.append(f"si_t{i} = {state_index!r}")

        e = self.entry
        e.append(f"st_t{i} = si_t{i}[x_t{i}.state_name]")
        e.append(f"env_t{i} = b_env_t{i}")
        e.append(f"sv_t{i} = [0] * {n}")
        e.append(f"order_t{i} = []")
        e.append(f"stall_t{i} = 0")
        e.append(f"adv_t{i} = 0")
        e.append(f"rnd_t{i} = 0")
        e.append(f"lre_t{i} = x_t{i}.last_round_env")
        e.append(f"blk_t{i} = x_t{i}._blocked")

        # phase 1: per-cycle statistics, then the current state's ops
        p1 = self.body_p1
        p1.append(f"_v = sv_t{i}[st_t{i}]")
        p1.append(f"sv_t{i}[st_t{i}] = _v + 1")
        p1.append("if not _v:")
        p1.append(f"    order_t{i}.append(st_t{i})")
        p1.append(f"blk_t{i} = False")
        p1.extend(
            self._dispatch(
                i,
                [
                    self._phase1_state_lines(i, thread, fsm.states[s], ec)
                    for s in state_names
                ],
            )
        )

        # phase 2: grant check / advance
        p2_blocks = [
            self._phase2_state_lines(i, thread, fsm, fsm.states[s], state_index, ec)
            for s in state_names
        ]
        self.body_p2.extend(self._dispatch(i, p2_blocks))

        x = self.exit
        x.append(f"x_t{i}.state_name = SN_t{i}[st_t{i}]")
        x.append(f"_s = x_t{i}.stats")
        x.append("_s.cycles += cycle - start")
        x.append(f"_s.stall_cycles += stall_t{i}")
        x.append(f"_s.advances += adv_t{i}")
        x.append(f"_s.rounds_completed += rnd_t{i}")
        x.append("_sv = _s.state_visits")
        x.append(f"for _ii in order_t{i}:")
        x.append(f"    _nm = SN_t{i}[_ii]")
        x.append(f"    _sv[_nm] = _sv.get(_nm, 0) + sv_t{i}[_ii]")
        x.append(f"x_t{i}.last_round_env = lre_t{i}")
        x.append(f"x_t{i}._blocked = blk_t{i}")
        x.append(f"x_t{i}._waiting_read = None")

        for callee, alias in ec.calls.items():
            f = self.bind_fns
            f.append(f"{alias} = x_t{i}._functions.get({callee!r})")
            f.append(f"if {alias} is None:")
            f.append(f"    {alias} = _default_intrinsic({callee!r})")
            f.append(f"    x_t{i}._functions[{callee!r}] = {alias}")

    def _dispatch(self, i: int, blocks: list[list[str]]) -> list[str]:
        """A ``st_t{i}`` if/elif chain over the per-state line blocks."""
        if len(blocks) == 1:
            return blocks[0]
        out: list[str] = []
        for k, block in enumerate(blocks):
            kw = "if" if k == 0 else "elif"
            out.append(f"{kw} st_t{i} == {k}:")
            out.extend(_indent(block or ["pass"]))
        return out

    def _phase1_state_lines(self, i, thread, state, ec) -> list[str]:
        lines: list[str] = []
        for op in state.ops:
            if isinstance(op, ComputeOp):
                lines.append(f"env_t{i}[{op.dest!r}] = {ec.compile(op.expr)}")
            elif isinstance(op, (MemReadOp, MemWriteOp)):
                lines.extend(self._submit_lines(i, thread, op, ec))
            elif isinstance(op, ReceiveOp):
                lines.extend(self._receive_lines(i, thread, op))
            elif isinstance(op, TransmitOp):
                lines.extend(self._transmit_lines(i, thread, op))
            else:
                raise UnsupportedDesign(
                    f"unknown micro-op {type(op).__name__}"
                )
        return lines

    def _submit_lines(self, i, thread, op, ec) -> list[str]:
        if op.bram not in self.ctrl_index:
            raise UnsupportedDesign(
                f"memory op targets unknown controller {op.bram!r}"
            )
        j = self.ctrl_index[op.bram]
        port = self._port_for(op)
        write = isinstance(op, MemWriteOp)
        if not isinstance(op.base_address, int):
            raise UnsupportedDesign("non-integer base address")
        lines: list[str] = []

        # address
        static_addr = op.offset_expr is None
        if static_addr:
            addr_src = str(op.base_address)
            if self.inline[op.bram] and not (
                0 <= op.base_address < _BRAM_DEPTH
            ):
                raise UnsupportedDesign(
                    f"static address {op.base_address} out of range"
                )
        else:
            lines.append(f"_t = {ec.compile(op.offset_expr)}")
            lines.append(
                f"_a = {op.base_address} + "
                "(_t - 4294967296 if _t >= 2147483648 else _t)"
            )
            addr_src = "_a"

        # data (writes only)
        data_src = "0"
        static_data = True
        if write:
            data_src = ec.compile(op.value_expr)
            static_data = data_src.isdigit()
            if not static_data:
                lines.append(f"_d = {data_src}")
                data_src = "_d"

        if self.inline[op.bram]:
            if port not in ("A", "B", "C", "D"):
                raise UnsupportedDesign(
                    f"port {port!r} on an arbitrated wrapper"
                )
            if static_addr:
                key = self._const(
                    f"({thread!r}, {port!r}, {op.base_address}, {write})"
                )
                lines.append(f"if {key} not in issue_c{j}:")
                lines.append(f"    issue_c{j}[{key}] = cyc_c{j}")
                if static_data:
                    val = self._const(
                        f"({thread!r}, {port!r}, {op.base_address}, {write}, "
                        f"{data_src}, {op.dep_id!r})"
                    )
                    lines.append(f"pend_c{j}[{key}] = {val}")
                else:
                    lines.append(
                        f"pend_c{j}[{key}] = ({thread!r}, {port!r}, "
                        f"{op.base_address}, {write}, _d, {op.dep_id!r})"
                    )
            else:
                lines.append(f"_k = ({thread!r}, {port!r}, _a, {write})")
                lines.append(f"if _k not in issue_c{j}:")
                lines.append(f"    issue_c{j}[_k] = cyc_c{j}")
                lines.append(
                    f"pend_c{j}[_k] = ({thread!r}, {port!r}, _a, {write}, "
                    f"{data_src}, {op.dep_id!r})"
                )
        else:
            if static_addr and static_data:
                req = self._const(
                    f"MemRequest({thread!r}, {port!r}, {op.base_address}, "
                    f"{write}, {data_src}, {op.dep_id!r})"
                )
                lines.append(f"ctl_c{j}.submit({req})")
            else:
                cell = self._const("[None]")
                checks = ["_q is None"]
                if not static_addr:
                    checks.append("_q.address != _a")
                if not static_data:
                    checks.append("_q.data != _d")
                lines.append(f"_q = {cell}[0]")
                lines.append(f"if {' or '.join(checks)}:")
                lines.append(
                    f"    _q = MemRequest({thread!r}, {port!r}, {addr_src}, "
                    f"{write}, {data_src}, {op.dep_id!r})"
                )
                lines.append(f"    {cell}[0] = _q")
                lines.append(f"ctl_c{j}.submit(_q)")
        lines.append(f"blk_t{i} = True")
        return lines

    def _receive_lines(self, i, thread, op) -> list[str]:
        if op.interface not in self.design.checked.interfaces:
            # No rx interface: the interpreter blocks forever.
            return [f"blk_t{i} = True"]
        placement = self._placement(thread, op.target)
        j = self.ctrl_index[placement.bram]
        base = placement.base_address
        k = self._rx_index(op.interface, i)
        fields = list(MESSAGE_FIELDS)
        lines = [f"if rxq_r{k}:", f"    dlv_r{k} += 1", f"    _m = rxq_r{k}.pop(0)"]
        if self.inline[placement.bram]:
            if not 0 <= base <= _BRAM_DEPTH - len(fields):
                raise UnsupportedDesign("message placement out of range")
            for idx, field_name in enumerate(fields):
                lines.append(
                    f"    wd_c{j}[{base + idx}] = "
                    f"_m.get({field_name!r}, 0) & {_BRAM_MASK}"
                )
        else:
            for idx, field_name in enumerate(fields):
                lines.append(
                    f"    brm_c{j}.write({base + idx}, "
                    f"_m.get({field_name!r}, 0))"
                )
        lines.append("else:")
        lines.append(f"    blk_t{i} = True")
        return lines

    def _transmit_lines(self, i, thread, op) -> list[str]:
        if op.interface not in self.design.checked.interfaces:
            return []
        placement = self._placement(thread, op.source)
        j = self.ctrl_index[placement.bram]
        base = placement.base_address
        k = self._tx_index(op.interface, i)
        fields = list(MESSAGE_FIELDS)
        if self.inline[placement.bram]:
            if not 0 <= base <= _BRAM_DEPTH - len(fields):
                raise UnsupportedDesign("message placement out of range")
            items = ", ".join(
                f"{f!r}: wd_c{j}[{base + idx}]"
                for idx, f in enumerate(fields)
            )
        else:
            items = ", ".join(
                f"{f!r}: brm_c{j}.peek({base + idx})"
                for idx, f in enumerate(fields)
            )
        return [f"txm_x{k}.append((cycle, {{{items}}}))"]

    def _advance_lines(self, i, fsm, state, state_index, ec) -> list[str]:
        out: list[str] = []
        emitted_if = False
        for transition in state.transitions:
            target_id = state_index[transition.target]
            body = []
            if transition.target == fsm.initial:
                body.append(f"rnd_t{i} += 1")
                body.append(f"lre_t{i} = dict(env_t{i})")
            body.append(f"st_t{i} = {target_id}")
            body.append(f"adv_t{i} += 1")
            if transition.guard is None:
                if not emitted_if:
                    out.extend(body)
                else:
                    out.append("else:")
                    out.extend(_indent(body))
                return out
            kw = "elif" if emitted_if else "if"
            out.append(f"{kw} {ec.compile(transition.guard)}:")
            out.extend(_indent(body))
            emitted_if = True
        if emitted_if:
            out.append("else:")
            out.append(f"    stall_t{i} += 1")
        else:
            out.append(f"stall_t{i} += 1")
        return out

    def _phase2_state_lines(
        self, i, thread, fsm, state, state_index, ec
    ) -> list[str]:
        advance = self._advance_lines(i, fsm, state, state_index, ec)
        mem_ops = state.memory_ops
        if mem_ops:
            first = mem_ops[0]
            if first.bram not in self.ctrl_index:
                raise UnsupportedDesign(
                    f"memory op targets unknown controller {first.bram!r}"
                )
            j = self.ctrl_index[first.bram]
            last_read = None
            for op in state.ops:
                if isinstance(op, MemReadOp):
                    last_read = op
            out = [f"_g = res_c{j}.get({thread!r})"]
            if self.inline[first.bram]:
                out.append("if _g is None:")
                out.append(f"    stall_t{i} += 1")
                out.append("else:")
                if last_read is not None:
                    out.append(f"    env_t{i}[{last_read.dest!r}] = _g")
            else:
                out.append("if _g is None or not _g.granted:")
                out.append(f"    stall_t{i} += 1")
                out.append("else:")
                if last_read is not None:
                    out.append(f"    env_t{i}[{last_read.dest!r}] = _g.data")
            out.extend(_indent(advance))
            return out
        if any(isinstance(op, ReceiveOp) for op in state.ops):
            out = [f"if blk_t{i}:", f"    stall_t{i} += 1", "else:"]
            out.extend(_indent(advance))
            return out
        return advance

    # -- assembly --------------------------------------------------------------------

    def _assemble(self, digest: str) -> str:
        lines: list[str] = []
        lines.append(
            f'"""Generated tick function (design {digest[:16]}, codegen '
            f'v{CODEGEN_VERSION}) -- machine-written, do not edit."""'
        )
        lines.append(_PRELUDE)
        lines.append("")
        lines.append("def bind(kernel):")
        lines.append("    executors = kernel.executors")
        lines.append("    controllers = kernel.controllers")
        for section in (
            self.bind_head,
            self.bind_exec,
            self.bind_iface,
            self.bind_ctl,
            self.bind_const,
            self.bind_fns,
        ):
            lines.extend(_indent(section))
        lines.append("")
        lines.append("    def run_span(start, end, deadline, max_wall_seconds):")
        lines.append("        cycle = start")
        # Partition pre-hooks once per span: a hook exposing
        # prepare_span() (the traffic injector) pre-draws its whole
        # arrival buffer here, so the per-cycle work collapses to one
        # dict.pop; anything else runs through the per-cycle call,
        # same order as the interpreter.
        lines.append("        _fast = []")
        lines.append("        _slow = []")
        lines.append("        for _h in kernel._pre_hooks:")
        lines.append("            _ps = getattr(_h, 'prepare_span', None)")
        lines.append("            if _ps is None:")
        lines.append("                _slow.append(_h)")
        lines.append("            else:")
        # push() copies the message dict into the queue; appending the
        # copy directly skips a method frame per arrival.
        lines.append(
            "                _q = getattr(_h.rx_interface, '_queue', None)"
        )
        lines.append("                _fast.append((")
        lines.append("                    _ps(start, end),")
        lines.append(
            "                    _h.rx_interface.push "
            "if _q is None else _q.append,"
        )
        lines.append("                    _h,")
        lines.append("                    _q is not None,")
        lines.append("                ))")
        lines.extend(_indent(self.entry, "        "))
        lines.append("        timed_out = False")
        lines.append("        try:")
        lines.append("            while cycle < end:")
        lines.append(
            "                _limit = end if deadline is None else "
            "(cycle + 256 if cycle + 256 < end else end)"
        )
        lines.append("                while cycle < _limit:")
        lines.append("                    for _b, _p, _h, _cp in _fast:")
        lines.append("                        _ms = _b.pop(cycle, None)")
        lines.append("                        if _ms is not None:")
        lines.append("                            if _cp:")
        lines.append("                                for _m in _ms:")
        lines.append("                                    _p(dict(_m))")
        lines.append("                            else:")
        lines.append("                                for _m in _ms:")
        lines.append("                                    _p(_m)")
        lines.append("                            _h.injected += len(_ms)")
        # Only a slow hook can see kernel.cycle mid-span; the exit
        # flush stores the final value for everyone else.
        lines.append("                    if _slow:")
        lines.append("                        kernel.cycle = cycle")
        lines.append("                        for _h in _slow:")
        lines.append("                            _h(cycle, kernel)")
        body = self.body_p1 + self.body_ctl + self.body_p2
        lines.extend(_indent(body, "                    "))
        lines.append("                    cycle += 1")
        lines.append(
            "                if deadline is not None "
            "and _monotonic() >= deadline:"
        )
        lines.append("                    timed_out = True")
        lines.append("                    break")
        lines.append("        finally:")
        lines.extend(_indent(self.exit, "            "))
        lines.append("            kernel.cycle = cycle")
        lines.append("        if timed_out:")
        lines.append("            raise SimulationTimeout(")
        lines.append(
            "                f\"simulation exceeded its {max_wall_seconds}s "
            "wall-clock \""
        )
        lines.append("                f\"budget after {cycle} cycles\",")
        lines.append("                cycle=cycle,")
        lines.append("                wall_seconds=max_wall_seconds,")
        lines.append("            )")
        lines.append("    return run_span")
        lines.append("")
        return "\n".join(lines)


def generate_source(design, digest: str = "") -> str:
    """Generate the specialized tick module for ``design``.

    Raises :class:`UnsupportedDesign` (or
    :class:`~.exprgen.UnsupportedExpression`, a subclass concern the
    cache layer treats identically) when the design cannot be compiled.
    """
    try:
        return _Codegen(design).generate(digest)
    except UnsupportedExpression as exc:
        raise UnsupportedDesign(str(exc)) from exc
