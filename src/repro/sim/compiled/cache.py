"""In-process codegen cache: content hash of (design IR, codegen knobs).

``compile_program`` is the subsystem's front door: it fingerprints the
design, serves a cached :class:`CompiledProgram` when one exists, and
otherwise generates + ``exec``-compiles the specialized tick module.
Repeated ``build_simulation`` calls on an identical design — the shape
of every campaign sweep and DSE run — pay codegen exactly once per
process; ``generation_count()`` exposes the miss counter so tests can
assert the second build was a hit.

The fingerprint hashes precisely the inputs :mod:`.codegen` consumes
(plus :data:`~.codegen.CODEGEN_VERSION`): FSM structure with canonical
expression forms, organization, controller name set, arbiter client
lists, static dependency-list configuration, interfaces, and the
message-variable placements.  Two designs with equal fingerprints
compile to byte-identical tick modules, so sharing the program between
them is sound — the generated ``bind`` re-asserts the runtime objects
match the static assumptions anyway, and refuses to bind on drift.

Designs the generator cannot handle are cached too (as unsupported,
with the reason), so a campaign over an exotic design does not retry
codegen on every run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ...synth.fsm import (
    ComputeOp,
    MemReadOp,
    MemWriteOp,
    ReceiveOp,
    TransmitOp,
)
from .codegen import CODEGEN_VERSION, UnsupportedDesign, generate_source
from .exprgen import canonical


@dataclass(frozen=True)
class CompiledProgram:
    """One cached codegen result (shared by every kernel instance built
    from an identically-fingerprinted design)."""

    digest: str
    source: str
    code: object  # the compiled module code object, ready to exec
    supported: bool
    reason: str = ""


_CACHE: dict[str, CompiledProgram] = {}
_GENERATION_COUNT = 0


def _serialize_op(op) -> str:
    if isinstance(op, ComputeOp):
        return f"compute {op.dest} {canonical(op.expr)}"
    if isinstance(op, MemReadOp):
        offset = "-" if op.offset_expr is None else canonical(op.offset_expr)
        return (
            f"read {op.bram} {op.base_address} {op.dest} {offset} "
            f"{op.port} {op.dep_id}"
        )
    if isinstance(op, MemWriteOp):
        offset = "-" if op.offset_expr is None else canonical(op.offset_expr)
        return (
            f"write {op.bram} {op.base_address} {canonical(op.value_expr)} "
            f"{offset} {op.port} {op.dep_id}"
        )
    if isinstance(op, ReceiveOp):
        return f"receive {op.target} {op.interface}"
    if isinstance(op, TransmitOp):
        return f"transmit {op.source} {op.interface}"
    return f"op {type(op).__name__}"


def design_fingerprint(design) -> str:
    """Stable content hash of everything the code generator consumes."""
    parts: list[str] = [
        f"codegen {CODEGEN_VERSION}",
        f"organization {design.organization.name}",
        f"fabric {design.fabric is not None}",
        f"brams {sorted(design.memory_map.bram_names)}",
        f"offchip {sorted(design.memory_map.offchip_names)}",
        f"fifo {sorted(design.memory_map.fifo_names)}",
        f"interfaces {sorted(design.checked.interfaces)}",
    ]
    message_vars: set[tuple[str, str]] = set()
    for thread in sorted(design.fsms):
        fsm = design.fsms[thread]
        parts.append(f"thread {thread} initial {fsm.initial}")
        for state_name, state in fsm.states.items():
            parts.append(f"state {state_name}")
            for op in state.ops:
                parts.append(_serialize_op(op))
                if isinstance(op, ReceiveOp):
                    message_vars.add((thread, op.target))
                elif isinstance(op, TransmitOp):
                    message_vars.add((thread, op.source))
            for transition in state.transitions:
                guard = (
                    "-" if transition.guard is None
                    else canonical(transition.guard)
                )
                parts.append(f"goto {transition.target} if {guard}")
    for key in sorted(message_vars):
        placement = design.memory_map.placements.get(key)
        if placement is None:
            parts.append(f"var {key} unplaced")
        else:
            parts.append(
                f"var {key} {placement.residency.name} "
                f"{placement.bram} {placement.base_address}"
            )
    for bram in sorted(design.deplists):
        deplist = design.deplists[bram]
        parts.append(f"deplist {bram}")
        for entry in deplist.entries:
            parts.append(
                f"dep {entry.dep_id} {entry.dependency_number} "
                f"{entry.base_address} {entry.producer_thread} "
                f"{tuple(entry.consumer_threads)}"
            )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def compile_program(design) -> CompiledProgram:
    """The cached codegen pipeline: fingerprint, generate, compile."""
    global _GENERATION_COUNT
    digest = design_fingerprint(design)
    program = _CACHE.get(digest)
    if program is not None:
        return program
    _GENERATION_COUNT += 1
    try:
        source = generate_source(design, digest)
        code = compile(source, f"<compiled-sim {digest[:16]}>", "exec")
        program = CompiledProgram(digest, source, code, supported=True)
    except UnsupportedDesign as exc:
        program = CompiledProgram(
            digest, "", None, supported=False, reason=str(exc)
        )
    _CACHE[digest] = program
    return program


def generation_count() -> int:
    """How many designs have gone through actual code generation (cache
    misses) in this process — the codegen-cache test observable."""
    return _GENERATION_COUNT


def cache_size() -> int:
    return len(_CACHE)


def clear_cache() -> None:
    """Drop every cached program (tests and benchmarks use this to
    measure cold-start codegen honestly)."""
    _CACHE.clear()
