"""Two-phase cycle simulation kernel.

Each cycle:

1. every thread executor runs phase 1 (register work / request submission);
2. every memory controller arbitrates its pending requests;
3. every executor runs phase 2 (absorb grants, advance or hold);
4. registered per-cycle hooks fire (traffic injection, probes, VCD dump).

The kernel is deliberately synchronous and deterministic: given the same
seeded traffic, two runs produce identical traces — which is what lets the
benchmarks measure the *controllers'* (non-)determinism rather than the
simulator's.

**Tick-order contract.** Within each phase, executors tick in sorted
thread-name order and controllers in sorted controller-name order.  This
is a stable, documented contract (``tests/sim/test_tick_order.py``), not
an accident of dict insertion order: every kernel (reference or wheel)
and every rebuild of the same design must tick components identically,
or hook/telemetry event streams would not be comparable across runs.
The simulated *hardware* is insensitive to the order (all phase-1 work
targets disjoint per-thread state and controller arbitration is a pure
function of the submitted request set), but observer callbacks fire in
tick order, so the order is part of the reproducibility surface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.controller import MemResult, MemoryController
from ..core.errors import SimulationTimeout
from .executor import ExecutorStats, ThreadExecutor

#: A per-cycle hook: receives the cycle number and the kernel.
CycleHook = Callable[[int, "SimulationKernel"], None]


@dataclass
class SimulationResult:
    """Summary of one simulation run."""

    cycles_run: int
    executor_stats: dict[str, ExecutorStats] = field(default_factory=dict)
    controller_samples: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [f"simulated {self.cycles_run} cycles"]
        for thread, stats in sorted(self.executor_stats.items()):
            lines.append(
                f"  {thread}: {stats.cycles} cycles, "
                f"{stats.stall_cycles} stalled "
                f"({100 * stats.utilization:.0f}% busy), "
                f"{stats.rounds_completed} rounds"
            )
        return "\n".join(lines)


class SimulationKernel:
    """Drives executors and controllers through the two-phase protocol."""

    def __init__(
        self,
        executors: dict[str, ThreadExecutor],
        controllers: dict[str, MemoryController],
    ):
        self.executors = executors
        self.controllers = controllers
        #: stable tick order (sorted by name — see the module docstring)
        self._executor_order = [
            executors[name] for name in sorted(executors)
        ]
        self._controller_order = [
            (name, controllers[name]) for name in sorted(controllers)
        ]
        self.cycle = 0
        self._pre_hooks: list[CycleHook] = []
        self._post_hooks: list[CycleHook] = []
        #: shared scratch space for cooperating hooks (fault injectors,
        #: watchdogs, probes) — keyed by convention, e.g. ``"watchdog"``
        self.context: dict[str, object] = {}
        #: telemetry seam (:class:`repro.obs.Telemetry`): notified once
        #: per cycle *after* every post-cycle hook has run, so it sees
        #: the cycle's final state (including watchdog mutations).  The
        #: disabled path is a single ``is not None`` check.
        self.observer = None

    # -- progress counters (read by the runtime watchdog) ---------------------------

    def total_advances(self) -> int:
        """State transitions taken across all executors since reset — the
        system-level progress counter: if it stops moving while guarded
        requests stay blocked, the design is dynamically deadlocked."""
        return sum(
            executor.stats.advances for executor in self.executors.values()
        )

    def total_rounds(self) -> int:
        """Completed thread rounds across all executors."""
        return sum(
            executor.stats.rounds_completed
            for executor in self.executors.values()
        )

    def add_pre_cycle_hook(self, hook: CycleHook) -> None:
        """Runs before phase 1 (e.g. traffic injection)."""
        self._pre_hooks.append(hook)

    def add_post_cycle_hook(self, hook: CycleHook) -> None:
        """Runs after phase 2 (e.g. probes, VCD sampling)."""
        self._post_hooks.append(hook)

    def step(self) -> dict[str, dict[str, MemResult]]:
        """Advance the whole design by one clock cycle."""
        for hook in self._pre_hooks:
            hook(self.cycle, self)

        for executor in self._executor_order:
            executor.phase1(self.cycle)

        results: dict[str, dict[str, MemResult]] = {}
        for bram_name, controller in self._controller_order:
            results[bram_name] = controller.arbitrate(self.cycle)

        for executor in self._executor_order:
            executor.phase2(results)

        for hook in self._post_hooks:
            hook(self.cycle, self)

        if self.observer is not None:
            self.observer.on_cycle(self.cycle, self)

        self.cycle += 1
        return results

    def run(
        self,
        cycles: int,
        until: Optional[Callable[["SimulationKernel"], bool]] = None,
        max_wall_seconds: Optional[float] = None,
    ) -> SimulationResult:
        """Run for ``cycles`` clock cycles (or until the predicate holds).

        ``max_wall_seconds`` is the livelock safety valve: when the run
        has spent that much host wall-clock time without finishing, a
        structured :class:`~repro.core.errors.SimulationTimeout` is
        raised (after a completed cycle, so kernel state stays
        consistent).  A hung *campaign* run is additionally killable
        from outside by the campaign engine's worker timeout; this
        valve makes the same condition catchable in-process.
        """
        deadline = self._deadline(max_wall_seconds)
        for __ in range(cycles):
            self.step()
            if until is not None and until(self):
                break
            if deadline is not None and time.monotonic() >= deadline:
                self._raise_wall_timeout(max_wall_seconds)
        return self._result()

    def _deadline(self, max_wall_seconds: Optional[float]) -> Optional[float]:
        if max_wall_seconds is None:
            return None
        if max_wall_seconds < 0:
            raise ValueError("max_wall_seconds must be >= 0")
        return time.monotonic() + max_wall_seconds

    def _raise_wall_timeout(self, max_wall_seconds: float) -> None:
        raise SimulationTimeout(
            f"simulation exceeded its {max_wall_seconds}s wall-clock "
            f"budget after {self.cycle} cycles",
            cycle=self.cycle,
            wall_seconds=max_wall_seconds,
        )

    def _result(self) -> SimulationResult:
        return SimulationResult(
            cycles_run=self.cycle,
            executor_stats={
                name: executor.stats
                for name, executor in self.executors.items()
            },
            controller_samples={
                name: len(controller.latency_samples)
                for name, controller in self.controllers.items()
            },
        )

    def reset(self) -> None:
        """Reset controllers (executor state is rebuilt by the caller)."""
        self.cycle = 0
        for controller in self.controllers.values():
            controller.reset()
