"""Measurement probes over simulation runs.

The probes turn controller latency samples and interface counters into the
quantities the paper discusses:

* :class:`ConsumerLatencyProbe` — per-consumer wait distribution after each
  producer write (the §3.1 non-determinism vs the §3.2 guarantee);
* :class:`ThroughputProbe` — messages forwarded per cycle;
* :func:`determinism_report` — summarizes whether post-write latencies are
  fixed, per dependency and consumer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, pstdev

from ..core.controller import ControllerStats, MemoryController
from .executor import TxInterface


@dataclass
class ConsumerLatencySummary:
    """Wait statistics of one consumer thread on one dependency.

    ``observed`` distinguishes "this consumer really read" from "this
    consumer is declared but never issued a guarded read during the run"
    — the latter renders as ``n/a`` instead of a misleading zero-wait
    deterministic verdict.
    """

    thread: str
    dep_id: str
    waits: list[int]
    observed: bool = True

    @property
    def deterministic(self) -> bool:
        return len(set(self.waits)) <= 1

    @property
    def mean_wait(self) -> float:
        return mean(self.waits) if self.waits else 0.0

    @property
    def max_wait(self) -> int:
        return max(self.waits) if self.waits else 0

    @property
    def jitter(self) -> float:
        """Population standard deviation of the wait — zero iff deterministic."""
        return pstdev(self.waits) if len(self.waits) > 1 else 0.0


@dataclass
class ConsumerLatencyProbe:
    """Extracts per-consumer guarded-read waits from a controller."""

    controller: MemoryController
    guarded_ports: tuple[str, ...] = ("C", "B")

    def summaries(
        self, include_declared: bool = False
    ) -> list[ConsumerLatencySummary]:
        """Per-consumer wait summaries.

        With ``include_declared=True``, consumers declared in the
        controller's dependency configuration that never issued a guarded
        read are also returned, with ``observed=False`` and no waits.
        """
        grouped: dict[tuple[str, str], list[int]] = {}
        for sample in self.controller.latency_samples:
            if sample.port not in self.guarded_ports or sample.dep_id is None:
                continue
            key = (sample.client, sample.dep_id)
            grouped.setdefault(key, []).append(sample.wait_cycles)
        if include_declared:
            for thread, dep_id in self._declared_consumers():
                grouped.setdefault((thread, dep_id), [])
        return [
            ConsumerLatencySummary(
                thread=thread,
                dep_id=dep_id,
                waits=waits,
                observed=bool(waits),
            )
            for (thread, dep_id), waits in sorted(grouped.items())
        ]

    def _declared_consumers(self) -> list[tuple[str, str]]:
        """(consumer thread, dep_id) pairs from the controller's static
        dependency configuration (deplist or modulo schedule)."""
        declared: list[tuple[str, str]] = []
        deplist = getattr(self.controller, "deplist", None)
        if deplist is not None:
            for entry in deplist.entries:
                declared.extend(
                    (thread, entry.dep_id)
                    for thread in entry.consumer_threads
                )
            return declared
        schedule = getattr(self.controller, "schedule", None)
        if schedule is not None:
            for slot in schedule.slots:
                if slot.kind.name == "CONSUMER":
                    declared.append((slot.thread, slot.dep_id))
        return declared

    def overall_stats(self) -> ControllerStats:
        waits = [
            s.wait_cycles
            for s in self.controller.latency_samples
            if s.port in self.guarded_ports and s.dep_id is not None
        ]
        return ControllerStats.from_waits(waits)


@dataclass
class ThroughputProbe:
    """Messages emitted per cycle on the monitored egress interfaces."""

    interfaces: list[TxInterface] = field(default_factory=list)

    def total_messages(self) -> int:
        return sum(tx.count for tx in self.interfaces)

    def throughput(self, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        return self.total_messages() / cycles

    def latencies(self) -> list[int]:
        """Egress timestamps, for end-to-end latency deltas."""
        stamps = sorted(
            cycle for tx in self.interfaces for cycle, __ in tx.messages
        )
        return [b - a for a, b in zip(stamps, stamps[1:])]


@dataclass
class PostWriteLatencyProbe:
    """Measures the paper's §3.1/§3.2 quantity directly: the delay from a
    producer's granted write to each consumer's granted read of the same
    dependency.

    "the latency of consumer read accesses once the corresponding producer
    write happens is not deterministic for the arbitrated memory
    organization" — while the event-driven organization fixes it at the
    consumer's compile-time rank in the event chain.
    """

    controller: MemoryController

    def deltas(self) -> dict[tuple[str, str], list[int]]:
        """(consumer, dep_id) -> list of write-to-read latencies (cycles)."""
        samples = sorted(
            (s for s in self.controller.latency_samples if s.dep_id is not None),
            key=lambda s: s.grant_cycle,
        )
        last_write: dict[str, int] = {}
        grouped: dict[tuple[str, str], list[int]] = {}
        for sample in samples:
            is_write = sample.port in ("D",) or (
                sample.port in ("B", "G")
                and sample.client == self._producer_of(sample.dep_id)
            )
            if is_write:
                last_write[sample.dep_id] = sample.grant_cycle
            elif sample.dep_id in last_write:
                key = (sample.client, sample.dep_id)
                grouped.setdefault(key, []).append(
                    sample.grant_cycle - last_write[sample.dep_id]
                )
        return grouped

    def _producer_of(self, dep_id: str) -> str:
        deplist = getattr(self.controller, "deplist", None)
        if deplist is not None:
            return deplist.entry_for(dep_id).producer_thread
        schedule = getattr(self.controller, "schedule", None)
        if schedule is not None:
            for slot in schedule.producer_slots():
                if slot.dep_id == dep_id:
                    return slot.thread
        return ""

    def summaries(self) -> list[ConsumerLatencySummary]:
        return [
            ConsumerLatencySummary(thread=thread, dep_id=dep_id, waits=waits)
            for (thread, dep_id), waits in sorted(self.deltas().items())
        ]

    def all_deterministic(self) -> bool:
        summaries = self.summaries()
        return bool(summaries) and all(s.deterministic for s in summaries)

    def max_jitter(self) -> float:
        summaries = self.summaries()
        if not summaries:
            return 0.0
        return max(s.jitter for s in summaries)


def determinism_report(
    probe: ConsumerLatencyProbe, include_declared: bool = False
) -> str:
    """Human-readable summary of consumer-read determinism.

    ``include_declared=True`` also lists declared-but-silent consumers,
    rendered as ``n/a`` rather than a spurious deterministic verdict.
    """
    lines = []
    for summary in probe.summaries(include_declared=include_declared):
        if not summary.observed:
            lines.append(
                f"{summary.thread}/{summary.dep_id}: "
                "n/a (no samples observed)"
            )
            continue
        verdict = "deterministic" if summary.deterministic else "variable"
        lines.append(
            f"{summary.thread}/{summary.dep_id}: {verdict}, "
            f"mean {summary.mean_wait:.1f} cycles, "
            f"max {summary.max_wait}, jitter {summary.jitter:.2f}"
        )
    if not lines:
        return "no guarded accesses observed"
    return "\n".join(lines)
