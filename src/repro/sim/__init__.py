"""Cycle-accurate simulation of synthesized designs.

* :mod:`~repro.sim.kernel` — the two-phase clocked simulation kernel;
* :mod:`~repro.sim.wheel` — the event-wheel fast kernel (cycle-equivalent,
  idle stretches skipped via the components' ``next_wake`` contract);
* :mod:`~repro.sim.executor` — FSM thread interpreters with exact 32-bit
  arithmetic and interface models;
* :mod:`~repro.sim.vcd` — VCD trace writing for waveform inspection;
* :mod:`~repro.sim.probes` — latency/throughput/determinism measurement.
"""

from .executor import (
    MASK32,
    ExecutorStats,
    RxInterface,
    ThreadExecutor,
    TxInterface,
    default_intrinsic,
    to_signed,
    to_unsigned,
)
from .kernel import SimulationKernel, SimulationResult
from .wheel import FastKernel, TimingWheel
from .probes import (
    ConsumerLatencyProbe,
    ConsumerLatencySummary,
    ThroughputProbe,
    determinism_report,
)
from .vcd import VcdWriter

__all__ = [
    "MASK32",
    "ExecutorStats",
    "RxInterface",
    "ThreadExecutor",
    "TxInterface",
    "default_intrinsic",
    "to_signed",
    "to_unsigned",
    "SimulationKernel",
    "SimulationResult",
    "FastKernel",
    "TimingWheel",
    "ConsumerLatencyProbe",
    "ConsumerLatencySummary",
    "ThroughputProbe",
    "determinism_report",
    "VcdWriter",
]
