"""Value-change-dump (VCD) trace writer.

Produces standard VCD text viewable in GTKWave.  The kernel's post-cycle
hook samples registered signals (thread states, controller activity) once
per cycle; only changes are emitted, as the format prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

SignalValue = Union[int, str]

#: Printable VCD identifier characters.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for the index-th signal."""
    chars = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


@dataclass
class _Signal:
    name: str
    width: int
    ident: str
    sample: Callable[[], SignalValue]
    last: SignalValue = None  # type: ignore[assignment]


@dataclass
class VcdWriter:
    """Collects signal samples and renders a VCD document.

    Usage::

        vcd = VcdWriter(timescale="8 ns")   # one cycle at 125 MHz
        vcd.add_signal("t1.state", 4, lambda: executor_state_code())
        kernel.add_post_cycle_hook(vcd.hook)
        ...
        text = vcd.render()
    """

    timescale: str = "1 ns"
    module: str = "design"
    _signals: list[_Signal] = field(default_factory=list)
    _changes: list[tuple[int, str, int, SignalValue]] = field(default_factory=list)

    def add_signal(
        self, name: str, width: int, sample: Callable[[], SignalValue]
    ) -> None:
        """Register a signal with a sampling callback."""
        if width <= 0:
            raise ValueError("signal width must be positive")
        ident = _identifier(len(self._signals))
        self._signals.append(_Signal(name, width, ident, sample))

    def sample_all(self, cycle: int) -> None:
        """Sample every signal; record only changes."""
        for signal in self._signals:
            value = signal.sample()
            if value != signal.last:
                signal.last = value
                self._changes.append((cycle, signal.ident, signal.width, value))

    def hook(self, cycle: int, kernel) -> None:
        """Kernel post-cycle hook form of :meth:`sample_all`."""
        self.sample_all(cycle)

    @staticmethod
    def _format_value(value: SignalValue, width: int, ident: str) -> str:
        if isinstance(value, str):
            bits = value
        else:
            bits = format(value & ((1 << width) - 1), f"0{width}b")
        if width == 1:
            return f"{bits}{ident}"
        return f"b{bits} {ident}"

    def render(self) -> str:
        lines = [
            "$date repro simulation $end",
            "$version repro.sim.vcd $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {self.module} $end",
        ]
        for signal in self._signals:
            safe = signal.name.replace(" ", "_")
            lines.append(
                f"$var wire {signal.width} {signal.ident} {safe} $end"
            )
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        current_time = None
        for cycle, ident, width, value in self._changes:
            if cycle != current_time:
                lines.append(f"#{cycle}")
                current_time = cycle
            lines.append(self._format_value(value, width, ident))
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())
