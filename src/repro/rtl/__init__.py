"""RTL generation: structural netlists, primitive library, Verilog emission.

* :mod:`~repro.rtl.netlist` — the module/net/instance IR shared by the
  emitter and the FPGA estimation models;
* :mod:`~repro.rtl.primitives` — parametric macro primitives with
  Virtex-II Pro LUT/FF/level cost models;
* :mod:`~repro.rtl.generate` — the generators for the two memory
  organizations, the lock baseline, thread FSM modules, and full designs;
* :mod:`~repro.rtl.verilog` — the Verilog-2001 emitter.
"""

from .generate import (
    ADDRESS_BITS,
    BASELINE_MAX_CONSUMERS,
    COUNTER_BITS,
    DEFAULT_DEPLIST_ENTRIES,
    WrapperParams,
    generate_arbitrated_wrapper,
    generate_design,
    generate_event_driven_wrapper,
    generate_lock_baseline,
    generate_thread_module,
)
from .netlist import Instance, Module, Net, Port, PortDirection
from .primitives import (
    Adder,
    BramMacro,
    CamRow,
    Counter,
    Decoder,
    Demux,
    EqComparator,
    FsmLogic,
    MacroPrimitive,
    MagComparator,
    Mux,
    PriorityEncoder,
    RandomLogic,
    Register,
    RoundRobinArbiterMacro,
    clog2,
)
from .fsm_verilog import emit_testbench, emit_thread_verilog
from .verilog import VerilogEmitter, emit_verilog

__all__ = [
    "ADDRESS_BITS",
    "BASELINE_MAX_CONSUMERS",
    "COUNTER_BITS",
    "DEFAULT_DEPLIST_ENTRIES",
    "WrapperParams",
    "generate_arbitrated_wrapper",
    "generate_design",
    "generate_event_driven_wrapper",
    "generate_lock_baseline",
    "generate_thread_module",
    "Instance",
    "Module",
    "Net",
    "Port",
    "PortDirection",
    "Adder",
    "BramMacro",
    "CamRow",
    "Counter",
    "Decoder",
    "Demux",
    "EqComparator",
    "FsmLogic",
    "MacroPrimitive",
    "MagComparator",
    "Mux",
    "PriorityEncoder",
    "RandomLogic",
    "Register",
    "RoundRobinArbiterMacro",
    "clog2",
    "VerilogEmitter",
    "emit_verilog",
    "emit_testbench",
    "emit_thread_verilog",
]
