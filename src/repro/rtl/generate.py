"""Netlist generators for the two memory organizations and thread FSMs.

These generators are the reproduction's equivalent of the paper's RTL
emission: every structural parameter (dependency-list capacity, number of
consumer pseudo-ports, slot count of the selection logic) maps to concrete
primitive instances, so the area and timing reported for a configuration
are computed from the same structure the Verilog emitter prints.

Baseline calibration (§4): "The constant flip-flop count is due to the
baseline architecture (as in Figure 2) which requires 66 flip-flops."  The
arbitrated wrapper's fixed part decomposes as:

====================================  ====
dependency list, 4 entries x (9-bit
address + valid + 4-bit counter)        56
port-C round-robin arbiter pointer
(sized for the 8-client maximum)         3
wrapper control FSM (5 states)           3
per-port-class grant register            4
====================================  ====
total                                   66

Consumer pseudo-ports add only multiplexing and request-decode LUTs,
"the additional multiplexing of pseudo-ports does not contribute to the
flip-flop count but only to the LUT count" — which the generator below
reproduces structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.modulo import ModuloSchedule
from ..hic.pragmas import Dependency
from ..memory.deplist import DependencyList
from ..synth.binding import DatapathSummary
from ..synth.fsm import ThreadFsm
from .netlist import Module, PortDirection
from .primitives import (
    Adder,
    BramMacro,
    CamRow,
    Counter,
    Decoder,
    Demux,
    EqComparator,
    FsmLogic,
    MagComparator,
    Mux,
    PriorityEncoder,
    Register,
    RandomLogic,
    RoundRobinArbiterMacro,
    clog2,
)

#: Design-time capacity of the dependency list (entries).  Part of the
#: fixed baseline; the E7 ablation sweeps it.
DEFAULT_DEPLIST_ENTRIES = 4

#: The baseline round-robin arbiter is sized for this many consumer
#: clients; adding consumers up to this limit changes only the muxing.
BASELINE_MAX_CONSUMERS = 8

#: BRAM word address width (512x36 aspect ratio).
ADDRESS_BITS = 9

#: Counter width of a dependency-list entry (supports dn <= 15).
COUNTER_BITS = 4


@dataclass
class WrapperParams:
    """Generation parameters shared by both organizations."""

    consumers: int
    producers: int = 1
    deplist_entries: int = DEFAULT_DEPLIST_ENTRIES
    address_bits: int = ADDRESS_BITS
    data_bits: int = 36


def generate_arbitrated_wrapper(
    params: WrapperParams, instance_suffix: str = ""
) -> Module:
    """The §3.1 arbitrated memory organization around one BRAM.

    Structure (Figure 2): the BRAM with port A direct on physical port 0;
    ports B/C/D sharing physical port 1 behind the priority logic; the
    CAM-matched dependency list with per-entry counters; round-robin
    arbiters for the C and D client buses; and the consumer pseudo-port
    multiplexing that scales with ``params.consumers``.
    """
    m = Module(
        name=f"arbitrated_wrapper{instance_suffix}_c{params.consumers}"
    )
    m.add_port("clk", PortDirection.INPUT)
    m.add_port("rst", PortDirection.INPUT)
    m.add_port("porta_addr", PortDirection.INPUT, params.address_bits)
    m.add_port("porta_wdata", PortDirection.INPUT, params.data_bits)
    m.add_port("porta_rdata", PortDirection.OUTPUT, params.data_bits)
    m.add_port("portc_req", PortDirection.INPUT, params.consumers)
    m.add_port("portc_addr", PortDirection.INPUT,
               params.address_bits * params.consumers)
    m.add_port("portc_rdata", PortDirection.OUTPUT, params.data_bits)
    m.add_port("portc_grant", PortDirection.OUTPUT, params.consumers)
    m.add_port("portd_req", PortDirection.INPUT, params.producers)
    m.add_port("portd_addr", PortDirection.INPUT,
               params.address_bits * params.producers)
    m.add_port("portd_wdata", PortDirection.INPUT,
               params.data_bits * params.producers)
    m.add_port("portd_grant", PortDirection.OUTPUT, params.producers)

    m.add_net("p1_addr", params.address_bits)
    m.add_net("p1_wdata", params.data_bits)
    m.add_net("match_line", params.deplist_entries)
    m.add_net("count_nz", params.deplist_entries)
    m.add_net("grant_c", params.consumers)
    m.add_net("grant_d", params.producers)
    m.add_net("class_sel", 2)

    # The physical BRAM.
    m.add_instance("bram", BramMacro(), {"addr_a": "porta_addr"})

    # Dependency list: CAM rows + produce-consume counters (fixed baseline).
    for i in range(params.deplist_entries):
        m.add_instance(
            f"dep_row{i}",
            CamRow(key_bits=params.address_bits),
            {"match": "match_line"},
        )
        m.add_instance(
            f"dep_count{i}",
            Counter(width=COUNTER_BITS),
            {"nonzero": "count_nz"},
        )

    # Round-robin arbiters, sized for the baseline maximum (fixed FF cost).
    m.add_instance(
        "arb_c",
        RoundRobinArbiterMacro(clients=BASELINE_MAX_CONSUMERS),
        {"grant": "grant_c"},
    )
    if params.producers > 1:
        m.add_instance(
            "arb_d",
            RoundRobinArbiterMacro(clients=params.producers),
            {"grant": "grant_d"},
        )

    # Port-class priority selection (D > C > B) and wrapper control FSM.
    m.add_instance("prio", PriorityEncoder(inputs=3), {"sel": "class_sel"})
    m.add_instance(
        "ctrl",
        FsmLogic(states=5, transitions=8),
        {"clk": "clk", "rst": "rst"},
    )
    m.add_instance("grant_reg", Register(width=4), {"clk": "clk"})

    # Consumer pseudo-port multiplexing: scales with the consumer count but
    # adds no flip-flops (matching the paper's observation).
    m.add_instance(
        "c_addr_mux",
        Mux(width=params.address_bits, inputs=params.consumers),
        {"out": "p1_addr"},
    )
    m.add_instance(
        "c_req_logic", RandomLogic(lut_count=params.consumers)
    )
    m.add_instance("c_grant_dec", Decoder(outputs=params.consumers))

    # Producer port muxing (free for the single-producer scenarios).
    m.add_instance(
        "d_mux",
        Mux(
            width=params.address_bits + params.data_bits,
            inputs=params.producers,
        ),
        {"out": "p1_wdata"},
    )

    # Critical path: CAM match -> match-line OR tree -> counter-nonzero ->
    # class priority -> round-robin grant -> consumer address mux -> BRAM
    # address pins.  The OR tree over the match lines is what deepens when
    # the dependency list grows (the §6 ablation's timing effect).
    cam_levels = CamRow(params.address_bits).logic_levels()
    match_tree = _or_tree_levels(params.deplist_entries)
    path = (
        cam_levels
        + match_tree
        + 1  # counter non-zero gate
        + PriorityEncoder(inputs=3).logic_levels()
        + RoundRobinArbiterMacro(BASELINE_MAX_CONSUMERS).logic_levels()
        + Mux(params.address_bits, params.consumers).logic_levels()
    )
    m.note_path("guarded_read", path)
    m.note_path(
        "producer_write",
        cam_levels + match_tree + 1 + PriorityEncoder(inputs=3).logic_levels()
        + Mux(params.address_bits + params.data_bits,
              params.producers).logic_levels() + 1,
    )
    return m


def _or_tree_levels(inputs: int) -> int:
    """Depth of a 4-input-LUT OR tree over ``inputs`` lines."""
    levels = 0
    remaining = inputs
    while remaining > 1:
        remaining = -(-remaining // 4)
        levels += 1
    return levels


def generate_event_driven_wrapper(
    params: WrapperParams,
    dependencies: list[Dependency],
    instance_suffix: str = "",
) -> Module:
    """The §3.2 event-driven statically scheduled organization.

    Structure (Figure 3): port A direct; port B behind a mux (c) / demux
    (a) network driven by the modulo-scheduling selection logic; event
    registers chaining the producer's write into each consumer in the
    compile-time order.
    """
    schedule = ModuloSchedule.build(dependencies)
    slots = max(1, len(schedule))
    m = Module(
        name=f"event_driven_wrapper{instance_suffix}_c{params.consumers}"
    )
    m.add_port("clk", PortDirection.INPUT)
    m.add_port("rst", PortDirection.INPUT)
    m.add_port("porta_addr", PortDirection.INPUT, params.address_bits)
    m.add_port("porta_wdata", PortDirection.INPUT, params.data_bits)
    m.add_port("porta_rdata", PortDirection.OUTPUT, params.data_bits)
    m.add_port("portb_req", PortDirection.INPUT, slots)
    m.add_port("portb_addr", PortDirection.INPUT,
               params.address_bits * slots)
    m.add_port("portb_rdata", PortDirection.OUTPUT, params.data_bits)
    m.add_port("event_out", PortDirection.OUTPUT, max(1, params.consumers))

    m.add_net("select", schedule.select_bits)
    m.add_net("slot_onehot", slots)
    m.add_net("p1_addr", params.address_bits)

    m.add_instance("bram", BramMacro(), {"addr_a": "porta_addr"})

    # Selection logic: slot register + modulo advance + slot decoder.
    m.add_instance(
        "select_reg", Register(width=schedule.select_bits), {"clk": "clk"}
    )
    m.add_instance("select_inc", Counter(width=schedule.select_bits))
    m.add_instance(
        "wrap_cmp", EqComparator(width=schedule.select_bits)
    )
    m.add_instance("slot_dec", Decoder(outputs=slots), {"sel": "slot_onehot"})

    # The mux (c) and demux (a) network of Figure 3.
    m.add_instance(
        "b_addr_mux",
        Mux(width=params.address_bits, inputs=slots),
        {"out": "p1_addr"},
    )
    m.add_instance(
        "b_wdata_mux",
        Mux(width=params.data_bits, inputs=max(1, params.producers)),
    )
    m.add_instance(
        "b_rdata_demux",
        Demux(width=1, outputs=slots),
    )

    # Event chain: one event register per consumer endpoint.
    m.add_instance(
        "event_reg", Register(width=params.consumers), {"clk": "clk"}
    )
    m.add_instance("event_chain", RandomLogic(lut_count=2 * params.consumers))

    # Selection control FSM (block / advance handshake).
    m.add_instance(
        "ctrl", FsmLogic(states=4, transitions=6), {"clk": "clk", "rst": "rst"}
    )
    m.add_instance("sync_reg", Register(width=2), {"clk": "clk"})

    # Critical path: slot decode -> request gate -> control gate ->
    # port-B address mux -> BRAM address pins, plus the event handshake
    # whose fanout into the consumer FSMs grows with the consumer count
    # (this is why the event-driven frequency advantage narrows as
    # consumers are added, as in the paper's 177/136/129 MHz series).
    path = (
        Decoder(outputs=slots).logic_levels()
        + 1  # request/slot gating
        + FsmLogic(states=4, transitions=6).logic_levels()
        + Mux(params.address_bits, slots).logic_levels()
        + 1  # event handshake into the chain register
        + clog2(max(1, params.consumers))  # event fanout buffering
    )
    m.note_path("scheduled_access", path)
    return m


def generate_lock_baseline(
    params: WrapperParams, instance_suffix: str = ""
) -> Module:
    """A hand-built lock/flag controller (for the E8 comparison): lock and
    valid words in registers, plus the probe/compare logic each client
    needs.  No CAM, but every client carries its own protocol FSM."""
    clients = params.consumers + params.producers
    m = Module(name=f"lock_baseline{instance_suffix}_c{params.consumers}")
    m.add_port("clk", PortDirection.INPUT)
    m.add_port("rst", PortDirection.INPUT)
    m.add_instance("bram", BramMacro())
    m.add_instance("lock_reg", Register(width=params.deplist_entries))
    m.add_instance("valid_reg", Register(width=params.deplist_entries))
    for i in range(params.deplist_entries):
        m.add_instance(f"count{i}", Counter(width=COUNTER_BITS))
    m.add_instance(
        "addr_mux", Mux(width=params.address_bits, inputs=clients)
    )
    m.add_instance("lock_arb", RoundRobinArbiterMacro(clients=clients))
    for i in range(clients):
        m.add_instance(f"proto_fsm{i}", FsmLogic(states=4, transitions=7))
    m.note_path(
        "lock_probe",
        RoundRobinArbiterMacro(clients).logic_levels()
        + 2
        + Mux(params.address_bits, clients).logic_levels(),
    )
    return m


def generate_fifo_channel(
    channel: str,
    depth: int = 16,
    data_bits: int = 36,
) -> Module:
    """A FIFO-lowered channel (see :mod:`repro.analysis.channels`).

    Where the guarded organizations spend a CAM-matched dependency list,
    arbiters, and priority logic on *general* synchronization, a channel
    proven single-writer in-order needs only a BRAM ring buffer, two
    wrapping pointers, and full/empty comparators — the classic hardware
    FIFO.  The structural gap between this module and an arbitrated
    wrapper is exactly the area the classifier saves per lowered channel
    (reported by ``python -m repro scenarios``).
    """
    if depth < 1:
        raise ValueError("FIFO depth must be positive")
    pointer_bits = clog2(max(2, depth)) + 1  # extra wrap bit: full != empty
    m = Module(name=f"fifo_channel_{channel}")
    m.add_port("clk", PortDirection.INPUT)
    m.add_port("rst", PortDirection.INPUT)
    m.add_port("push", PortDirection.INPUT)
    m.add_port("push_data", PortDirection.INPUT, data_bits)
    m.add_port("pop", PortDirection.INPUT)
    m.add_port("pop_data", PortDirection.OUTPUT, data_bits)
    m.add_port("full", PortDirection.OUTPUT)
    m.add_port("empty", PortDirection.OUTPUT)

    m.add_net("head_ptr", pointer_bits)
    m.add_net("tail_ptr", pointer_bits)

    # Ring storage: one BRAM, producer side on port 0, consumer on port 1.
    m.add_instance("ring", BramMacro(), {"addr_a": "tail_ptr"})
    m.add_instance(
        "head", Counter(width=pointer_bits), {"clk": "clk", "out": "head_ptr"}
    )
    m.add_instance(
        "tail", Counter(width=pointer_bits), {"clk": "clk", "out": "tail_ptr"}
    )
    # Empty: pointers equal.  Full: pointers equal modulo depth with
    # differing wrap bits (the occupancy subtract folds into the same
    # comparator structure).
    m.add_instance("empty_cmp", EqComparator(width=pointer_bits))
    m.add_instance("full_cmp", EqComparator(width=pointer_bits))
    # Handshake gating: push qualified by !full, pop by !empty.
    m.add_instance("gate", RandomLogic(lut_count=2))

    # Critical path: pointer compare -> handshake gate -> pointer
    # increment enable -> BRAM address pins.  No CAM, no arbiter, no
    # priority logic — the whole point of the lowering.
    m.note_path(
        "channel_handshake",
        EqComparator(width=pointer_bits).logic_levels() + 1 + 1,
    )
    return m


def generate_thread_module(
    fsm: ThreadFsm, datapath: DatapathSummary
) -> Module:
    """A synthesized thread: control FSM + bound datapath."""
    m = Module(name=f"thread_{fsm.thread}")
    m.add_port("clk", PortDirection.INPUT)
    m.add_port("rst", PortDirection.INPUT)

    transitions = sum(
        len(state.transitions) for state in fsm.states.values()
    )
    m.add_instance(
        "ctrl",
        FsmLogic(states=max(1, fsm.state_count), transitions=transitions),
        {"clk": "clk", "rst": "rst"},
    )

    for reg in datapath.registers:
        m.add_instance(f"reg_{reg.name.replace('$', 'tmp')}",
                       Register(width=reg.width))

    # Fabric mode: a thread whose memory ops land on several banks needs a
    # return-data mux selecting among the banks' read-data buses.
    if len(datapath.memory_banks_used) > 1:
        m.add_instance(
            "bank_rdata_mux",
            Mux(width=36, inputs=len(datapath.memory_banks_used)),
        )
        m.add_instance(
            "bank_sel_reg",
            Register(width=clog2(len(datapath.memory_banks_used))),
        )

    for i, unit in enumerate(datapath.units):
        if unit.kind == "alu":
            m.add_instance(f"alu{i}", Adder(width=unit.width))
        elif unit.kind == "cmp":
            m.add_instance(f"cmp{i}", MagComparator(width=unit.width))
        elif unit.kind == "mul":
            # A multiplier maps to the dedicated MULT18x18s; charge the
            # interconnect logic only.
            m.add_instance(f"mul{i}", RandomLogic(lut_count=unit.width // 2))
        else:  # call: an opaque combinational block
            m.add_instance(
                f"fn{i}", RandomLogic(lut_count=2 * unit.width, levels=3)
            )
        if unit.mux_inputs > 2:
            m.add_instance(
                f"opmux{i}", Mux(width=unit.width, inputs=unit.mux_inputs)
            )

    depth = 2  # state decode + enable
    if datapath.units:
        depth += max(
            3 if unit.kind == "call" else 1 for unit in datapath.units
        )
    if len(datapath.memory_banks_used) > 1:
        depth += Mux(36, len(datapath.memory_banks_used)).logic_levels()
    m.note_path("datapath", depth)
    return m


def generate_crossbar(
    num_banks: int,
    clients: int,
    link_latency: int = 1,
    batch_size: int = 1,
    address_bits: int = ADDRESS_BITS,
    data_bits: int = 36,
) -> Module:
    """The fabric's crossbar interconnect between thread clients and banks.

    Structure per bank output: a request decode over the clients' bank-
    select fields, a round-robin output arbiter, an address/data mux fanning
    the winning client onto the bank's wrapper port, ``batch_size - 1``
    extra grant lanes, and ``link_latency`` pipeline register stages on the
    routed bus.  Both area and the routing path grow monotonically with the
    bank count: every bank adds an output column, and the bank-select
    decode plus grant-merge OR tree deepen with ``clog2`` / OR-tree terms.
    """
    if num_banks <= 0:
        raise ValueError("crossbar needs at least one bank")
    if clients <= 0:
        raise ValueError("crossbar needs at least one client")
    m = Module(name=f"fabric_crossbar_b{num_banks}")
    m.add_port("clk", PortDirection.INPUT)
    m.add_port("rst", PortDirection.INPUT)
    m.add_port("in_req", PortDirection.INPUT, clients)
    m.add_port("in_addr", PortDirection.INPUT, address_bits * clients)
    m.add_port("in_wdata", PortDirection.INPUT, data_bits * clients)
    m.add_port("out_grant", PortDirection.OUTPUT, clients)
    m.add_port("bank_req", PortDirection.OUTPUT, num_banks)
    m.add_port("bank_addr", PortDirection.OUTPUT, address_bits * num_banks)
    m.add_port("bank_wdata", PortDirection.OUTPUT, data_bits * num_banks)

    m.add_net("bank_onehot", num_banks * clients)
    m.add_net("routed_bus", (address_bits + data_bits) * num_banks)

    # Ingress bank-select decode: one decoder per client.
    for c in range(clients):
        m.add_instance(
            f"bank_dec{c}",
            Decoder(outputs=num_banks),
            {"sel": "bank_onehot"},
        )

    lanes = min(batch_size, clients)
    for b in range(num_banks):
        m.add_instance(
            f"out_arb{b}",
            RoundRobinArbiterMacro(clients=clients),
        )
        for lane in range(lanes):
            m.add_instance(
                f"out_mux{b}_{lane}",
                Mux(width=address_bits + data_bits, inputs=clients),
                {"out": "routed_bus"},
            )
        m.add_instance(f"req_merge{b}", RandomLogic(lut_count=clients))
        for stage in range(max(1, link_latency)):
            m.add_instance(
                f"link_reg{b}_{stage}",
                Register(width=address_bits + data_bits),
                {"clk": "clk"},
            )

    # Routing path: bank-select decode -> grant-merge OR tree over the
    # clients -> output arbiter -> routed-bus mux.  Deepens with both the
    # client count and the bank count.
    path = (
        Decoder(outputs=num_banks).logic_levels()
        + _or_tree_levels(clients)
        + RoundRobinArbiterMacro(clients).logic_levels()
        + Mux(address_bits + data_bits, clients).logic_levels()
        + clog2(max(2, num_banks))  # bank column fanout buffering
    )
    m.note_path("crossbar_route", path)
    return m


def generate_design(
    name: str,
    wrappers: list[Module],
    threads: list[Module],
) -> Module:
    """The top-level design: thread modules wired to wrapper modules."""
    top = Module(name=name)
    top.add_port("clk", PortDirection.INPUT)
    top.add_port("rst", PortDirection.INPUT)
    for module in wrappers + threads:
        top.add_instance(
            f"u_{module.name}", module, {"clk": "clk", "rst": "rst"}
        )
    return top
