"""Behavioral Verilog emission for synthesized thread FSMs.

While :mod:`repro.rtl.generate` produces the *structural* thread modules
the area model prices, this module emits each thread as a complete
behavioral Verilog state machine — the RTL a designer would actually read:
state localparams, a clocked ``case`` over the state register, datapath
register updates, and the request/grant handshake toward the memory
wrapper:

* a memory state asserts ``mem_req`` (with bank/port/address/write-data)
  and holds until ``mem_grant`` — exactly the blocking semantics the
  controllers implement;
* ``receive`` states use an ``rx_ready``/``rx_valid`` handshake (message
  payload is DMA-ed into the thread's BRAM region by the interface, as in
  the simulator);
* hic's combinational functions are emitted as Verilog ``function``
  definitions computing the same Knuth-hash mixing as the simulator's
  :func:`repro.sim.executor.default_intrinsic`, so the RTL and the Python
  simulation are behaviorally aligned even for unbound intrinsics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hic import ast
from ..synth.fsm import (
    ComputeOp,
    MemReadOp,
    MemWriteOp,
    ReceiveOp,
    ThreadFsm,
    TransmitOp,
)

#: Verilog operator spellings (hic operators map 1:1).
_BINOP = {
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "<<": "<<", ">>": ">>", "&": "&", "|": "|", "^": "^",
    "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "&&": "&&", "||": "||",
}


def sanitize(name: str) -> str:
    """A hic name as a legal Verilog identifier."""
    return name.replace("$", "tmp_").replace(".", "_")


@dataclass
class _ExprRenderer:
    """Renders hic expressions as Verilog, collecting used functions."""

    functions: set = field(default_factory=set)

    def render(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLiteral):
            return f"32'd{expr.value & 0xFFFFFFFF}"
        if isinstance(expr, ast.CharLiteral):
            return f"8'd{expr.value}"
        if isinstance(expr, ast.BoolLiteral):
            return "1'b1" if expr.value else "1'b0"
        if isinstance(expr, ast.Name):
            return sanitize(expr.ident)
        if isinstance(expr, ast.Unary):
            op = {"-": "-", "!": "!", "~": "~"}[expr.op]
            return f"({op}{self.render(expr.operand)})"
        if isinstance(expr, ast.Binary):
            if expr.op not in _BINOP:
                raise ValueError(f"operator {expr.op!r} has no Verilog form")
            return (
                f"({self.render(expr.left)} {_BINOP[expr.op]} "
                f"{self.render(expr.right)})"
            )
        if isinstance(expr, ast.Conditional):
            return (
                f"({self.render(expr.cond)} ? "
                f"{self.render(expr.then_value)} : "
                f"{self.render(expr.else_value)})"
            )
        if isinstance(expr, ast.Call):
            self.functions.add((expr.callee, len(expr.args)))
            args = ", ".join(self.render(a) for a in expr.args)
            return f"fn_{sanitize(expr.callee)}({args})"
        raise TypeError(
            f"cannot render {type(expr).__name__} in thread Verilog"
        )


def _function_definition(name: str, arity: int) -> str:
    """A Verilog function mirroring ``default_intrinsic`` exactly."""
    salt = sum(ord(c) for c in name) & 0xFFFFFFFF
    inputs = "\n".join(
        f"  input [31:0] a{i};" for i in range(arity)
    )
    mixing = "\n".join(
        f"    acc = acc * 32'd2654435761 + a{i} + 32'd1;"
        for i in range(arity)
    )
    return (
        f"function [31:0] fn_{sanitize(name)};\n"
        f"{inputs}\n"
        "  reg [31:0] acc;\n"
        "  begin\n"
        f"    acc = 32'd{salt};\n"
        f"{mixing}\n"
        f"    fn_{sanitize(name)} = acc;\n"
        "  end\n"
        "endfunction"
    )


#: Wrapper-port encoding on the memory interface (2 bits).
_PORT_CODE = {"A": 0, "B": 1, "C": 2, "D": 3}


def emit_thread_verilog(
    fsm: ThreadFsm,
    banks: list[str] | None = None,
    constants: dict[str, int] | None = None,
) -> str:
    """Emit one thread FSM as a behavioral Verilog module.

    Args:
        fsm: The synthesized (optionally optimized) thread FSM.
        banks: Memory bank names in bank-select order; defaults to the
            banks the FSM actually touches, sorted.
        constants: ``#constant`` pragma values, emitted as localparams.
    """
    constants = dict(constants or {})
    renderer = _ExprRenderer()
    state_names = list(fsm.states)
    state_index = {name: i for i, name in enumerate(state_names)}
    state_bits = max(1, (len(state_names) - 1).bit_length())

    if banks is None:
        banks = sorted(
            {
                op.bram
                for state in fsm.states.values()
                for op in state.ops
                if isinstance(op, (MemReadOp, MemWriteOp))
            }
        )
    bank_index = {bank: i for i, bank in enumerate(banks)}
    bank_bits = max(1, (len(banks) - 1).bit_length()) if banks else 1

    # Datapath registers: compute destinations, memory-load targets, and
    # every plain variable referenced by an expression (read-before-write
    # registers power up at x in hardware; the simulator models them as 0).
    registers: set[str] = set()
    uses_rx = uses_tx = uses_mem = False

    def note_expr_names(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.ident not in constants:
                registers.add(node.ident)

    for state in fsm.states.values():
        for tr in state.transitions:
            note_expr_names(tr.guard)
        for op in state.ops:
            if isinstance(op, ComputeOp):
                registers.add(op.dest)
                note_expr_names(op.expr)
            elif isinstance(op, MemReadOp):
                registers.add(op.dest)
                note_expr_names(op.offset_expr)
                uses_mem = True
            elif isinstance(op, MemWriteOp):
                note_expr_names(op.value_expr)
                note_expr_names(op.offset_expr)
                uses_mem = True
            elif isinstance(op, ReceiveOp):
                uses_rx = True
            elif isinstance(op, TransmitOp):
                uses_tx = True

    lines: list[str] = []
    lines.append(f"module thread_{fsm.thread}_fsm (")
    ports = ["  input  wire clk", "  input  wire rst"]
    if uses_mem:
        ports += [
            "  output reg  mem_req",
            "  output reg  mem_we",
            f"  output reg  [{bank_bits - 1}:0] mem_bank",
            "  output reg  [1:0] mem_port",
            "  output reg  [8:0] mem_addr",
            "  output reg  [35:0] mem_wdata",
            "  input  wire mem_grant",
            "  input  wire [35:0] mem_rdata",
        ]
    if uses_rx:
        ports += ["  output reg  rx_ready", "  input  wire rx_valid"]
    if uses_tx:
        ports += ["  output reg  tx_valid", "  input  wire tx_ready"]
    lines.append(",\n".join(ports))
    lines.append(");")
    lines.append("")

    for i, name in enumerate(state_names):
        lines.append(f"  localparam S_{name.upper()} = {state_bits}'d{i};")
    lines.append(f"  reg [{state_bits - 1}:0] state;")
    lines.append("")
    for name, value in sorted(constants.items()):
        lines.append(
            f"  localparam [31:0] {sanitize(name)} = 32'd{value & 0xFFFFFFFF};"
        )
    for reg in sorted(registers):
        lines.append(f"  reg [31:0] {sanitize(reg)} = 32'd0;")
    lines.append("")

    # Body: collect statements first so function definitions (discovered
    # during rendering) can be placed before the always block.
    body: list[str] = []
    body.append("  always @(posedge clk) begin")
    body.append("    if (rst) begin")
    body.append(f"      state <= S_{fsm.initial.upper()};")
    if uses_mem:
        body.append("      mem_req <= 1'b0;")
    if uses_rx:
        body.append("      rx_ready <= 1'b0;")
    if uses_tx:
        body.append("      tx_valid <= 1'b0;")
    body.append("    end else begin")
    if uses_mem:
        body.append("      mem_req <= 1'b0;")
    if uses_rx:
        body.append("      rx_ready <= 1'b0;")
    if uses_tx:
        body.append("      tx_valid <= 1'b0;")
    body.append("      case (state)")

    for name in state_names:
        state = fsm.states[name]
        body.append(f"        S_{name.upper()}: begin")
        advance = _render_transitions(state, renderer, indent="          ")
        mem_ops = [
            op for op in state.ops if isinstance(op, (MemReadOp, MemWriteOp))
        ]
        if mem_ops:
            op = mem_ops[0]
            address = f"9'd{op.base_address}"
            if op.offset_expr is not None:
                address = (
                    f"(9'd{op.base_address} + "
                    f"{renderer.render(op.offset_expr)}[8:0])"
                )
            body.append("          mem_req  <= 1'b1;")
            body.append(
                f"          mem_bank <= {bank_bits}'d"
                f"{bank_index.get(op.bram, 0)};"
            )
            body.append(f"          mem_port <= 2'd{_PORT_CODE[op.port]};")
            body.append(f"          mem_addr <= {address};")
            if isinstance(op, MemWriteOp):
                body.append("          mem_we   <= 1'b1;")
                body.append(
                    "          mem_wdata <= {4'd0, "
                    f"{renderer.render(op.value_expr)}}};"
                )
            else:
                body.append("          mem_we   <= 1'b0;")
            body.append("          if (mem_grant) begin")
            if isinstance(op, MemReadOp):
                body.append(
                    f"            {sanitize(op.dest)} <= mem_rdata[31:0];"
                )
            body.extend("  " + line for line in advance)
            body.append("          end")
        elif any(isinstance(op, ReceiveOp) for op in state.ops):
            body.append("          rx_ready <= 1'b1;")
            body.append("          if (rx_valid) begin")
            body.extend("  " + line for line in advance)
            body.append("          end")
        elif any(isinstance(op, TransmitOp) for op in state.ops):
            body.append("          tx_valid <= 1'b1;")
            body.append("          if (tx_ready) begin")
            body.extend("  " + line for line in advance)
            body.append("          end")
        else:
            for op in state.ops:
                assert isinstance(op, ComputeOp)
                body.append(
                    f"          {sanitize(op.dest)} <= "
                    f"{renderer.render(op.expr)};"
                )
            body.extend(advance)
        body.append("        end")

    body.append(f"        default: state <= S_{fsm.initial.upper()};")
    body.append("      endcase")
    body.append("    end")
    body.append("  end")

    for fn_name, arity in sorted(renderer.functions):
        lines.append("  " + _function_definition(fn_name, arity).replace(
            "\n", "\n  "
        ))
        lines.append("")
    lines.extend(body)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _render_transitions(state, renderer: _ExprRenderer, indent: str) -> list[str]:
    """The state's next-state logic as Verilog lines."""
    lines: list[str] = []
    if not state.transitions:
        return [f"{indent}state <= state;  // terminal wait"]
    open_branches = 0
    for i, transition in enumerate(state.transitions):
        target = f"S_{transition.target.upper()}"
        if transition.guard is None:
            pad = indent + "  " * open_branches
            lines.append(f"{pad}state <= {target};")
            break
        guard = renderer.render(transition.guard)
        pad = indent + "  " * open_branches
        lines.append(f"{pad}if ({guard} != 0) state <= {target};")
        lines.append(f"{pad}else begin")
        open_branches += 1
    for level in range(open_branches, 0, -1):
        pad = indent + "  " * (level - 1)
        lines.append(f"{pad}end")
    return lines


def emit_testbench(module_name: str, cycles: int = 1000) -> str:
    """A minimal self-checking testbench skeleton for an emitted design."""
    return f"""\
`timescale 1ns / 1ps
module tb_{module_name};
  reg clk = 1'b0;
  reg rst = 1'b1;
  always #4 clk = ~clk;  // 125 MHz, the paper's target clock

  {module_name} dut (.clk(clk), .rst(rst));

  initial begin
    $dumpfile("tb_{module_name}.vcd");
    $dumpvars(0, tb_{module_name});
    repeat (4) @(posedge clk);
    rst = 1'b0;
    repeat ({cycles}) @(posedge clk);
    $display("tb_{module_name}: ran {cycles} cycles");
    $finish;
  end
endmodule
"""
