"""Structural netlist intermediate representation.

The RTL generators build each design as a hierarchy of :class:`Module`
objects whose instances are either *macro primitives* (see
:mod:`repro.rtl.primitives` — registers, muxes, comparators, CAM rows, …)
or other modules.  The same netlist feeds both the Verilog emitter and the
FPGA area/timing models, so the numbers reported for a design always come
from the structure that would be synthesized.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Union

from .primitives import MacroPrimitive


class PortDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


@dataclass(frozen=True)
class Net:
    """A named wire (or bus) inside a module."""

    name: str
    width: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"net {self.name!r} must have positive width")


@dataclass(frozen=True)
class Port:
    """A module boundary connection."""

    name: str
    direction: PortDirection
    width: int = 1


@dataclass
class Instance:
    """One instantiated component: a macro primitive or a child module."""

    name: str
    component: Union[MacroPrimitive, "Module"]
    connections: dict[str, str] = field(default_factory=dict)

    @property
    def is_primitive(self) -> bool:
        return isinstance(self.component, MacroPrimitive)


@dataclass
class Module:
    """A netlist module: ports, nets, and instances."""

    name: str
    ports: list[Port] = field(default_factory=list)
    nets: dict[str, Net] = field(default_factory=dict)
    instances: list[Instance] = field(default_factory=list)
    #: documented critical paths: name -> logic levels (LUT levels); the
    #: timing model takes the worst.
    critical_paths: dict[str, int] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------------

    def add_port(self, name: str, direction: PortDirection, width: int = 1) -> Port:
        if any(p.name == name for p in self.ports):
            raise ValueError(f"duplicate port {name!r} in module {self.name!r}")
        port = Port(name, direction, width)
        self.ports.append(port)
        self.nets.setdefault(name, Net(name, width))
        return port

    def add_net(self, name: str, width: int = 1) -> Net:
        if name in self.nets:
            existing = self.nets[name]
            if existing.width != width:
                raise ValueError(
                    f"net {name!r} redeclared with width {width} "
                    f"(was {existing.width})"
                )
            return existing
        net = Net(name, width)
        self.nets[name] = net
        return net

    def add_instance(
        self,
        name: str,
        component: Union[MacroPrimitive, "Module"],
        connections: dict[str, str] | None = None,
    ) -> Instance:
        if any(inst.name == name for inst in self.instances):
            raise ValueError(
                f"duplicate instance {name!r} in module {self.name!r}"
            )
        connections = dict(connections or {})
        for net_name in connections.values():
            if net_name not in self.nets:
                raise KeyError(
                    f"instance {name!r} connects to undeclared net "
                    f"{net_name!r} in module {self.name!r}"
                )
        instance = Instance(name, component, connections)
        self.instances.append(instance)
        return instance

    def note_path(self, name: str, logic_levels: int) -> None:
        """Record a documented critical path through this module."""
        self.critical_paths[name] = logic_levels

    # -- queries --------------------------------------------------------------------

    def primitive_instances(self) -> Iterator[tuple[str, MacroPrimitive]]:
        """All primitive instances in this module and its children, with
        hierarchical names."""
        for instance in self.instances:
            if isinstance(instance.component, MacroPrimitive):
                yield instance.name, instance.component
            else:
                for sub_name, prim in instance.component.primitive_instances():
                    yield f"{instance.name}.{sub_name}", prim

    def child_modules(self) -> list["Module"]:
        seen: dict[str, Module] = {}
        for instance in self.instances:
            if isinstance(instance.component, Module):
                child = instance.component
                seen.setdefault(child.name, child)
                for grandchild in child.child_modules():
                    seen.setdefault(grandchild.name, grandchild)
        return list(seen.values())

    def total_luts(self) -> int:
        return sum(prim.luts() for __, prim in self.primitive_instances())

    def total_ffs(self) -> int:
        return sum(prim.ffs() for __, prim in self.primitive_instances())

    def total_brams(self) -> int:
        return sum(prim.brams() for __, prim in self.primitive_instances())

    def worst_path(self) -> tuple[str, int]:
        """The deepest documented path across the hierarchy."""
        worst_name, worst_levels = f"{self.name}:default", 1
        for path_name, levels in self.critical_paths.items():
            if levels > worst_levels:
                worst_name, worst_levels = f"{self.name}:{path_name}", levels
        for instance in self.instances:
            if isinstance(instance.component, Module):
                name, levels = instance.component.worst_path()
                if levels > worst_levels:
                    worst_name, worst_levels = name, levels
        return worst_name, worst_levels

    def hierarchy(self, indent: int = 0) -> str:
        """A printable module tree with per-module LUT/FF counts — the
        reproduction of the paper's Figure 2/3 block structure."""
        pad = "  " * indent
        lines = [
            f"{pad}{self.name}  (LUT={self.total_luts()}, FF={self.total_ffs()},"
            f" BRAM={self.total_brams()})"
        ]
        for instance in self.instances:
            if isinstance(instance.component, Module):
                lines.append(instance.component.hierarchy(indent + 1))
            else:
                prim = instance.component
                lines.append(
                    f"{pad}  [{instance.name}] {prim.describe()}"
                )
        return "\n".join(lines)
