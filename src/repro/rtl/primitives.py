"""Macro primitive library with Virtex-II Pro cost models.

Each macro models a parametric RTL building block and knows its cost on the
Virtex-II Pro fabric:

* ``luts()`` — 4-input LUTs (each slice holds two);
* ``ffs()`` — flip-flops (each slice holds two);
* ``brams()`` — 18 Kb block RAMs;
* ``logic_levels()`` — LUT levels through the macro, the timing model's
  unit of combinational depth.

Cost rules follow the standard Virtex-II mapping conventions:

* a 2:1 mux fits one LUT4 per bit; a 4:1 mux uses two LUT4 plus the free
  MUXF5, so an N:1 mux costs ``ceil(N/2)`` LUTs per bit and
  ``ceil(log2(N))`` levels (MUXF5/F6 levels are nearly free and folded in);
* an equality comparator reduces 2 bits per LUT4, then ANDs the partials
  in a tree;
* counters/adders use the carry chain: one LUT per bit, one level.

The absolute numbers are *model* numbers, not ISE P&R output; what must be
trusted is how costs scale with the generator parameters — exactly the
quantity the paper's Tables 1 and 2 report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def clog2(value: int) -> int:
    """Ceiling log2 with clog2(0) == clog2(1) == 1 (register a degenerate
    choice in 1 bit)."""
    if value <= 1:
        return 1
    return int(math.ceil(math.log2(value)))


@dataclass(frozen=True)
class MacroPrimitive:
    """Base class of all macro primitives."""

    def luts(self) -> int:
        return 0

    def ffs(self) -> int:
        return 0

    def brams(self) -> int:
        return 0

    def logic_levels(self) -> int:
        return 0

    def describe(self) -> str:
        params = ", ".join(
            f"{k}={v}" for k, v in sorted(vars(self).items())
        )
        return (
            f"{type(self).__name__}({params}) "
            f"LUT={self.luts()} FF={self.ffs()}"
        )


@dataclass(frozen=True)
class Register(MacroPrimitive):
    """A simple register bank: ``width`` flip-flops."""

    width: int
    with_enable: bool = False

    def ffs(self) -> int:
        return self.width

    def luts(self) -> int:
        # A clock-enable costs nothing (dedicated CE pin); a load mux would
        # be charged separately.
        return 0


@dataclass(frozen=True)
class Counter(MacroPrimitive):
    """An up/down counter with load: one LUT + one FF per bit (carry chain)."""

    width: int

    def ffs(self) -> int:
        return self.width

    def luts(self) -> int:
        return self.width

    def logic_levels(self) -> int:
        return 1


@dataclass(frozen=True)
class Adder(MacroPrimitive):
    """A ripple-carry adder on the dedicated carry chain."""

    width: int

    def luts(self) -> int:
        return self.width

    def logic_levels(self) -> int:
        return 1


@dataclass(frozen=True)
class Mux(MacroPrimitive):
    """An ``inputs``:1 multiplexer, ``width`` bits wide."""

    width: int
    inputs: int

    def luts(self) -> int:
        if self.inputs <= 1:
            return 0
        return self.width * int(math.ceil(self.inputs / 2))

    def logic_levels(self) -> int:
        if self.inputs <= 1:
            return 0
        return clog2(self.inputs)


@dataclass(frozen=True)
class Demux(MacroPrimitive):
    """A 1:``outputs`` demultiplexer / decoder-gated fanout."""

    width: int
    outputs: int

    def luts(self) -> int:
        if self.outputs <= 1:
            return 0
        # One AND gate per output bit, plus the select decoder.
        return self.width * self.outputs // 2 + self.outputs

    def logic_levels(self) -> int:
        if self.outputs <= 1:
            return 0
        return 1 + (1 if self.outputs > 4 else 0)


@dataclass(frozen=True)
class EqComparator(MacroPrimitive):
    """Equality comparator: 2 bits per LUT4, AND-reduced in a tree."""

    width: int

    def luts(self) -> int:
        partials = int(math.ceil(self.width / 2))
        # AND tree over partials, 4 inputs per LUT.
        tree = 0
        remaining = partials
        while remaining > 1:
            level = int(math.ceil(remaining / 4))
            tree += level
            remaining = level
        return partials + tree

    def logic_levels(self) -> int:
        partials = int(math.ceil(self.width / 2))
        levels = 1
        remaining = partials
        while remaining > 1:
            remaining = int(math.ceil(remaining / 4))
            levels += 1
        return levels


@dataclass(frozen=True)
class MagComparator(MacroPrimitive):
    """Magnitude comparator on the carry chain."""

    width: int

    def luts(self) -> int:
        return self.width

    def logic_levels(self) -> int:
        return 1


@dataclass(frozen=True)
class Decoder(MacroPrimitive):
    """Select decoder: ``outputs`` one-hot lines from a binary select."""

    outputs: int

    def luts(self) -> int:
        if self.outputs <= 1:
            return 0
        select_bits = clog2(self.outputs)
        per_output = 1 if select_bits <= 4 else 2
        return self.outputs * per_output

    def logic_levels(self) -> int:
        if self.outputs <= 1:
            return 0
        return 1 if clog2(self.outputs) <= 4 else 2


@dataclass(frozen=True)
class PriorityEncoder(MacroPrimitive):
    """Fixed-priority encoder over ``inputs`` request lines."""

    inputs: int

    def luts(self) -> int:
        if self.inputs <= 1:
            return 0
        return self.inputs + clog2(self.inputs)

    def logic_levels(self) -> int:
        if self.inputs <= 1:
            return 0
        return 1 + clog2(self.inputs) // 2


@dataclass(frozen=True)
class RoundRobinArbiterMacro(MacroPrimitive):
    """Round-robin arbiter: rotate pointer + masked priority encode."""

    clients: int

    def ffs(self) -> int:
        return clog2(self.clients)  # the grant pointer

    def luts(self) -> int:
        if self.clients <= 1:
            return 1
        # mask generation + two priority encoders (masked/unmasked) + select
        return 2 * self.clients + 2 * (self.clients + clog2(self.clients))

    def logic_levels(self) -> int:
        if self.clients <= 1:
            return 1
        return 2 + clog2(self.clients) // 2


@dataclass(frozen=True)
class CamRow(MacroPrimitive):
    """One dependency-list row: stored key + valid + parallel comparator."""

    key_bits: int

    def ffs(self) -> int:
        return self.key_bits + 1  # key + valid

    def luts(self) -> int:
        return EqComparator(self.key_bits).luts() + 1  # + valid gate

    def logic_levels(self) -> int:
        return EqComparator(self.key_bits).logic_levels() + 1


@dataclass(frozen=True)
class FsmLogic(MacroPrimitive):
    """State register plus next-state/output logic of a control FSM."""

    states: int
    transitions: int

    def ffs(self) -> int:
        return clog2(self.states)

    def luts(self) -> int:
        state_bits = clog2(self.states)
        # Each transition term decodes current state + a guard bit and
        # contributes to each next-state bit.
        return max(1, self.transitions) * 2 + state_bits * 2

    def logic_levels(self) -> int:
        return 2


@dataclass(frozen=True)
class BramMacro(MacroPrimitive):
    """One 18 Kb block RAM."""

    depth: int = 512
    width: int = 36

    def brams(self) -> int:
        return 1

    def logic_levels(self) -> int:
        return 0  # dedicated block; its access time is in the timing model


@dataclass(frozen=True)
class RandomLogic(MacroPrimitive):
    """Uncommitted control logic, charged directly in LUTs."""

    lut_count: int
    levels: int = 1

    def luts(self) -> int:
        return self.lut_count

    def logic_levels(self) -> int:
        return self.levels
