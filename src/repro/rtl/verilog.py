"""Verilog-2001 emission from the structural netlist.

The emitter prints a self-contained translation unit: behavioural
definitions for every macro primitive actually used, followed by the
module hierarchy bottom-up.  This is the reproduction of the paper's
"RTL HDL description is generated ... then fed into standard synthesis,
place, and route tools" step — the output is what would be handed to ISE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import primitives as prim
from .netlist import Instance, Module, PortDirection


def _bus(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


#: Behavioural Verilog for each macro primitive type.  Parameter names
#: match the dataclass fields so instance overrides line up.
_PRIMITIVE_DEFS: dict[type, str] = {
    prim.Register: """
module repro_register #(parameter WIDTH = 1) (
  input  wire clk,
  input  wire en,
  input  wire [WIDTH-1:0] d,
  output reg  [WIDTH-1:0] q
);
  always @(posedge clk) if (en) q <= d;
endmodule
""",
    prim.Counter: """
module repro_counter #(parameter WIDTH = 4) (
  input  wire clk,
  input  wire rst,
  input  wire load,
  input  wire down,
  input  wire [WIDTH-1:0] load_value,
  output reg  [WIDTH-1:0] count,
  output wire nonzero
);
  assign nonzero = |count;
  always @(posedge clk)
    if (rst) count <= {WIDTH{1'b0}};
    else if (load) count <= load_value;
    else if (down) count <= count - 1'b1;
endmodule
""",
    prim.Adder: """
module repro_adder #(parameter WIDTH = 32) (
  input  wire [WIDTH-1:0] a,
  input  wire [WIDTH-1:0] b,
  output wire [WIDTH-1:0] sum
);
  assign sum = a + b;
endmodule
""",
    prim.Mux: """
module repro_mux #(parameter WIDTH = 1, parameter INPUTS = 2) (
  input  wire [WIDTH*INPUTS-1:0] in_bus,
  input  wire [$clog2(INPUTS > 1 ? INPUTS : 2)-1:0] sel,
  output wire [WIDTH-1:0] out
);
  assign out = in_bus[sel*WIDTH +: WIDTH];
endmodule
""",
    prim.Demux: """
module repro_demux #(parameter WIDTH = 1, parameter OUTPUTS = 2) (
  input  wire [WIDTH-1:0] in,
  input  wire [$clog2(OUTPUTS > 1 ? OUTPUTS : 2)-1:0] sel,
  output wire [WIDTH*OUTPUTS-1:0] out_bus
);
  genvar i;
  generate
    for (i = 0; i < OUTPUTS; i = i + 1) begin : g
      assign out_bus[i*WIDTH +: WIDTH] = (sel == i) ? in : {WIDTH{1'b0}};
    end
  endgenerate
endmodule
""",
    prim.EqComparator: """
module repro_eq_comparator #(parameter WIDTH = 9) (
  input  wire [WIDTH-1:0] a,
  input  wire [WIDTH-1:0] b,
  output wire eq
);
  assign eq = (a == b);
endmodule
""",
    prim.MagComparator: """
module repro_mag_comparator #(parameter WIDTH = 32) (
  input  wire [WIDTH-1:0] a,
  input  wire [WIDTH-1:0] b,
  output wire lt,
  output wire eq
);
  assign lt = (a < b);
  assign eq = (a == b);
endmodule
""",
    prim.Decoder: """
module repro_decoder #(parameter OUTPUTS = 4) (
  input  wire [$clog2(OUTPUTS > 1 ? OUTPUTS : 2)-1:0] sel,
  input  wire en,
  output wire [OUTPUTS-1:0] onehot
);
  assign onehot = en ? ({{OUTPUTS-1{1'b0}}, 1'b1} << sel) : {OUTPUTS{1'b0}};
endmodule
""",
    prim.PriorityEncoder: """
module repro_priority_encoder #(parameter INPUTS = 3) (
  input  wire [INPUTS-1:0] req,
  output reg  [$clog2(INPUTS > 1 ? INPUTS : 2)-1:0] sel,
  output wire any
);
  integer i;
  assign any = |req;
  always @* begin
    sel = {$clog2(INPUTS > 1 ? INPUTS : 2){1'b0}};
    for (i = INPUTS - 1; i >= 0; i = i - 1)
      if (req[i]) sel = i[$clog2(INPUTS > 1 ? INPUTS : 2)-1:0];
  end
endmodule
""",
    prim.RoundRobinArbiterMacro: """
module repro_rr_arbiter #(parameter CLIENTS = 8) (
  input  wire clk,
  input  wire rst,
  input  wire [CLIENTS-1:0] req,
  output reg  [CLIENTS-1:0] grant
);
  // Rotate-pointer round-robin: mask requests above the pointer, fall back
  // to the unmasked set when the masked set is empty.
  reg [$clog2(CLIENTS > 1 ? CLIENTS : 2)-1:0] pointer;
  reg [CLIENTS-1:0] masked;
  integer i;
  always @* begin
    masked = {CLIENTS{1'b0}};
    for (i = 0; i < CLIENTS; i = i + 1)
      if (i >= pointer) masked[i] = req[i];
    grant = {CLIENTS{1'b0}};
    if (|masked) begin
      for (i = CLIENTS - 1; i >= 0; i = i - 1)
        if (masked[i]) grant = ({{CLIENTS-1{1'b0}}, 1'b1} << i);
    end else if (|req) begin
      for (i = CLIENTS - 1; i >= 0; i = i - 1)
        if (req[i]) grant = ({{CLIENTS-1{1'b0}}, 1'b1} << i);
    end
  end
  always @(posedge clk)
    if (rst) pointer <= {$clog2(CLIENTS > 1 ? CLIENTS : 2){1'b0}};
    else begin
      for (i = 0; i < CLIENTS; i = i + 1)
        if (grant[i]) pointer <= (i + 1) % CLIENTS;
    end
endmodule
""",
    prim.CamRow: """
module repro_cam_row #(parameter KEY_BITS = 9) (
  input  wire clk,
  input  wire write,
  input  wire [KEY_BITS-1:0] write_key,
  input  wire [KEY_BITS-1:0] search_key,
  output wire match
);
  reg [KEY_BITS-1:0] key;
  reg valid;
  assign match = valid && (key == search_key);
  always @(posedge clk)
    if (write) begin
      key <= write_key;
      valid <= 1'b1;
    end
endmodule
""",
    prim.FsmLogic: """
module repro_fsm #(parameter STATES = 4, parameter TRANSITIONS = 6) (
  input  wire clk,
  input  wire rst,
  input  wire [TRANSITIONS-1:0] guards,
  output reg  [$clog2(STATES > 1 ? STATES : 2)-1:0] state
);
  // Next-state logic is design-specific; the generated table is attached
  // by the per-design emitter below.
  always @(posedge clk)
    if (rst) state <= {$clog2(STATES > 1 ? STATES : 2){1'b0}};
endmodule
""",
    prim.BramMacro: """
module repro_bram18k #(parameter DEPTH = 512, parameter WIDTH = 36) (
  input  wire clk,
  input  wire [$clog2(DEPTH)-1:0] addr_a,
  input  wire [WIDTH-1:0] din_a,
  input  wire we_a,
  output reg  [WIDTH-1:0] dout_a,
  input  wire [$clog2(DEPTH)-1:0] addr_b,
  input  wire [WIDTH-1:0] din_b,
  input  wire we_b,
  output reg  [WIDTH-1:0] dout_b
);
  reg [WIDTH-1:0] mem [0:DEPTH-1];
  always @(posedge clk) begin
    if (we_a) mem[addr_a] <= din_a;
    dout_a <= mem[addr_a];
  end
  always @(posedge clk) begin
    if (we_b) mem[addr_b] <= din_b;
    dout_b <= mem[addr_b];
  end
endmodule
""",
    prim.RandomLogic: """
module repro_random_logic #(parameter LUT_COUNT = 1) (
  input  wire [LUT_COUNT-1:0] in,
  output wire out
);
  // Placeholder for uncommitted control logic of the given LUT budget.
  assign out = ^in;
endmodule
""",
}

#: Verilog module name for each primitive type.
_PRIMITIVE_NAMES: dict[type, str] = {
    prim.Register: "repro_register",
    prim.Counter: "repro_counter",
    prim.Adder: "repro_adder",
    prim.Mux: "repro_mux",
    prim.Demux: "repro_demux",
    prim.EqComparator: "repro_eq_comparator",
    prim.MagComparator: "repro_mag_comparator",
    prim.Decoder: "repro_decoder",
    prim.PriorityEncoder: "repro_priority_encoder",
    prim.RoundRobinArbiterMacro: "repro_rr_arbiter",
    prim.CamRow: "repro_cam_row",
    prim.FsmLogic: "repro_fsm",
    prim.BramMacro: "repro_bram18k",
    prim.RandomLogic: "repro_random_logic",
}

#: Dataclass field -> Verilog parameter name.
_PARAM_NAMES: dict[str, str] = {
    "width": "WIDTH",
    "inputs": "INPUTS",
    "outputs": "OUTPUTS",
    "clients": "CLIENTS",
    "key_bits": "KEY_BITS",
    "states": "STATES",
    "transitions": "TRANSITIONS",
    "depth": "DEPTH",
    "lut_count": "LUT_COUNT",
}


@dataclass
class VerilogEmitter:
    """Emits a module hierarchy as one Verilog translation unit."""

    top: Module
    _emitted_primitives: set[type] = field(default_factory=set)
    _emitted_modules: set[str] = field(default_factory=set)
    _chunks: list[str] = field(default_factory=list)

    def emit(self) -> str:
        self._chunks = [
            "// Generated by repro.rtl.verilog — reproduction of",
            "// 'Memory centric thread synchronization on platform FPGAs'",
            "// (Kulkarni & Brebner, DATE 2006).",
            "`timescale 1ns / 1ps",
            "",
        ]
        self._collect_primitives(self.top)
        for ptype in sorted(self._emitted_primitives, key=lambda t: t.__name__):
            self._chunks.append(_PRIMITIVE_DEFS[ptype].strip())
            self._chunks.append("")
        self._emit_module_tree(self.top)
        return "\n".join(self._chunks) + "\n"

    # -- helpers --------------------------------------------------------------------

    def _collect_primitives(self, module: Module) -> None:
        for instance in module.instances:
            if instance.is_primitive:
                self._emitted_primitives.add(type(instance.component))
            else:
                self._collect_primitives(instance.component)  # type: ignore[arg-type]

    def _emit_module_tree(self, module: Module) -> None:
        for instance in module.instances:
            if not instance.is_primitive:
                child = instance.component
                assert isinstance(child, Module)
                if child.name not in self._emitted_modules:
                    self._emit_module_tree(child)
        if module.name not in self._emitted_modules:
            self._emitted_modules.add(module.name)
            self._chunks.append(self._render_module(module))
            self._chunks.append("")

    def _render_module(self, module: Module) -> str:
        lines = [f"module {module.name} ("]
        port_lines = []
        for port in module.ports:
            direction = {
                PortDirection.INPUT: "input  wire",
                PortDirection.OUTPUT: "output wire",
                PortDirection.INOUT: "inout  wire",
            }[port.direction]
            port_lines.append(f"  {direction} {_bus(port.width)}{port.name}")
        lines.append(",\n".join(port_lines))
        lines.append(");")

        port_names = {p.name for p in module.ports}
        for net in sorted(module.nets.values(), key=lambda n: n.name):
            if net.name not in port_names:
                lines.append(f"  wire {_bus(net.width)}{net.name};")

        for path_name, levels in sorted(module.critical_paths.items()):
            lines.append(
                f"  // timing: path '{path_name}' = {levels} LUT levels"
            )

        for instance in module.instances:
            lines.append(self._render_instance(instance))

        lines.append("endmodule")
        return "\n".join(lines)

    def _render_instance(self, instance: Instance) -> str:
        if instance.is_primitive:
            component = instance.component
            vname = _PRIMITIVE_NAMES[type(component)]
            params = []
            for fname, pname in _PARAM_NAMES.items():
                if hasattr(component, fname):
                    params.append(f".{pname}({getattr(component, fname)})")
            param_str = f" #({', '.join(params)})" if params else ""
        else:
            vname = instance.component.name
            param_str = ""
        conns = ", ".join(
            f".{port}({net})" for port, net in sorted(instance.connections.items())
        )
        return f"  {vname}{param_str} {instance.name} ({conns});"


def emit_verilog(top: Module) -> str:
    """Emit ``top`` (with its primitive library and children) as Verilog."""
    return VerilogEmitter(top).emit()
