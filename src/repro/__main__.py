"""Command-line driver: ``python -m repro <design.hic> [options]``.

Runs the full flow over a hic source file and prints the reports; a small
stand-in for the front-end tool the paper describes.

Examples::

    python -m repro design.hic
    python -m repro design.hic --organization event_driven --verilog out.v
    python -m repro design.hic --simulate 1000 --vcd trace.vcd
    python -m repro faults --seed 7 --runs 8        # chaos campaign
    python -m repro profile design.hic --flame f.svg  # cycle attribution
    python -m repro predict design.hic --rate 0.9   # analytical model
    python -m repro predict --validate              # model vs simulator
    python -m repro run --scenario pipeline         # streaming scenario
    python -m repro scenarios --json report.json    # channel-class report
"""

from __future__ import annotations

import argparse
import sys

from .core.advisor import Organization
from .core.errors import SimulationTimeout
from .flow import (
    DEFAULT_KERNEL,
    SIMULATION_KERNELS,
    build_simulation,
    compile_design,
)
from .hic.errors import HicError
from .obs.tracer import TRACE_LEVELS
from .sim import ConsumerLatencyProbe, VcdWriter, determinism_report


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Compile a hic design to synchronized FPGA implementation "
            "estimates (reproduction of Kulkarni & Brebner, DATE 2006)."
        ),
    )
    parser.add_argument("source", help="hic source file")
    parser.add_argument(
        "--organization",
        choices=[org.value for org in Organization],
        default=Organization.ARBITRATED.value,
        help="memory organization to generate (default: arbitrated)",
    )
    parser.add_argument(
        "--deplist-entries",
        type=int,
        default=4,
        help="dependency-list capacity of the arbitrated wrapper",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        metavar="CYCLES",
        default=0,
        help="run the cycle-accurate simulator for CYCLES cycles",
    )
    parser.add_argument(
        "--verilog",
        metavar="FILE",
        help="write the generated structural Verilog to FILE",
    )
    parser.add_argument(
        "--thread-verilog",
        metavar="DIR",
        help="write behavioral Verilog for each thread FSM into DIR",
    )
    parser.add_argument(
        "--vcd",
        metavar="FILE",
        help="write a VCD trace of the simulation to FILE",
    )
    parser.add_argument(
        "--trace-json",
        metavar="FILE",
        help=(
            "write a Chrome trace-event JSON (Perfetto-loadable) of the "
            "simulation to FILE (implies --simulate 1000 if not given)"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write Prometheus text-format metrics of the simulation to FILE",
    )
    parser.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write a JSON telemetry summary of the simulation to FILE",
    )
    parser.add_argument(
        "--summary-csv",
        metavar="FILE",
        help="write a CSV metrics dump of the simulation to FILE",
    )
    parser.add_argument(
        "--kernel",
        # Derived from the flow's registry so argparse fails fast with
        # the real list if a backend is ever added or renamed.
        choices=list(SIMULATION_KERNELS),
        default=DEFAULT_KERNEL,
        help=(
            f"simulation backend (default: {DEFAULT_KERNEL}): 'wheel' "
            "skips provably idle cycles, 'compiled' runs a generated "
            "per-design tick function; both are cycle-equivalent to "
            "'reference', which ticks every component every cycle "
            "(see docs/simulation_kernels.md)"
        ),
    )
    parser.add_argument(
        "--trace-level",
        # The tracer's TRACE_LEVELS is the single source of truth: an
        # unknown level dies in argparse with the valid choices listed,
        # not deep in run setup.
        choices=list(TRACE_LEVELS),
        default="deps",
        help=(
            "event granularity: 'deps' records dependency-lifecycle events "
            "only; 'full' also records every submit/grant (default: deps)"
        ),
    )
    parser.add_argument(
        "--traffic-rate",
        type=float,
        default=0.0,
        metavar="P",
        help=(
            "drive each ingress interface with seeded Bernoulli traffic "
            "(probability P of a new message per cycle) during --simulate"
        ),
    )
    parser.add_argument(
        "--traffic-seed",
        type=int,
        default=1,
        help="seed for --traffic-rate generators (default: 1)",
    )
    parser.add_argument(
        "--banks",
        type=int,
        default=0,
        metavar="N",
        help=(
            "compile for a sharded N-bank memory fabric (0 = the paper's "
            "single-address-space flow)"
        ),
    )
    parser.add_argument(
        "--shard-policy",
        choices=["interleaved", "range"],
        default="interleaved",
        help="fabric address sharding policy (default: interleaved)",
    )
    parser.add_argument(
        "--link-latency",
        type=int,
        default=1,
        metavar="CYCLES",
        help="crossbar link latency between ingress and a bank (default: 1)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="N",
        help="requests a bank accepts from the crossbar per cycle (default: 1)",
    )
    parser.add_argument(
        "--dep-home",
        choices=["address", "spread"],
        default="address",
        help=(
            "fabric dependency-entry homing: 'address' co-locates guards "
            "with their data; 'spread' distributes them across banks "
            "(exercising the cross-bank router)"
        ),
    )
    parser.add_argument(
        "--max-wall-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget for --simulate: a livelocked run raises a "
            "structured simulation-timeout error instead of hanging"
        ),
    )
    parser.add_argument(
        "--no-deadlock-check",
        action="store_true",
        help="skip the static deadlock check",
    )
    parser.add_argument(
        "--infer-pragmas",
        action="store_true",
        help=(
            "derive producer/consumer dependencies from use-def analysis "
            "instead of requiring explicit pragmas"
        ),
    )
    parser.add_argument(
        "--allow-offchip",
        action="store_true",
        help="spill private data too large for one BRAM to external SRAM",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="run the FSM optimization passes before binding",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "faults":
        # Sub-tool: fault-injection campaigns against the controllers.
        from .faults.campaign import faults_main

        return faults_main(argv[1:])
    if argv and argv[0] == "profile":
        # Sub-tool: cycle-attribution profiler (see docs/profiling.md).
        from .obs.profile_cli import profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "predict":
        # Sub-tool: analytical performance model and model-pruned DSE
        # (see docs/performance_model.md).
        from .model.cli import predict_main

        return predict_main(argv[1:])
    if argv and argv[0] == "run":
        # Sub-tool: run a catalogued streaming scenario
        # (see docs/scenarios.md).
        from .scenarios.cli import run_main

        return run_main(argv[1:])
    if argv and argv[0] == "scenarios":
        # Sub-tool: per-channel classification + area/progress report.
        from .scenarios.cli import scenarios_main

        return scenarios_main(argv[1:])
    args = _parser().parse_args(argv)
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: cannot read {args.source}: {error}", file=sys.stderr)
        return 2

    try:
        design = compile_design(
            source,
            name=args.source.rsplit("/", 1)[-1].split(".")[0],
            organization=Organization(args.organization),
            deplist_entries=args.deplist_entries,
            check_deadlock=not args.no_deadlock_check,
            infer_pragmas=args.infer_pragmas,
            allow_offchip=args.allow_offchip,
            optimize=args.optimize,
            num_banks=args.banks,
            shard_policy=args.shard_policy,
            link_latency=args.link_latency,
            batch_size=args.batch_size,
            dep_home=args.dep_home,
        )
    except (HicError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    print(f"design {design.name!r}: {len(design.fsms)} threads, "
          f"{design.memory_map.bram_count()} BRAM(s), "
          f"{len(design.checked.dependencies)} dependencies")
    if design.fabric is not None:
        plan = design.fabric
        print(
            f"fabric: {plan.config.num_banks} banks "
            f"({plan.policy.describe()}), link latency "
            f"{plan.config.link_latency}, batch {plan.config.batch_size}, "
            f"{plan.cross_bank_count} cross-bank dependencies"
        )
        print(design.fabric_area_report().render())
        print(design.fabric_timing_report().render())
    else:
        for bram in design.memory_map.bram_names:
            area = design.area_report(bram)
            print(
                f"  {bram}: LUT={area.luts} FF={area.ffs} slices={area.slices}"
            )
            print(f"  {design.timing_report(bram).render()}")
    utilization = design.utilization()
    print(utilization.render())

    if args.verilog:
        with open(args.verilog, "w") as handle:
            handle.write(design.verilog())
        print(f"wrote Verilog to {args.verilog}")

    if args.thread_verilog:
        import os

        os.makedirs(args.thread_verilog, exist_ok=True)
        for thread_name in design.fsms:
            path = os.path.join(
                args.thread_verilog, f"thread_{thread_name}_fsm.v"
            )
            with open(path, "w") as handle:
                handle.write(design.thread_verilog(thread_name))
        print(
            f"wrote {len(design.fsms)} thread FSMs to {args.thread_verilog}/"
        )

    telemetry_outputs = [
        args.trace_json, args.metrics, args.summary_json, args.summary_csv
    ]
    if any(telemetry_outputs) and args.simulate <= 0:
        # Telemetry without an explicit horizon: run a default 1000 cycles.
        args.simulate = 1000

    if args.simulate > 0:
        sim = build_simulation(design, kernel=args.kernel)
        telemetry = None
        if any(telemetry_outputs):
            telemetry = sim.attach_telemetry(trace_level=args.trace_level)
        if args.traffic_rate > 0:
            from .net import BernoulliTraffic

            for index, rx in enumerate(sim.rx.values()):
                generator = BernoulliTraffic(
                    rate=args.traffic_rate, seed=args.traffic_seed + index
                )
                sim.kernel.add_pre_cycle_hook(generator.attach(rx))
        vcd = None
        if args.vcd:
            vcd = VcdWriter(timescale="8 ns")
            for name, executor in sim.executors.items():
                states = sorted(executor.fsm.states)
                vcd.add_signal(
                    f"{name}.state",
                    max(1, (len(states) - 1).bit_length()),
                    lambda ex=executor, st=states: st.index(ex.state_name),
                )
            sim.kernel.add_post_cycle_hook(vcd.hook)
        try:
            result = sim.run(
                args.simulate, max_wall_seconds=args.max_wall_seconds
            )
        except SimulationTimeout as error:
            print(f"error: {error.describe()}", file=sys.stderr)
            return 1
        print(result.describe())
        if hasattr(sim.kernel, "cycles_compiled"):
            print(
                f"kernel: compiled, {sim.kernel.cycles_compiled} cycles "
                f"compiled, {sim.kernel.cycles_interpreted} interpreted"
            )
        elif hasattr(sim.kernel, "cycles_skipped"):
            print(
                f"kernel: wheel, {sim.kernel.cycles_executed} cycles "
                f"executed, {sim.kernel.cycles_skipped} skipped"
            )
        for name, controller in sim.controllers.items():
            if hasattr(controller, "fabric_stats"):
                stats = controller.fabric_stats()
                print(
                    f"{name}: crossbar forwarded="
                    f"{stats['crossbar']['forwarded']} "
                    f"delivered={stats['crossbar']['delivered']} "
                    f"router gated={stats['router']['gated_cycles']}"
                )
                for bank, per_bank in sorted(stats["banks"].items()):
                    print(
                        f"  {bank}: routed={per_bank['routed']} "
                        f"granted={per_bank['granted']}"
                    )
        for bram, controller in sim.controllers.items():
            probe = ConsumerLatencyProbe(
                controller, guarded_ports=("C", "B", "G")
            )
            report = determinism_report(probe)
            if report != "no guarded accesses observed":
                print(f"{bram} guarded-access latency:")
                print(report)
        if vcd is not None and args.vcd:
            vcd.write(args.vcd)
            print(f"wrote VCD trace to {args.vcd}")
        if telemetry is not None:
            from .obs.exporters import (
                write_chrome_trace,
                write_prometheus,
                write_summary_csv,
                write_summary_json,
            )

            if args.trace_json:
                write_chrome_trace(telemetry, args.trace_json)
                print(f"wrote Chrome trace to {args.trace_json}")
            if args.metrics:
                write_prometheus(telemetry, args.metrics)
                print(f"wrote Prometheus metrics to {args.metrics}")
            if args.summary_json:
                write_summary_json(telemetry, args.summary_json)
                print(f"wrote telemetry summary to {args.summary_json}")
            if args.summary_csv:
                write_summary_csv(telemetry, args.summary_csv)
                print(f"wrote metrics CSV to {args.summary_csv}")

    return 0


if __name__ == "__main__":
    sys.exit(main())
