"""Paper-style result tables.

Renders the reproduction's measurements in the layout of the paper's
Tables 1 and 2 (P/C | LUT | FF | Slices) plus the in-text frequency series,
and records paper-vs-measured comparisons for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class Table:
    """A simple monospace table."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, rule, fmt(self.headers), rule]
        lines.extend(fmt(row) for row in self.rows)
        lines.append(rule)
        return "\n".join(lines)


def area_table(
    title: str, rows: list[tuple[str, int, int, int]]
) -> Table:
    """The paper's Table 1/2 layout: P/C, LUT, FF, Slices."""
    table = Table(title=title, headers=["P/C", "LUT", "FF", "Slices"])
    for scenario, luts, ffs, slices in rows:
        table.add_row(scenario, luts, ffs, slices)
    return table


def frequency_table(
    title: str, rows: list[tuple[str, float, float, Optional[float]]]
) -> Table:
    """The §4 frequency series: scenario, measured fmax, target, paper."""
    table = Table(
        title=title,
        headers=["P/C", "fmax (MHz)", "target (MHz)", "paper (MHz)"],
    )
    for scenario, fmax, target, paper in rows:
        table.add_row(
            scenario,
            f"{fmax:.0f}",
            f"{target:.0f}",
            "n/a" if paper is None else f"{paper:.0f}",
        )
    return table


@dataclass
class Comparison:
    """One paper-vs-measured record for EXPERIMENTS.md."""

    experiment: str
    quantity: str
    paper_value: str
    measured_value: str
    verdict: str

    def render(self) -> str:
        return (
            f"{self.experiment}: {self.quantity} — paper {self.paper_value}, "
            f"measured {self.measured_value} [{self.verdict}]"
        )


def shape_verdict(
    paper: Sequence[float], measured: Sequence[float], tolerance: float = 0.5
) -> str:
    """Judge whether a measured series reproduces a paper series' shape.

    Checks monotonicity agreement and per-point relative deviation within
    ``tolerance``.  Returns one of ``"match"``, ``"shape-match"``,
    ``"mismatch"``.
    """
    if len(paper) != len(measured) or not paper:
        raise ValueError("series must be equal-length and non-empty")

    def direction(series: Sequence[float]) -> list[int]:
        return [
            (0 if b == a else (1 if b > a else -1))
            for a, b in zip(series, series[1:])
        ]

    same_shape = direction(paper) == direction(measured)
    within = all(
        abs(m - p) / p <= tolerance for p, m in zip(paper, measured) if p != 0
    )
    if same_shape and within:
        close = all(
            abs(m - p) / p <= 0.10 for p, m in zip(paper, measured) if p != 0
        )
        return "match" if close else "shape-match"
    if same_shape:
        return "shape-match"
    return "mismatch"
