"""Behavioral synthesis: hic threads to cycle-accurate FSMs.

* :mod:`~repro.synth.schedule` — dataflow graphs with ASAP/ALAP/list
  scheduling (the classic behavioral-synthesis steps the paper cites);
* :mod:`~repro.synth.fsm` — FSMD construction with per-state memory-access
  micro-ops, the synchronization points the memory controllers guard;
* :mod:`~repro.synth.binding` — datapath resource binding, feeding the
  FPGA area model.
"""

from .binding import (
    DatapathSummary,
    FunctionalUnit,
    RegisterBinding,
    bind_program,
    bind_thread,
)
from .fsm import (
    ComputeOp,
    FsmBuilder,
    MemReadOp,
    MemWriteOp,
    MicroOp,
    ReceiveOp,
    State,
    ThreadFsm,
    Transition,
    TransmitOp,
    message_words,
    synthesize_program,
    synthesize_thread,
)
from .optimize import (
    collapse_passthrough_states,
    eliminate_dead_states,
    optimize_fsm,
    pack_compute_states,
)
from .schedule import (
    DEFAULT_RESOURCES,
    DataflowGraph,
    DfgNode,
    build_expr_dfg,
    build_statement_dfg,
    expression_depth,
    op_class,
)

__all__ = [
    "collapse_passthrough_states",
    "eliminate_dead_states",
    "optimize_fsm",
    "pack_compute_states",
    "DatapathSummary",
    "FunctionalUnit",
    "RegisterBinding",
    "bind_program",
    "bind_thread",
    "ComputeOp",
    "FsmBuilder",
    "MemReadOp",
    "MemWriteOp",
    "MicroOp",
    "ReceiveOp",
    "State",
    "ThreadFsm",
    "Transition",
    "TransmitOp",
    "message_words",
    "synthesize_program",
    "synthesize_thread",
    "DEFAULT_RESOURCES",
    "DataflowGraph",
    "DfgNode",
    "build_expr_dfg",
    "build_statement_dfg",
    "expression_depth",
    "op_class",
]
