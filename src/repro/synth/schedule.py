"""Operation scheduling for behavioral synthesis.

The paper (section 3) applies "a series of synthesis steps ... well
researched in the behavioral synthesis community [6]" to turn hic threads
into cycle-accurate state machines.  This module provides the scheduling
half of that: a dataflow graph over the primitive operations of a
straight-line statement sequence, with ASAP, ALAP, and resource-constrained
list scheduling.

The FSM builder uses list scheduling to pack independent register-to-
register computations into shared states; the timing model uses ASAP levels
as the combinational depth of each state's datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hic import ast

#: Default resource constraints: how many operations of each class may be
#: scheduled in one cycle.  Memory ports are the scarce resource the paper
#: cares about; ALU-class limits model a modest datapath.
DEFAULT_RESOURCES: dict[str, int] = {
    "alu": 2,       # add/sub/logic
    "mul": 1,       # multiply/divide/modulo
    "cmp": 2,       # comparisons
    "mem": 1,       # memory accesses per port per cycle
    "call": 1,      # combinational function blocks
}


def op_class(op: str) -> str:
    """Resource class of an expression operator."""
    if op in ("*", "/", "%"):
        return "mul"
    if op in ("==", "!=", "<", "<=", ">", ">=") or op in ("&&", "||", "!"):
        return "cmp"
    return "alu"


@dataclass
class DfgNode:
    """One primitive operation in the dataflow graph."""

    index: int
    kind: str            # resource class: alu/mul/cmp/mem/call/const/var
    label: str           # operator symbol or name, for reports
    preds: list[int] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.preds


@dataclass
class DataflowGraph:
    """Dataflow DAG over the operations of a statement sequence."""

    nodes: list[DfgNode] = field(default_factory=list)
    #: nodes that define each variable last (for chaining across statements)
    last_def: dict[str, int] = field(default_factory=dict)

    def add_node(self, kind: str, label: str, preds: list[int]) -> int:
        index = len(self.nodes)
        node = DfgNode(index=index, kind=kind, label=label, preds=list(preds))
        self.nodes.append(node)
        for pred in preds:
            self.nodes[pred].succs.append(index)
        return index

    def op_nodes(self) -> list[DfgNode]:
        """Nodes that consume a resource (excludes constants/variable reads)."""
        return [n for n in self.nodes if n.kind in DEFAULT_RESOURCES]

    def depth(self) -> int:
        """Longest operation chain (critical path in operations)."""
        levels = self.asap()
        if not levels:
            return 0
        return max(levels.values()) + 1

    # -- schedules -----------------------------------------------------------------

    def asap(self) -> dict[int, int]:
        """As-soon-as-possible levels for resource-consuming nodes.

        Leaf/variable/constant nodes sit at level -1 conceptually; the first
        operation level is 0.
        """
        level: dict[int, int] = {}
        for node in self.nodes:  # nodes are in topological order by build
            pred_levels = [
                level.get(p, -1) for p in node.preds
            ]
            base = max(pred_levels, default=-1)
            if node.kind in DEFAULT_RESOURCES:
                level[node.index] = base + 1
            else:
                level[node.index] = base
        return {n.index: level[n.index] for n in self.op_nodes()}

    def alap(self, length: int | None = None) -> dict[int, int]:
        """As-late-as-possible levels against a schedule of ``length`` steps
        (defaults to the ASAP length)."""
        asap_levels = self.asap()
        if not asap_levels:
            return {}
        if length is None:
            length = max(asap_levels.values()) + 1
        level: dict[int, int] = {}
        for node in reversed(self.nodes):
            succ_levels = [level.get(s, length) for s in node.succs]
            ceiling = min(succ_levels, default=length)
            if node.kind in DEFAULT_RESOURCES:
                level[node.index] = ceiling - 1
            else:
                level[node.index] = ceiling
        return {n.index: level[n.index] for n in self.op_nodes()}

    def list_schedule(
        self, resources: dict[str, int] | None = None
    ) -> dict[int, int]:
        """Resource-constrained list scheduling.

        Priority is ALAP level (operations with less slack go first).
        Returns operation node index -> cycle.
        """
        if resources is None:
            resources = dict(DEFAULT_RESOURCES)
        asap_levels = self.asap()
        if not asap_levels:
            return {}
        alap_levels = self.alap(length=len(asap_levels) + self.depth())
        schedule: dict[int, int] = {}
        unscheduled = set(asap_levels)
        cycle = 0
        while unscheduled:
            used: dict[str, int] = {k: 0 for k in resources}
            ready = sorted(
                (
                    idx
                    for idx in unscheduled
                    if all(
                        (p not in asap_levels) or (p in schedule and schedule[p] < cycle)
                        for p in self._op_preds(idx)
                    )
                ),
                key=lambda idx: (alap_levels.get(idx, 0), idx),
            )
            for idx in ready:
                kind = self.nodes[idx].kind
                limit = resources.get(kind, 1)
                if used[kind] < limit:
                    schedule[idx] = cycle
                    used[kind] += 1
                    unscheduled.discard(idx)
            cycle += 1
            if cycle > 4 * (len(self.nodes) + 1):  # pragma: no cover
                raise RuntimeError("list scheduling failed to converge")
        return schedule

    def _op_preds(self, index: int) -> set[int]:
        """Transitive predecessors that are resource-consuming operations."""
        result: set[int] = set()
        stack = list(self.nodes[index].preds)
        while stack:
            p = stack.pop()
            node = self.nodes[p]
            if node.kind in DEFAULT_RESOURCES:
                result.add(p)
            else:
                stack.extend(node.preds)
        return result

    def schedule_length(self, resources: dict[str, int] | None = None) -> int:
        schedule = self.list_schedule(resources)
        if not schedule:
            return 0
        return max(schedule.values()) + 1


def build_expr_dfg(
    graph: DataflowGraph, expr: ast.Expr
) -> int:
    """Add an expression's operations to the graph, returning its root node."""
    if isinstance(expr, (ast.IntLiteral, ast.CharLiteral, ast.BoolLiteral)):
        return graph.add_node("const", str(getattr(expr, "value", "")), [])
    if isinstance(expr, ast.Name):
        if expr.ident in graph.last_def:
            return graph.last_def[expr.ident]
        return graph.add_node("var", expr.ident, [])
    if isinstance(expr, ast.FieldAccess):
        base = build_expr_dfg(graph, expr.base)
        return graph.add_node("mem", f".{expr.field_name}", [base])
    if isinstance(expr, ast.Index):
        base = build_expr_dfg(graph, expr.base)
        index = build_expr_dfg(graph, expr.index)
        return graph.add_node("mem", "[]", [base, index])
    if isinstance(expr, ast.Unary):
        operand = build_expr_dfg(graph, expr.operand)
        return graph.add_node(op_class(expr.op), expr.op, [operand])
    if isinstance(expr, ast.Binary):
        left = build_expr_dfg(graph, expr.left)
        right = build_expr_dfg(graph, expr.right)
        return graph.add_node(op_class(expr.op), expr.op, [left, right])
    if isinstance(expr, ast.Conditional):
        cond = build_expr_dfg(graph, expr.cond)
        then_v = build_expr_dfg(graph, expr.then_value)
        else_v = build_expr_dfg(graph, expr.else_value)
        return graph.add_node("alu", "?:", [cond, then_v, else_v])
    if isinstance(expr, ast.Call):
        args = [build_expr_dfg(graph, a) for a in expr.args]
        return graph.add_node("call", expr.callee, args)
    raise TypeError(f"unsupported expression {type(expr).__name__}")


def build_statement_dfg(statements: list[ast.Assign]) -> DataflowGraph:
    """Build a dataflow graph over a straight-line assignment sequence.

    Def-use chaining between statements is honoured via ``last_def``; this
    is what exposes inter-statement parallelism to the list scheduler.
    """
    graph = DataflowGraph()
    for stmt in statements:
        root = build_expr_dfg(graph, stmt.value)
        if stmt.op != "=":
            target_read = graph.last_def.get(
                _root_name(stmt.target),
                graph.add_node("var", _root_name(stmt.target), []),
            )
            root = graph.add_node(
                op_class(stmt.op[:-1]), stmt.op[:-1], [target_read, root]
            )
        graph.last_def[_root_name(stmt.target)] = root
    return graph


def _root_name(target: ast.LValue) -> str:
    node: ast.Expr = target
    while isinstance(node, (ast.FieldAccess, ast.Index)):
        node = node.base
    assert isinstance(node, ast.Name)
    return node.ident


def expression_depth(expr: ast.Expr) -> int:
    """Operation depth of a single expression (for timing estimation)."""
    graph = DataflowGraph()
    build_expr_dfg(graph, expr)
    return graph.depth()
