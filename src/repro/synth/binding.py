"""Datapath resource binding.

After scheduling, behavioral synthesis binds operations to functional units
and variables to registers.  The binding summary produced here is what the
FPGA area model charges for each thread's datapath: functional units, the
register file, and the multiplexing needed to steer operands into shared
units.

Register sharing: variables whose live ranges never overlap (per
:mod:`repro.analysis.lifetime`) can share one physical register, the
classic left-edge allocation.  ``bind_thread(..., share_registers=True)``
applies it; the default keeps one register per variable (simpler RTL, the
generator's baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..analysis.lifetime import thread_lifetimes
from ..hic import ast
from ..hic.semantic import CheckedProgram, SymbolKind
from ..memory.allocation import MemoryMap, Residency
from .fsm import ComputeOp, MemReadOp, MemWriteOp, ThreadFsm
from .schedule import op_class


@dataclass
class FunctionalUnit:
    """One bound functional unit and the operations sharing it."""

    kind: str            # alu / mul / cmp / call
    width: int
    operations: list[str] = field(default_factory=list)

    @property
    def mux_inputs(self) -> int:
        """Operand sources multiplexed into this unit (2 per operation)."""
        return max(2, 2 * len(self.operations))


@dataclass
class RegisterBinding:
    """One datapath register; ``occupants`` lists the variables sharing it
    (singleton unless register sharing merged disjoint live ranges)."""

    name: str
    width: int
    occupants: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.occupants:
            self.occupants = (self.name,)


@dataclass
class DatapathSummary:
    """The bound datapath of one thread, consumed by the area model."""

    thread: str
    units: list[FunctionalUnit] = field(default_factory=list)
    registers: list[RegisterBinding] = field(default_factory=list)
    state_bits: int = 1
    memory_ports_used: set[str] = field(default_factory=set)
    #: fabric banks this thread's memory ops touch (empty outside fabric
    #: mode); >1 bank means the thread needs a return-data mux
    memory_banks_used: set[str] = field(default_factory=set)

    @property
    def register_bits(self) -> int:
        return sum(reg.width for reg in self.registers)

    def unit_count(self, kind: str) -> int:
        return sum(1 for unit in self.units if unit.kind == kind)

    @property
    def total_mux_inputs(self) -> int:
        return sum(unit.mux_inputs for unit in self.units)


def _expr_operations(expr: ast.Expr) -> list[tuple[str, str]]:
    """(resource class, label) of every operation in an expression."""
    ops: list[tuple[str, str]] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Binary):
            ops.append((op_class(node.op), node.op))
        elif isinstance(node, ast.Unary):
            ops.append((op_class(node.op), node.op))
        elif isinstance(node, ast.Conditional):
            ops.append(("alu", "?:"))
        elif isinstance(node, ast.Call):
            ops.append(("call", node.callee))
    return ops


def bind_thread(
    checked: CheckedProgram,
    memory_map: MemoryMap,
    fsm: ThreadFsm,
    share_registers: bool = False,
    bank_of: "Callable[[int], str] | None" = None,
) -> DatapathSummary:
    """Bind one synthesized thread's datapath.

    Binding policy: operations of the same class in *different* states can
    share one unit (they are mutually exclusive in time); the unit count of
    a class is therefore the maximum number of that class used in any
    single state, and sharing across states adds multiplexer inputs.
    With ``share_registers``, variables with disjoint live ranges share
    physical registers (left-edge allocation over the lifetime analysis).
    ``bank_of`` (fabric mode only) maps a logical word address to the
    fabric bank serving it, so the summary records which banks the thread's
    memory ports fan out to.
    """
    summary = DatapathSummary(thread=fsm.thread, state_bits=fsm.state_bits())

    # Per-state operation demand.
    per_state_ops: list[list[tuple[str, str]]] = []
    for state in fsm.states.values():
        state_ops: list[tuple[str, str]] = []
        for op in state.ops:
            if isinstance(op, ComputeOp):
                state_ops.extend(_expr_operations(op.expr))
            elif isinstance(op, MemWriteOp):
                state_ops.extend(_expr_operations(op.value_expr))
                if op.offset_expr is not None:
                    state_ops.extend(_expr_operations(op.offset_expr))
                    state_ops.append(("alu", "+addr"))
                summary.memory_ports_used.add(op.port)
                if bank_of is not None:
                    summary.memory_banks_used.add(bank_of(op.base_address))
            elif isinstance(op, MemReadOp):
                if op.offset_expr is not None:
                    state_ops.extend(_expr_operations(op.offset_expr))
                    state_ops.append(("alu", "+addr"))
                summary.memory_ports_used.add(op.port)
                if bank_of is not None:
                    summary.memory_banks_used.add(bank_of(op.base_address))
        per_state_ops.append(state_ops)

    # Unit count per class = max concurrent demand in one state.
    kinds = sorted({kind for ops in per_state_ops for kind, __ in ops})
    for kind in kinds:
        demand = max(
            sum(1 for k, __ in ops if k == kind) for ops in per_state_ops
        )
        shared_labels: list[list[str]] = [[] for __ in range(demand)]
        for ops in per_state_ops:
            slot = 0
            for k, label in ops:
                if k == kind:
                    shared_labels[slot % demand].append(label)
                    slot += 1
        for labels in shared_labels:
            if labels:
                summary.units.append(
                    FunctionalUnit(kind=kind, width=32, operations=labels)
                )

    # Registers: thread-local register-resident variables plus load temps.
    scope = checked.scopes[fsm.thread]
    candidates: list[tuple[str, int]] = []
    for name, symbol in sorted(scope.symbols.items()):
        if symbol.kind in (SymbolKind.CONSTANT, SymbolKind.SHARED):
            continue
        placement = memory_map.placements.get((fsm.thread, name))
        if placement is not None and placement.residency is Residency.REGISTER:
            candidates.append((name, symbol.hic_type.bit_width))

    if share_registers and len(candidates) > 1:
        summary.registers.extend(
            _share_registers(checked, fsm.thread, candidates)
        )
    else:
        summary.registers.extend(
            RegisterBinding(name=name, width=width)
            for name, width in candidates
        )

    temps: set[str] = set()
    for state in fsm.states.values():
        for op in state.ops:
            if isinstance(op, MemReadOp):
                temps.add(op.dest)
    for temp in sorted(temps):
        # Load registers mirror a BRAM word (36 bits max, typically 32).
        summary.registers.append(RegisterBinding(name=temp, width=32))

    return summary


def _share_registers(
    checked: CheckedProgram,
    thread_name: str,
    candidates: list[tuple[str, int]],
) -> list[RegisterBinding]:
    """Left-edge register allocation over disjoint live ranges."""
    thread = checked.program.thread(thread_name)
    lifetimes = thread_lifetimes(thread)
    widths = dict(candidates)

    # Sort by live-range start; greedily drop each variable into the first
    # register whose current occupants all end before it starts.
    ordered = sorted(
        (name for name, __ in candidates),
        key=lambda n: (
            lifetimes.ranges[n].start if n in lifetimes.ranges else 0,
            n,
        ),
    )
    groups: list[list[str]] = []
    group_end: list[int] = []
    for name in ordered:
        live = lifetimes.ranges.get(name)
        if live is None:
            # Declared but never touched: zero-length range at 0.
            start, end = 0, 0
        else:
            start, end = live.start, live.end
        placed = False
        for i, current_end in enumerate(group_end):
            if current_end < start:
                groups[i].append(name)
                group_end[i] = end
                placed = True
                break
        if not placed:
            groups.append([name])
            group_end.append(end)

    bindings = []
    for i, occupants in enumerate(groups):
        width = max(widths[name] for name in occupants)
        label = occupants[0] if len(occupants) == 1 else f"shared{i}"
        bindings.append(
            RegisterBinding(
                name=label, width=width, occupants=tuple(occupants)
            )
        )
    return bindings


def bind_program(
    checked: CheckedProgram,
    memory_map: MemoryMap,
    fsms: dict[str, ThreadFsm],
    bank_of: "Callable[[int], str] | None" = None,
) -> dict[str, DatapathSummary]:
    """Bind every thread's datapath."""
    return {
        name: bind_thread(checked, memory_map, fsm, bank_of=bank_of)
        for name, fsm in fsms.items()
    }
