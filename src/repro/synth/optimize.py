"""FSM optimization passes.

The baseline FSM builder emits one state per statement, which is correct
but wastes cycles on straight-line register arithmetic.  These passes
tighten the machines the way a behavioral synthesis backend would:

* :func:`eliminate_dead_states` — drops states unreachable from the
  initial state (left behind by ``break``/``continue``/``return``) and
  collapses empty pass-through states;
* :func:`pack_compute_states` — merges chains of register-only compute
  states whose combined operations fit the datapath's resource budget in
  one cycle (operator chaining), using the list scheduler's resource
  classes.  Memory-access, receive/transmit, and branching states are
  never merged: the paper's discipline keeps each memory access in its own
  known state.

Both passes preserve the observable dataflow: merged computes execute in
original order within the single cycle, matching sequential chaining of
combinational logic.
"""

from __future__ import annotations

from ..hic import ast
from .fsm import ComputeOp, State, ThreadFsm
from .schedule import DEFAULT_RESOURCES, op_class


def eliminate_dead_states(fsm: ThreadFsm) -> int:
    """Remove unreachable states; returns how many were dropped."""
    reachable = fsm.reachable_states()
    dead = [name for name in fsm.states if name not in reachable]
    for name in dead:
        del fsm.states[name]
    for dep_id, names in list(fsm.sync_states.items()):
        fsm.sync_states[dep_id] = [n for n in names if n in reachable]
    return len(dead)


def collapse_passthrough_states(fsm: ThreadFsm) -> int:
    """Collapse empty states with a single unconditional successor.

    An empty state whose only transition is unconditional adds a cycle of
    pure control overhead (join states, loop headers that guard nothing).
    Loop headers (states that are a transition target of a *later* state,
    i.e. back-edge targets) are kept: removing them would change loop
    timing in ways a real synthesis tool would not.
    """
    # Back-edge targets must keep their identity.
    order = {name: i for i, name in enumerate(fsm.states)}
    back_targets = {
        tr.target
        for state in fsm.states.values()
        for tr in state.transitions
        if order.get(tr.target, 0) <= order.get(state.name, 0)
    }

    collapsed = 0
    changed = True
    while changed:
        changed = False
        for name, state in list(fsm.states.items()):
            if name == fsm.initial or name in back_targets:
                continue
            if state.ops or len(state.transitions) != 1:
                continue
            transition = state.transitions[0]
            if transition.guard is not None or transition.target == name:
                continue
            target = transition.target
            for other in fsm.states.values():
                for tr in other.transitions:
                    if tr.target == name:
                        tr.target = target
            del fsm.states[name]
            collapsed += 1
            changed = True
            break
    return collapsed


def _compute_only(state: State) -> bool:
    return bool(state.ops) and all(
        isinstance(op, ComputeOp) for op in state.ops
    )


def _op_demand(state: State) -> dict[str, int]:
    """Resource demand of a state's compute expressions."""
    demand: dict[str, int] = {}
    for op in state.ops:
        assert isinstance(op, ComputeOp)
        for node in ast.walk(op.expr):
            if isinstance(node, (ast.Binary, ast.Unary)):
                kind = op_class(node.op)
            elif isinstance(node, ast.Conditional):
                kind = "alu"
            elif isinstance(node, ast.Call):
                kind = "call"
            else:
                continue
            demand[kind] = demand.get(kind, 0) + 1
    return demand


def pack_compute_states(
    fsm: ThreadFsm, resources: dict[str, int] | None = None
) -> int:
    """Merge linear chains of compute-only states; returns merges done.

    Two adjacent states merge when the first's only transition is an
    unconditional edge to the second, the second has no other predecessors,
    both are compute-only, and their combined resource demand fits the
    per-cycle budget.  Chained dataflow (the second reading what the first
    wrote) is fine — that is exactly operator chaining within one cycle.
    """
    if resources is None:
        resources = dict(DEFAULT_RESOURCES)

    merges = 0
    changed = True
    while changed:
        changed = False
        predecessor_count: dict[str, int] = {}
        for state in fsm.states.values():
            for tr in state.transitions:
                predecessor_count[tr.target] = (
                    predecessor_count.get(tr.target, 0) + 1
                )
        for name, state in list(fsm.states.items()):
            if not _compute_only(state):
                continue
            if len(state.transitions) != 1:
                continue
            transition = state.transitions[0]
            if transition.guard is not None:
                continue
            target_name = transition.target
            if target_name == name or target_name == fsm.initial:
                continue
            target = fsm.states.get(target_name)
            if target is None or not _compute_only(target):
                continue
            if predecessor_count.get(target_name, 0) != 1:
                continue
            combined: dict[str, int] = _op_demand(state)
            for kind, count in _op_demand(target).items():
                combined[kind] = combined.get(kind, 0) + count
            if any(
                count > resources.get(kind, 1)
                for kind, count in combined.items()
            ):
                continue
            # Merge: ops execute in order, transitions come from the target.
            state.ops.extend(target.ops)
            state.transitions = target.transitions
            del fsm.states[target_name]
            merges += 1
            changed = True
            break
    return merges


def optimize_fsm(
    fsm: ThreadFsm, resources: dict[str, int] | None = None
) -> dict[str, int]:
    """Run all passes to a fixpoint; returns per-pass counters."""
    counters = {"dead": 0, "collapsed": 0, "packed": 0}
    changed = True
    while changed:
        dead = eliminate_dead_states(fsm)
        collapsed = collapse_passthrough_states(fsm)
        packed = pack_compute_states(fsm, resources)
        counters["dead"] += dead
        counters["collapsed"] += collapsed
        counters["packed"] += packed
        changed = bool(dead or collapsed or packed)
    return counters
