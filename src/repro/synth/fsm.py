"""FSM (FSMD) construction: hic threads to cycle-accurate state machines.

"In the hic front-end compilation, a series of synthesis steps are applied
that transform the hic threads into state machines ...  These state
machines are cycle accurate and we have knowledge of the particular state
where memory accesses happen." (§3)

Each thread becomes a :class:`ThreadFsm` whose states carry *micro-ops*:

* ``MemReadOp`` / ``MemWriteOp`` — one BRAM access per state (the paper's
  single-cycle-access discipline).  Guarded accesses (consumer reads via
  port C, producer writes via port D) are the synchronization points: the
  simulator may stall such a state until the memory controller grants it.
* ``ComputeOp`` — a combinational register update.
* ``ReceiveOp`` / ``TransmitOp`` — network interface transactions.

The FSM loops: after the last statement, control returns to the initial
state, modelling a thread that runs to completion per message and then
processes the next one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from ..hic import ast
from ..hic.semantic import CheckedProgram, SymbolKind
from ..hic.types import MESSAGE_FIELDS, MessageType
from ..memory.allocation import MemoryMap, Placement


# ---------------------------------------------------------------------------
# Micro-operations
# ---------------------------------------------------------------------------


@dataclass
class MemReadOp:
    """Read one BRAM word into a datapath register.

    ``port`` is ``"A"`` for plain accesses or ``"C"`` for guarded consumer
    reads (which may block until the producer has written, §3.1).
    """

    bram: str
    base_address: int
    dest: str
    offset_expr: Optional[ast.Expr] = None
    port: str = "A"
    dep_id: Optional[str] = None

    @property
    def guarded(self) -> bool:
        return self.port == "C"


@dataclass
class MemWriteOp:
    """Write one BRAM word.

    ``port`` is ``"A"`` for plain accesses or ``"D"`` for guarded producer
    writes (highest priority at the wrapper, §3.1).
    """

    bram: str
    base_address: int
    value_expr: ast.Expr = None  # type: ignore[assignment]
    offset_expr: Optional[ast.Expr] = None
    port: str = "A"
    dep_id: Optional[str] = None

    @property
    def guarded(self) -> bool:
        return self.port == "D"


@dataclass
class ComputeOp:
    """Combinational register update: ``dest := expr``."""

    dest: str
    expr: ast.Expr


@dataclass
class ReceiveOp:
    """Blocking receive of the next message from an interface."""

    target: str
    interface: str


@dataclass
class TransmitOp:
    """Emit a message on an interface."""

    source: str
    interface: str


MicroOp = Union[MemReadOp, MemWriteOp, ComputeOp, ReceiveOp, TransmitOp]


# ---------------------------------------------------------------------------
# States and machines
# ---------------------------------------------------------------------------


@dataclass
class Transition:
    """A guarded transition; ``guard is None`` means unconditional/default.
    Guards are evaluated in list order."""

    guard: Optional[ast.Expr]
    target: str


@dataclass
class State:
    """One FSM state: its micro-ops execute in one cycle (or stall there,
    for guarded/blocking ops) and then a transition fires."""

    name: str
    ops: list[MicroOp] = field(default_factory=list)
    transitions: list[Transition] = field(default_factory=list)

    @property
    def blocking(self) -> bool:
        """Whether this state can stall (guarded memory op or receive)."""
        for op in self.ops:
            if isinstance(op, (MemReadOp, MemWriteOp)) and op.guarded:
                return True
            if isinstance(op, ReceiveOp):
                return True
        return False

    @property
    def memory_ops(self) -> list[MicroOp]:
        return [op for op in self.ops if isinstance(op, (MemReadOp, MemWriteOp))]


@dataclass
class ThreadFsm:
    """The synthesized state machine of one thread."""

    thread: str
    states: dict[str, State] = field(default_factory=dict)
    initial: str = ""
    #: dep_id -> state names of its guarded accesses in this thread
    sync_states: dict[str, list[str]] = field(default_factory=dict)

    def state(self, name: str) -> State:
        return self.states[name]

    @property
    def state_count(self) -> int:
        return len(self.states)

    def state_bits(self) -> int:
        """Flip-flops in the one-hot-free (binary) state register."""
        return max(1, (len(self.states) - 1).bit_length())

    def guarded_reads(self) -> list[MemReadOp]:
        return [
            op
            for st in self.states.values()
            for op in st.ops
            if isinstance(op, MemReadOp) and op.guarded
        ]

    def guarded_writes(self) -> list[MemWriteOp]:
        return [
            op
            for st in self.states.values()
            for op in st.ops
            if isinstance(op, MemWriteOp) and op.guarded
        ]

    def reachable_states(self) -> set[str]:
        seen: set[str] = set()
        stack = [self.initial]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            for tr in self.states[name].transitions:
                stack.append(tr.target)
        return seen


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


class FsmBuilder:
    """Builds a :class:`ThreadFsm` from a checked thread and memory map."""

    def __init__(
        self,
        checked: CheckedProgram,
        memory_map: MemoryMap,
        thread: ast.Thread,
    ):
        self._checked = checked
        self._map = memory_map
        self._thread = thread
        self._scope = checked.scopes[thread.name]
        self._fsm = ThreadFsm(thread=thread.name)
        self._counter = itertools.count()
        self._temp_counter = itertools.count()
        self._loop_stack: list[tuple[str, str]] = []  # (continue_to, break_to)

        # Which (dep_id, role) guards apply, resolved from pragmas.
        self._producer_deps = {
            dep.dep_id: dep
            for dep in checked.dependencies
            if dep.producer_thread == thread.name
        }
        self._consumer_deps = {
            dep.dep_id: dep
            for dep in checked.dependencies
            if thread.name in dep.consumer_threads()
        }

    # -- state helpers -------------------------------------------------------------

    def _new_state(self, prefix: str = "s") -> State:
        state = State(name=f"{prefix}{next(self._counter)}")
        self._fsm.states[state.name] = state
        return state

    @staticmethod
    def _link(src: State, dst: State, guard: Optional[ast.Expr] = None) -> None:
        src.transitions.append(Transition(guard, dst.name))

    def _note_sync(self, dep_id: str, state: State) -> None:
        self._fsm.sync_states.setdefault(dep_id, []).append(state.name)

    # -- storage resolution ----------------------------------------------------------

    def _placement_of(self, name: str) -> Optional[Placement]:
        """BRAM placement of a variable as seen from this thread, resolving
        shared imports to the producer's storage.  None = register."""
        symbol = self._scope.symbols.get(name)
        if symbol is None:
            return None
        if symbol.kind is SymbolKind.CONSTANT:
            return None
        if symbol.kind is SymbolKind.SHARED:
            for dep in self._consumer_deps.values():
                if dep.producer_var == name:
                    placement = self._map.placement(dep.producer_thread, name)
                    return placement if placement.is_memory else None
            # Shared but not via a consumer dependency of this thread —
            # resolve through any dependency naming it.
            for dep in self._checked.dependencies:
                if dep.producer_var == name:
                    placement = self._map.placement(dep.producer_thread, name)
                    return placement if placement.is_memory else None
            return None
        placement = self._map.placements.get((self._thread.name, name))
        if placement is not None and placement.is_memory:
            return placement
        return None

    def _new_temp(self) -> str:
        return f"$t{next(self._temp_counter)}"

    # -- expression splitting ---------------------------------------------------------

    def _split_reads(
        self,
        expr: ast.Expr,
        pragmas: list[ast.DependencyPragma] | None = None,
    ) -> tuple[list[MemReadOp], ast.Expr]:
        """Extract BRAM reads from an expression.

        Returns the memory read micro-ops (one per BRAM access) and the
        expression rewritten to reference the loaded registers.  A read is
        guarded (port C) when a #producer pragma on the statement names the
        variable as a consumed dependency.
        """
        guarded_vars: dict[str, str] = {}
        if pragmas:
            for pragma in pragmas:
                if isinstance(pragma, ast.ProducerPragma):
                    link = pragma.links[0]
                    guarded_vars[link.variable] = pragma.dep_id

        reads: list[MemReadOp] = []
        loaded: dict[str, str] = {}

        def rewrite(node: ast.Expr) -> ast.Expr:
            if isinstance(node, ast.Name):
                placement = self._placement_of(node.ident)
                if placement is None:
                    return node
                if node.ident not in loaded:
                    dep_id = guarded_vars.get(node.ident)
                    reads.append(
                        MemReadOp(
                            bram=placement.bram,
                            base_address=placement.base_address,
                            dest=node.ident,
                            port="C" if dep_id else "A",
                            dep_id=dep_id,
                        )
                    )
                    loaded[node.ident] = node.ident
                return node  # register mirror carries the same name
            if isinstance(node, ast.Index):
                base = node.base
                assert isinstance(base, ast.Name)
                placement = self._placement_of(base.ident)
                new_index = rewrite(node.index)
                if placement is None:
                    return ast.Index(base, new_index, node.location)
                temp = self._new_temp()
                dep_id = guarded_vars.get(base.ident)
                reads.append(
                    MemReadOp(
                        bram=placement.bram,
                        base_address=placement.base_address,
                        dest=temp,
                        offset_expr=new_index,
                        port="C" if dep_id else "A",
                        dep_id=dep_id,
                    )
                )
                return ast.Name(temp, node.location)
            if isinstance(node, ast.FieldAccess):
                base = node.base
                assert isinstance(base, ast.Name)
                placement = self._placement_of(base.ident)
                if placement is None:
                    return node
                temp = self._new_temp()
                dep_id = guarded_vars.get(base.ident)
                offset = _message_field_offset(node.field_name)
                reads.append(
                    MemReadOp(
                        bram=placement.bram,
                        base_address=placement.base_address + offset,
                        dest=temp,
                        port="C" if dep_id else "A",
                        dep_id=dep_id,
                    )
                )
                return ast.Name(temp, node.location)
            if isinstance(node, ast.Unary):
                return ast.Unary(node.op, rewrite(node.operand), node.location)
            if isinstance(node, ast.Binary):
                return ast.Binary(
                    node.op, rewrite(node.left), rewrite(node.right), node.location
                )
            if isinstance(node, ast.Conditional):
                return ast.Conditional(
                    rewrite(node.cond),
                    rewrite(node.then_value),
                    rewrite(node.else_value),
                    node.location,
                )
            if isinstance(node, ast.Call):
                return ast.Call(
                    node.callee, [rewrite(a) for a in node.args], node.location
                )
            return node

        return reads, rewrite(expr)

    def _emit_reads(self, current: State, reads: list[MemReadOp]) -> State:
        """Chain memory-read states after ``current`` (one access per state)."""
        for op in reads:
            state = self._new_state("rd")
            state.ops.append(op)
            if op.dep_id is not None:
                self._note_sync(op.dep_id, state)
            self._link(current, state)
            current = state
        return current

    # -- statements ------------------------------------------------------------------

    def build(self) -> ThreadFsm:
        initial = self._new_state("start")
        self._fsm.initial = initial.name
        exit_state = self._build_block(self._thread.body, initial)
        # Run-to-completion loop: wrap around for the next message/round.
        self._link(exit_state, initial)
        return self._fsm

    def _build_block(self, block: ast.Block, current: State) -> State:
        for stmt in block.statements:
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(self, stmt: ast.Stmt, current: State) -> State:
        if isinstance(stmt, ast.VarDecl):
            return current
        if isinstance(stmt, ast.Assign):
            return self._build_assign(stmt, current)
        if isinstance(stmt, ast.ExprStmt):
            reads, expr = self._split_reads(stmt.expr)
            current = self._emit_reads(current, reads)
            state = self._new_state()
            state.ops.append(ComputeOp(self._new_temp(), expr))
            self._link(current, state)
            return state
        if isinstance(stmt, ast.Block):
            return self._build_block(stmt, current)
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current)
        if isinstance(stmt, ast.Case):
            return self._build_case(stmt, current)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, current)
        if isinstance(stmt, ast.For):
            return self._build_for(stmt, current)
        if isinstance(stmt, ast.Receive):
            state = self._new_state("rx")
            state.ops.append(ReceiveOp(stmt.target.ident, stmt.interface))
            self._link(current, state)
            return state
        if isinstance(stmt, ast.Transmit):
            assert isinstance(stmt.source, ast.Name)
            state = self._new_state("tx")
            state.ops.append(TransmitOp(stmt.source.ident, stmt.interface))
            self._link(current, state)
            return state
        if isinstance(stmt, ast.Return):
            # Return ends the round: jump to initial; following code is dead.
            self._link(current, self._fsm.states[self._fsm.initial])
            return self._new_state("dead")
        if isinstance(stmt, ast.Break):
            __, break_to = self._loop_stack[-1]
            self._link(current, self._fsm.states[break_to])
            return self._new_state("dead")
        if isinstance(stmt, ast.Continue):
            continue_to, __ = self._loop_stack[-1]
            self._link(current, self._fsm.states[continue_to])
            return self._new_state("dead")
        raise TypeError(f"unsupported statement {type(stmt).__name__}")

    def _build_assign(self, stmt: ast.Assign, current: State) -> State:
        value = stmt.value
        if stmt.op != "=":
            # Desugar compound assignment: target = target <op> value.
            value = ast.Binary(stmt.op[:-1], _target_as_expr(stmt.target), value,
                               stmt.location)
        reads, value = self._split_reads(value, stmt.pragmas)
        current = self._emit_reads(current, reads)

        target_root = _root_name(stmt.target)
        placement = self._placement_of(target_root)

        # Guarded producer write?  (#consumer pragma on this statement)
        dep_id = None
        for pragma in stmt.pragmas:
            if isinstance(pragma, ast.ConsumerPragma):
                dep_id = pragma.dep_id

        if placement is None:
            state = self._new_state()
            state.ops.append(ComputeOp(target_root, value))
            self._link(current, state)
            return state

        # BRAM-resident target: compute the word address.
        offset_expr: Optional[ast.Expr] = None
        base = placement.base_address
        if isinstance(stmt.target, ast.Index):
            index_reads, offset_expr = self._split_reads(stmt.target.index)
            current = self._emit_reads(current, index_reads)
        elif isinstance(stmt.target, ast.FieldAccess):
            base += _message_field_offset(stmt.target.field_name)

        state = self._new_state("wr")
        state.ops.append(
            MemWriteOp(
                bram=placement.bram,
                base_address=base,
                value_expr=value,
                offset_expr=offset_expr,
                port="D" if dep_id else "A",
                dep_id=dep_id,
            )
        )
        if dep_id is not None:
            self._note_sync(dep_id, state)
        self._link(current, state)
        return state

    def _build_if(self, stmt: ast.If, current: State) -> State:
        reads, cond = self._split_reads(stmt.cond)
        current = self._emit_reads(current, reads)
        branch = self._new_state("br")
        self._link(current, branch)
        join = self._new_state("join")

        then_entry = self._new_state()
        self._link(branch, then_entry, guard=cond)
        then_exit = self._build_block(stmt.then_body, then_entry)
        self._link(then_exit, join)

        if stmt.else_body is not None:
            else_entry = self._new_state()
            self._link(branch, else_entry)
            else_exit = self._build_block(stmt.else_body, else_entry)
            self._link(else_exit, join)
        else:
            self._link(branch, join)
        return join

    def _build_case(self, stmt: ast.Case, current: State) -> State:
        reads, selector = self._split_reads(stmt.selector)
        current = self._emit_reads(current, reads)
        branch = self._new_state("case")
        self._link(current, branch)
        join = self._new_state("join")

        for arm in stmt.arms:
            guard: Optional[ast.Expr] = None
            for value in arm.values:
                eq = ast.Binary("==", selector, value, stmt.location)
                guard = eq if guard is None else ast.Binary("||", guard, eq,
                                                            stmt.location)
            entry = self._new_state()
            self._link(branch, entry, guard=guard)
            exit_state = self._build_block(arm.body, entry)
            self._link(exit_state, join)

        if stmt.default is not None:
            entry = self._new_state()
            self._link(branch, entry)
            exit_state = self._build_block(stmt.default, entry)
            self._link(exit_state, join)
        else:
            self._link(branch, join)
        return join

    def _build_while(self, stmt: ast.While, current: State) -> State:
        head = self._new_state("loop")
        self._link(current, head)
        exit_state = self._new_state("exit")

        reads, cond = self._split_reads(stmt.cond)
        test_entry = self._emit_reads(head, reads)
        test = self._new_state("test")
        self._link(test_entry, test)

        body_entry = self._new_state()
        self._link(test, body_entry, guard=cond)
        self._link(test, exit_state)

        self._loop_stack.append((head.name, exit_state.name))
        body_exit = self._build_block(stmt.body, body_entry)
        self._loop_stack.pop()
        self._link(body_exit, head)
        return exit_state

    def _build_for(self, stmt: ast.For, current: State) -> State:
        if stmt.init is not None:
            current = self._build_assign(stmt.init, current)
        head = self._new_state("loop")
        self._link(current, head)
        exit_state = self._new_state("exit")

        if stmt.cond is not None:
            reads, cond = self._split_reads(stmt.cond)
            test_entry = self._emit_reads(head, reads)
            test = self._new_state("test")
            self._link(test_entry, test)
            body_entry = self._new_state()
            self._link(test, body_entry, guard=cond)
            self._link(test, exit_state)
        else:
            body_entry = self._new_state()
            self._link(head, body_entry)

        step_state = self._new_state("step")
        self._loop_stack.append((step_state.name, exit_state.name))
        body_exit = self._build_block(stmt.body, body_entry)
        self._loop_stack.pop()
        self._link(body_exit, step_state)
        if stmt.step is not None:
            after_step = self._build_assign(stmt.step, step_state)
        else:
            after_step = step_state
        self._link(after_step, head)
        return exit_state


def _message_field_offset(field_name: str) -> int:
    """Word offset of a message field: one BRAM word per field."""
    names = list(MESSAGE_FIELDS)
    return names.index(field_name)


def message_words() -> int:
    """BRAM words a message occupies (field-per-word layout)."""
    return len(MESSAGE_FIELDS)


def _root_name(target: ast.LValue) -> str:
    node: ast.Expr = target
    while isinstance(node, (ast.FieldAccess, ast.Index)):
        node = node.base
    assert isinstance(node, ast.Name)
    return node.ident


def _target_as_expr(target: ast.LValue) -> ast.Expr:
    """The target re-read as an expression (for compound assignment)."""
    return target


def synthesize_thread(
    checked: CheckedProgram, memory_map: MemoryMap, thread_name: str
) -> ThreadFsm:
    """Synthesize one thread into its FSM."""
    thread = checked.program.thread(thread_name)
    builder = FsmBuilder(checked, memory_map, thread)
    return builder.build()


def synthesize_program(
    checked: CheckedProgram, memory_map: MemoryMap
) -> dict[str, ThreadFsm]:
    """Synthesize every thread of a program."""
    return {
        thread.name: synthesize_thread(checked, memory_map, thread.name)
        for thread in checked.program.threads
    }
