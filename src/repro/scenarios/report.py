"""Per-scenario channel-synthesis report.

For each scenario, compile the design twice — all-guarded (the paper's
§3.1/§3.2 machinery on every dependency) and channel-aware (FIFO
lowering where the classifier proves it safe) — and report, per channel,
its class and deciding rule, plus the synchronization area and
end-to-end progress delta between the two synthesis modes.

Methodology (docs/scenarios.md): the *synchronization area* of a design
is the summed area of its wrapper/channel modules only — thread FSMs and
datapaths are identical across modes, so the delta isolates exactly what
channel lowering saves.  The *progress* figure is sink-thread rounds
completed in a fixed cycle budget on the same kernel.
"""

from __future__ import annotations

from typing import Optional

from ..core.advisor import Organization
from ..fpga.area import estimate_area
from ..fpga.timing import estimate_timing
from .catalog import build_scenario_simulation, get_scenario

#: `--channel-synthesis` choice list (CLI + tests).
CHANNEL_SYNTHESIS_MODES = ("guarded", "fifo")

#: Versioned schema tag of the JSON report document.
REPORT_SCHEMA = "repro.scenarios.report/1"


def sync_area(design) -> dict[str, int]:
    """Summed area of a design's synchronization modules (guarded
    wrappers + FIFO channels), the mode-sensitive part of the design."""
    totals = {"luts": 0, "ffs": 0, "slices": 0, "brams": 0}
    for module in design.wrapper_modules.values():
        report = estimate_area(module)
        totals["luts"] += report.luts
        totals["ffs"] += report.ffs
        totals["slices"] += report.slices
        totals["brams"] += report.brams
    return totals


def _min_fmax(design) -> Optional[float]:
    """Slowest synchronization module's fmax (None with no modules)."""
    fmax = None
    for name in design.wrapper_modules:
        report = estimate_timing(design.wrapper_modules[name])
        if fmax is None or report.fmax_mhz < fmax:
            fmax = report.fmax_mhz
    return fmax


def _sink_rounds(scenario, sim) -> int:
    return min(
        sim.executors[name].stats.rounds_completed
        for name in scenario.sink_threads
    )


def scenario_report(
    name: str,
    *,
    organization: Organization = Organization.ARBITRATED,
    cycles: int = 500,
    kernel: Optional[str] = None,
) -> dict:
    """Build the per-channel report document for one scenario."""
    scenario = get_scenario(name)

    guarded_design, guarded_sim = build_scenario_simulation(
        scenario,
        channel_synthesis="guarded",
        kernel=kernel,
        organization=organization,
    )
    fifo_design, fifo_sim = build_scenario_simulation(
        scenario,
        channel_synthesis="fifo",
        kernel=kernel,
        organization=organization,
    )
    guarded_sim.run(cycles)
    fifo_sim.run(cycles)

    channels = [
        {
            "dep_id": decision.dep_id,
            "class": decision.channel_class.value,
            "reason": decision.reason,
            "producer": decision.producer_thread,
            "variable": decision.producer_var,
            "consumers": list(decision.consumer_threads),
        }
        for decision in fifo_design.channel_decisions.values()
    ]
    guarded_area = sync_area(guarded_design)
    fifo_area = sync_area(fifo_design)
    guarded_rounds = _sink_rounds(scenario, guarded_sim)
    fifo_rounds = _sink_rounds(scenario, fifo_sim)

    return {
        "schema": REPORT_SCHEMA,
        "scenario": scenario.name,
        "title": scenario.title,
        "organization": organization.value,
        "channels": channels,
        "fifo_channels": sorted(fifo_design.fifo_deps),
        "area": {
            "guarded": guarded_area,
            "fifo": fifo_area,
            "delta_slices": guarded_area["slices"] - fifo_area["slices"],
        },
        "timing": {
            "guarded_min_fmax_mhz": _min_fmax(guarded_design),
            "fifo_min_fmax_mhz": _min_fmax(fifo_design),
        },
        "progress": {
            "cycles": cycles,
            "sink_threads": list(scenario.sink_threads),
            "guarded_rounds": guarded_rounds,
            "fifo_rounds": fifo_rounds,
            "delta_rounds": fifo_rounds - guarded_rounds,
        },
    }


def render_report(report: dict) -> str:
    """Human-readable rendering of one report document."""
    lines = [
        f"scenario {report['scenario']!r} ({report['title']}), "
        f"organization {report['organization']}"
    ]
    for channel in report["channels"]:
        consumers = ",".join(channel["consumers"])
        lines.append(
            f"  channel {channel['dep_id']}: {channel['class'].upper():7s} "
            f"{channel['producer']}.{channel['variable']} -> {consumers}"
            f"  ({channel['reason']})"
        )
    area = report["area"]
    lines.append(
        f"  sync area: guarded {area['guarded']['slices']} slices -> "
        f"fifo {area['fifo']['slices']} slices "
        f"(saved {area['delta_slices']})"
    )
    progress = report["progress"]
    lines.append(
        f"  progress in {progress['cycles']} cycles: "
        f"guarded {progress['guarded_rounds']} rounds -> "
        f"fifo {progress['fifo_rounds']} rounds "
        f"({progress['delta_rounds']:+d})"
    )
    return "\n".join(lines)
