"""Streaming process-network scenarios (see docs/scenarios.md).

Programmatically built multi-stage streaming pipelines in hic — the
workloads the channel classifier (:mod:`repro.analysis.channels`) was
built for.  Each scenario is a named, deterministic, free-running
process network with a known expected classification, runnable on every
simulation kernel via ``python -m repro run --scenario <name>``.
"""

from .catalog import (
    SCENARIO_NAMES,
    Scenario,
    build_scenario_simulation,
    collect_round_snapshots,
    fanin_source,
    fanout_source,
    get_scenario,
    pipeline_source,
    scenario_functions,
)
from .report import CHANNEL_SYNTHESIS_MODES, scenario_report, sync_area

__all__ = [
    "CHANNEL_SYNTHESIS_MODES",
    "SCENARIO_NAMES",
    "Scenario",
    "build_scenario_simulation",
    "collect_round_snapshots",
    "fanin_source",
    "fanout_source",
    "get_scenario",
    "pipeline_source",
    "scenario_functions",
    "scenario_report",
    "sync_area",
]
