"""The scenario catalogue: generated hic process networks.

Four streaming shapes, each free-running (no network interfaces) so
every simulation kernel produces byte-identical telemetry:

* ``forwarding`` — the paper's own broadcast workload (§4): one
  classifier fans a decision word out to two egress threads.  Every
  dependency is a broadcast, so channel classification changes nothing;
  this is the all-guarded baseline.
* ``pipeline``   — parse → filt → route → stats, a linear four-stage
  pipeline.  All three inter-stage channels are single-writer in-order
  streams, so FIFO synthesis removes the guarded BRAM entirely.
* ``fanout``     — a splitter feeding three parallel workers a private
  stream each, plus a broadcast ``mode`` word to all of them: FIFO and
  guarded channels coexist in one design.
* ``fanin``      — three producers merging into one stats collector over
  three private streams, all FIFO-lowerable.

Every stage folds each consumed value into a running accumulator
(``*_acc`` / ``total``), so two runs consume identical value sequences
iff their accumulators agree after the same number of consumer rounds —
the equivalence oracle used by the differential and property suites
(:func:`collect_round_snapshots`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

#: 36-bit BRAM word (data_bits of the paper's platform BRAMs).
_MASK = (1 << 36) - 1


def scenario_functions() -> dict[str, Callable[..., int]]:
    """Deterministic intrinsic bindings shared by the generated scenarios.

    Every function is a bijective-ish integer mixer masked to the 36-bit
    BRAM word, so consumed-value sequences are sensitive to ordering,
    duplication, and loss — a reordered or dropped channel value changes
    every later accumulator state.
    """

    def step(x: int) -> int:
        return (x + 1) & _MASK

    def mix(x: int) -> int:
        # Knuth multiplicative hash, truncated to the BRAM word.
        return (x * 2654435761 + 7) & _MASK

    def fold(value: int, acc: int) -> int:
        return (value ^ ((acc << 1) & _MASK) ^ (acc >> 3)) & _MASK

    def gather(value: int, acc: int) -> int:
        return (acc * 31 + value) & _MASK

    def gate(mode: int, acc: int) -> int:
        return (mode + (acc ^ 5)) & _MASK

    return {
        "step": step,
        "mix": mix,
        "fold": fold,
        "gather": gather,
        "gate": gate,
    }


# -- hic source builders ---------------------------------------------------------------


def _stage_names(stages: int) -> list[str]:
    canonical = ("parse", "filt", "route", "stats")
    if stages == len(canonical):
        return list(canonical)
    return [f"stage{i}" for i in range(stages)]


def pipeline_source(stages: int = 4) -> str:
    """A linear ``stages``-stage pipeline; every inter-stage channel is a
    single-writer in-order stream (FIFO-classifiable).

    Stage 0 generates values from a stepped seed; each middle stage folds
    its input into an accumulator and re-emits a mixed value; the last
    stage only folds.  ``stages >= 2``.
    """
    if stages < 2:
        raise ValueError("a pipeline needs at least 2 stages")
    names = _stage_names(stages)
    lines: list[str] = []

    # Stage 0: the source.
    first, second = names[0], names[1]
    lines += [
        f"thread {first} () {{",
        f"  int seed, {first}_out;",
        "  seed = step(seed);",
        f"  #consumer{{ch0,[{second},{second}_in]}}",
        f"  {first}_out = mix(seed);",
        "}",
    ]

    # Middle stages: consume, fold, re-emit.
    for i in range(1, stages - 1):
        name, prev, nxt = names[i], names[i - 1], names[i + 1]
        lines += [
            f"thread {name} () {{",
            f"  int {name}_in, {name}_acc, {name}_out;",
            f"  #producer{{ch{i - 1},[{prev},{prev}_out]}}",
            f"  {name}_in = fold({prev}_out, {name}_acc);",
            f"  {name}_acc = gather({name}_in, {name}_acc);",
            f"  #consumer{{ch{i},[{nxt},{nxt}_in]}}",
            f"  {name}_out = mix({name}_in);",
            "}",
        ]

    # Last stage: the sink.
    last, prev = names[-1], names[-2]
    lines += [
        f"thread {last} () {{",
        f"  int {last}_in, {last}_acc;",
        f"  #producer{{ch{stages - 2},[{prev},{prev}_out]}}",
        f"  {last}_in = fold({prev}_out, {last}_acc);",
        f"  {last}_acc = gather({last}_in, {last}_acc);",
        "}",
    ]
    return "\n".join(lines)


def fanout_source(width: int = 3) -> str:
    """A splitter feeding ``width`` workers a private stream each
    (FIFO-classifiable) plus one broadcast ``mode`` word to all of them
    (guarded: dependency number ``width``)."""
    if width < 2:
        raise ValueError("fan-out needs at least 2 workers")
    lines: list[str] = ["thread split () {"]
    locals_ = (
        ["seed"]
        + [f"u{i}" for i in range(width)]
        + ["mode"]
        + [f"v{i}" for i in range(width)]
    )
    lines.append(f"  int {', '.join(locals_)};")
    lines.append("  seed = step(seed);")
    # Distinct per-lane values, derived without ever reading a produced
    # variable back (rule 4 must hold for every lane channel).
    lines.append("  u0 = mix(seed);")
    for i in range(1, width):
        lines.append(f"  u{i} = mix(u{i - 1});")
    mode_links = ", ".join(f"[w{i},m{i}]" for i in range(width))
    lines.append(f"  #consumer{{chm,{mode_links}}}")
    lines.append(f"  mode = mix(u{width - 1});")
    for i in range(width):
        lines.append(f"  #consumer{{chf{i},[w{i},w{i}_in]}}")
        lines.append(f"  v{i} = mix(u{i});")
    lines.append("}")

    for i in range(width):
        lines += [
            f"thread w{i} () {{",
            f"  int m{i}, w{i}_in, w{i}_acc;",
            f"  #producer{{chm,[split,mode]}}",
            f"  m{i} = gate(mode, w{i}_acc);",
            f"  #producer{{chf{i},[split,v{i}]}}",
            f"  w{i}_in = fold(v{i}, m{i});",
            f"  w{i}_acc = gather(w{i}_in, w{i}_acc);",
            "}",
        ]
    return "\n".join(lines)


def fanin_source(width: int = 3) -> str:
    """``width`` producers merging into one collector over a private
    stream each — every channel FIFO-classifiable."""
    if width < 2:
        raise ValueError("fan-in needs at least 2 producers")
    lines: list[str] = []
    for i in range(width):
        lines += [
            f"thread p{i} () {{",
            f"  int seed{i}, g{i};",
            f"  seed{i} = step(seed{i});",
            f"  #consumer{{cg{i},[collect,c{i}]}}",
            f"  g{i} = mix(seed{i});",
            "}",
        ]
    lines.append("thread collect () {")
    locals_ = [f"c{i}" for i in range(width)] + ["total"]
    lines.append(f"  int {', '.join(locals_)};")
    for i in range(width):
        lines.append(f"  #producer{{cg{i},[p{i},g{i}]}}")
        lines.append(f"  c{i} = fold(g{i}, total);")
        lines.append(f"  total = gather(c{i}, total);")
    lines.append("}")
    return "\n".join(lines)


# -- the catalogue ---------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One catalogued process network."""

    name: str
    title: str
    description: str
    source: str
    #: threads whose ``rounds_completed`` measure end-to-end progress
    sink_threads: tuple[str, ...]
    #: dep_ids the classifier must lower to FIFO channels
    expected_fifo: tuple[str, ...]
    #: dep_ids that must stay on the guarded machinery
    expected_guarded: tuple[str, ...]

    def functions(self) -> dict[str, Callable[..., int]]:
        """Fresh intrinsic bindings for one simulation."""
        if self.name == "forwarding":
            from ..net.forwarding import forwarding_functions

            return forwarding_functions()
        return scenario_functions()


def _build_forwarding() -> Scenario:
    from ..net.forwarding import forwarding_source

    return Scenario(
        name="forwarding",
        title="broadcast forwarding (paper §4)",
        description=(
            "classifier broadcasts a decision word to 2 egress threads; "
            "every channel is a broadcast, so FIFO synthesis changes "
            "nothing (the all-guarded baseline)"
        ),
        source=forwarding_source(2, with_io=False),
        sink_threads=("egress0", "egress1"),
        expected_fifo=(),
        expected_guarded=("fw",),
    )


def _build_pipeline() -> Scenario:
    return Scenario(
        name="pipeline",
        title="4-stage streaming pipeline",
        description=(
            "parse -> filt -> route -> stats; all three inter-stage "
            "channels are single-writer in-order streams, lowered to "
            "plain FIFOs (the guarded BRAM disappears entirely)"
        ),
        source=pipeline_source(4),
        sink_threads=("stats",),
        expected_fifo=("ch0", "ch1", "ch2"),
        expected_guarded=(),
    )


def _build_fanout() -> Scenario:
    return Scenario(
        name="fanout",
        title="fan-out to 3 parallel workers",
        description=(
            "splitter feeds 3 workers a private stream each (FIFO) plus "
            "one broadcast mode word (guarded): both channel classes in "
            "one design"
        ),
        source=fanout_source(3),
        sink_threads=("w0", "w1", "w2"),
        expected_fifo=("chf0", "chf1", "chf2"),
        expected_guarded=("chm",),
    )


def _build_fanin() -> Scenario:
    return Scenario(
        name="fanin",
        title="3-way fan-in to a stats collector",
        description=(
            "3 producers merge into one collector over a private stream "
            "each; every channel lowers to a FIFO"
        ),
        source=fanin_source(3),
        sink_threads=("collect",),
        expected_fifo=("cg0", "cg1", "cg2"),
        expected_guarded=(),
    )


_BUILDERS: dict[str, Callable[[], Scenario]] = {
    "forwarding": _build_forwarding,
    "pipeline": _build_pipeline,
    "fanout": _build_fanout,
    "fanin": _build_fanin,
}

#: CLI choice list (`--scenario`), in catalogue order.
SCENARIO_NAMES = tuple(_BUILDERS)


def get_scenario(name: str) -> Scenario:
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (expected one of {SCENARIO_NAMES})"
        ) from None
    return builder()


# -- simulation helpers ----------------------------------------------------------------


def build_scenario_simulation(
    scenario: Scenario,
    *,
    channel_synthesis: str = "fifo",
    kernel: Optional[str] = None,
    **compile_kwargs,
):
    """Compile and instantiate one scenario; returns ``(design, sim)``."""
    from ..flow import DEFAULT_KERNEL, build_simulation, compile_design

    design = compile_design(
        scenario.source,
        name=scenario.name,
        channel_synthesis=channel_synthesis,
        **compile_kwargs,
    )
    sim = build_simulation(
        design,
        scenario.functions(),
        kernel=kernel if kernel is not None else DEFAULT_KERNEL,
    )
    return design, sim


def collect_round_snapshots(
    sim, rounds: int, max_cycles: int = 200_000
) -> dict[str, dict[str, int]]:
    """Run until every thread has completed ``rounds`` rounds; return each
    thread's environment exactly at its ``rounds``-th completion.

    Because every scenario stage folds consumed values into an
    accumulator, two simulations consumed identical value sequences iff
    these snapshots are equal — the oracle behind the FIFO-vs-guarded
    equivalence tests.
    """
    snapshots: dict[str, dict[str, int]] = {}
    executors = sim.executors

    def capture(cycle, kernel) -> None:
        for name, executor in executors.items():
            if (
                name not in snapshots
                and executor.stats.rounds_completed >= rounds
            ):
                snapshots[name] = dict(executor.last_round_env)

    sim.kernel.add_post_cycle_hook(capture)
    sim.run(max_cycles, until=lambda k: len(snapshots) == len(executors))
    if len(snapshots) != len(executors):
        missing = sorted(set(executors) - set(snapshots))
        raise RuntimeError(
            f"threads {missing} did not reach {rounds} rounds within "
            f"{max_cycles} cycles"
        )
    return snapshots
