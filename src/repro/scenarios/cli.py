"""``python -m repro run`` and ``python -m repro scenarios`` sub-tools.

``run`` executes one catalogued scenario on a chosen kernel and channel
synthesis mode, with the same telemetry outputs as the main driver.
``scenarios`` compiles every scenario both ways and prints the
per-channel classification report with area/progress deltas
(``--json`` writes the versioned report document for CI artifacts).
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core.advisor import Organization
from ..core.errors import ParameterError, SimulationTimeout
from ..hic.errors import HicError
from .catalog import SCENARIO_NAMES, get_scenario
from .report import (
    CHANNEL_SYNTHESIS_MODES,
    REPORT_SCHEMA,
    render_report,
    scenario_report,
)


def _run_parser() -> argparse.ArgumentParser:
    from ..flow import DEFAULT_KERNEL, SIMULATION_KERNELS
    from ..obs.tracer import TRACE_LEVELS

    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description=(
            "Run one streaming process-network scenario "
            "(see docs/scenarios.md)."
        ),
    )
    parser.add_argument(
        "--scenario",
        required=True,
        choices=list(SCENARIO_NAMES),
        help="catalogued scenario to build and run",
    )
    parser.add_argument(
        "--channel-synthesis",
        choices=list(CHANNEL_SYNTHESIS_MODES),
        default="fifo",
        help=(
            "'fifo' lowers proven single-writer in-order channels to "
            "plain FIFOs; 'guarded' keeps every dependency on the "
            "paper's machinery (default: fifo)"
        ),
    )
    parser.add_argument(
        "--organization",
        choices=[org.value for org in Organization],
        default=Organization.ARBITRATED.value,
        help="memory organization for guarded channels (default: arbitrated)",
    )
    parser.add_argument(
        "--kernel",
        choices=list(SIMULATION_KERNELS),
        default=DEFAULT_KERNEL,
        help=f"simulation backend (default: {DEFAULT_KERNEL})",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=500,
        help="clock cycles to simulate (default: 500)",
    )
    parser.add_argument(
        "--trace-level",
        choices=list(TRACE_LEVELS),
        default="deps",
        help="telemetry event granularity (default: deps)",
    )
    parser.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write a JSON telemetry summary of the run to FILE",
    )
    parser.add_argument(
        "--trace-json",
        metavar="FILE",
        help="write a Chrome trace-event JSON of the run to FILE",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write Prometheus text-format metrics of the run to FILE",
    )
    return parser


def run_main(argv: list[str]) -> int:
    from .catalog import build_scenario_simulation

    args = _run_parser().parse_args(argv)
    if args.cycles <= 0:
        error = ParameterError(
            "cycle budget must be positive",
            parameter="cycles",
            value=args.cycles,
        )
        print(f"error: {error.describe()}", file=sys.stderr)
        return 2

    scenario = get_scenario(args.scenario)
    try:
        design, sim = build_scenario_simulation(
            scenario,
            channel_synthesis=args.channel_synthesis,
            kernel=args.kernel,
            organization=Organization(args.organization),
        )
    except (HicError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    telemetry = sim.attach_telemetry(trace_level=args.trace_level)
    try:
        result = sim.run(args.cycles)
    except SimulationTimeout as error:
        print(f"error: {error.describe()}", file=sys.stderr)
        return 1

    fifo_channels = sorted(design.fifo_deps)
    guarded = [
        d.dep_id
        for d in design.channel_decisions.values()
        if not d.is_fifo
    ]
    print(
        f"scenario {scenario.name!r} ({scenario.title}): "
        f"{len(design.fsms)} threads, "
        f"{len(design.checked.dependencies)} dependencies, "
        f"channel synthesis {design.channel_synthesis!r}"
    )
    if design.channel_synthesis == "fifo":
        print(
            f"channels: {len(fifo_channels)} fifo "
            f"({', '.join(fifo_channels) or '-'}), "
            f"{len(guarded)} guarded ({', '.join(sorted(guarded)) or '-'})"
        )
    print(result.describe())
    for name in scenario.sink_threads:
        rounds = sim.executors[name].stats.rounds_completed
        print(f"  sink {name}: {rounds} rounds completed")

    from ..obs.exporters import (
        write_chrome_trace,
        write_prometheus,
        write_summary_json,
    )

    if args.summary_json:
        write_summary_json(telemetry, args.summary_json)
        print(f"wrote telemetry summary to {args.summary_json}")
    if args.trace_json:
        write_chrome_trace(telemetry, args.trace_json)
        print(f"wrote Chrome trace to {args.trace_json}")
    if args.metrics:
        write_prometheus(telemetry, args.metrics)
        print(f"wrote Prometheus metrics to {args.metrics}")
    return 0


def _scenarios_parser() -> argparse.ArgumentParser:
    from ..flow import DEFAULT_KERNEL, SIMULATION_KERNELS

    parser = argparse.ArgumentParser(
        prog="python -m repro scenarios",
        description=(
            "Per-channel classification report with area/progress deltas "
            "of FIFO vs all-guarded synthesis (see docs/scenarios.md)."
        ),
    )
    parser.add_argument(
        "--scenario",
        choices=list(SCENARIO_NAMES),
        default=None,
        help="report one scenario only (default: all)",
    )
    parser.add_argument(
        "--organization",
        choices=[org.value for org in Organization],
        default=Organization.ARBITRATED.value,
        help="memory organization for guarded channels (default: arbitrated)",
    )
    parser.add_argument(
        "--kernel",
        choices=list(SIMULATION_KERNELS),
        default=DEFAULT_KERNEL,
        help=f"simulation backend (default: {DEFAULT_KERNEL})",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=500,
        help="simulated cycles per progress measurement (default: 500)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the versioned report document to FILE",
    )
    return parser


def scenarios_main(argv: list[str]) -> int:
    args = _scenarios_parser().parse_args(argv)
    if args.cycles <= 0:
        error = ParameterError(
            "cycle budget must be positive",
            parameter="cycles",
            value=args.cycles,
        )
        print(f"error: {error.describe()}", file=sys.stderr)
        return 2

    names = [args.scenario] if args.scenario else list(SCENARIO_NAMES)
    reports = []
    try:
        for name in names:
            report = scenario_report(
                name,
                organization=Organization(args.organization),
                cycles=args.cycles,
                kernel=args.kernel,
            )
            reports.append(report)
            print(render_report(report))
    except (HicError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.json:
        document = {"schema": REPORT_SCHEMA, "reports": reports}
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote scenario report to {args.json}")
    return 0
