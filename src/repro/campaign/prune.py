"""Predict-pruned campaigns: simulate only the analytically-promising
slice of a run matrix.

A design-space campaign hands every grid point to the simulator; most
points are nowhere near the Pareto frontier and their simulations buy
nothing.  With a validated closed-form model (:mod:`repro.model`) the
whole grid can be scored analytically first — microseconds per point —
and only the predicted frontier plus a safety margin goes through
:func:`~repro.campaign.engine.run_matrix`.  The margin absorbs the
model's stated error bound, so a point the model *almost* places on the
frontier is simulated rather than risked.

The pruning decision is a pure function of the specs' payloads and the
margin, so a pruned campaign inherits every determinism guarantee of the
engine: the same matrix prunes to the same subset, and the merged
results are byte-identical across worker counts and resume boundaries.
Skipped points are reported as skipped — never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..model.pareto import DEFAULT_MARGIN, prune_objectives
from .engine import EngineConfig, EngineReport, RunSpec, run_matrix


@dataclass
class PruneReport:
    """A predict-pruned campaign: what ran, what was skipped, and why."""

    #: total grid size before pruning
    total: int
    #: spec indices that survived pruning (simulated), sorted
    kept: list = field(default_factory=list)
    #: spec indices the model ruled out, sorted
    skipped: list = field(default_factory=list)
    #: spec index -> the minimization objectives the decision used
    objectives: dict = field(default_factory=dict)
    #: the engine report for the kept subset (``results`` only covers
    #: kept indices)
    engine: Optional[EngineReport] = None

    @property
    def simulated_fraction(self) -> float:
        return len(self.kept) / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {
            "schema": "repro.campaign.prune/1",
            "total": self.total,
            "kept": list(self.kept),
            "skipped": list(self.skipped),
            "simulated_fraction": round(self.simulated_fraction, 6),
        }


def predict_pruned_matrix(
    task: Callable[[dict], object],
    specs: Sequence[RunSpec],
    objectives: Callable[[dict], tuple],
    config: EngineConfig = EngineConfig(),
    *,
    margin: float = DEFAULT_MARGIN,
    exact: Sequence[int] = (),
    fingerprint: str = "",
    metrics=None,
) -> PruneReport:
    """Score every spec analytically, simulate only the promising ones.

    ``objectives`` maps a spec's payload to a *minimization* tuple (for
    the canonical DSE axes: ``(-throughput, wait, area)``); it must be
    cheap and pure — it runs once per grid point in the orchestrator.
    ``exact`` names tuple positions carrying no model error (measured
    quantities like slice area), which the margin relaxation leaves
    untouched.  Everything that survives
    :func:`~repro.model.pareto.prune_objectives` runs through the
    engine under ``config``; the rest is recorded as skipped.
    """
    ordered = sorted(specs, key=lambda spec: spec.index)
    scored = [tuple(objectives(spec.payload)) for spec in ordered]
    keep_positions = prune_objectives(scored, margin, exact=exact)
    kept_specs = [ordered[position] for position in keep_positions]
    kept_indices = {spec.index for spec in kept_specs}

    report = PruneReport(
        total=len(ordered),
        kept=sorted(kept_indices),
        skipped=sorted(
            spec.index for spec in ordered
            if spec.index not in kept_indices
        ),
        objectives={
            spec.index: scored[position]
            for position, spec in enumerate(ordered)
        },
    )
    report.engine = run_matrix(
        task, kept_specs, config, fingerprint=fingerprint, metrics=metrics
    )
    return report
