"""Append-only JSONL result journal: the engine's checkpoint/resume store.

The journal is the crash-safety boundary of a campaign: every finalized
run result is appended (and flushed) the moment it exists, so a killed
orchestrator — power loss, OOM, ``kill -9``, Ctrl-C — loses at most the
run that was in flight, never completed work.  ``--resume`` replays the
file and skips every finished run.

Format: line 1 is a header record binding the journal to one campaign
(schema tag, a caller-supplied *fingerprint* of the campaign
configuration, and the expected run count); every further line is one
:class:`~repro.campaign.engine.RunResult` as JSON.  The reader is
tolerant of a torn final line (the signature of dying mid-append) and
lets later records for the same run index win, so re-running with the
same journal path after a partial campaign is always safe.

Resuming against a journal whose fingerprint does not match the campaign
raises :class:`JournalError` — silently merging results from a
*different* matrix is exactly the kind of corruption a fault-tolerance
layer must refuse.
"""

from __future__ import annotations

import json
import os
from typing import Optional, TextIO

JOURNAL_SCHEMA = "repro.campaign.journal/1"


class JournalError(ValueError):
    """The journal file does not belong to this campaign (or is not a
    journal at all)."""


def _parse_header(line: str, path: str) -> dict:
    try:
        header = json.loads(line)
    except ValueError as error:
        raise JournalError(
            f"{path}: first line is not a journal header ({error})"
        ) from error
    if not isinstance(header, dict) or header.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            f"{path}: not a campaign journal (expected schema "
            f"{JOURNAL_SCHEMA!r})"
        )
    return header


def read_journal(path: str) -> tuple[dict, dict[int, dict]]:
    """Load ``(header, {run_index: result_record})`` from a journal.

    Torn trailing lines are skipped; duplicate indices keep the latest
    record (a re-run after resume may legitimately append a newer one).
    """
    with open(path) as handle:
        first = handle.readline()
        if not first.strip():
            raise JournalError(f"{path}: empty journal")
        header = _parse_header(first, path)
        records: dict[int, dict] = {}
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # Torn write from a killed orchestrator: everything
                # before it is still good.
                continue
            if isinstance(record, dict) and isinstance(
                record.get("index"), int
            ):
                records[record["index"]] = record
    return header, records


class JournalWriter:
    """Appends finalized results to a journal, creating or continuing it.

    Continuing (the ``--resume`` + ``--journal`` same-file idiom)
    validates the existing header against this campaign's fingerprint
    before appending a single byte.
    """

    def __init__(self, path: str, fingerprint: str, total_runs: int):
        self.path = path
        self.fingerprint = fingerprint
        self.total_runs = total_runs
        self._handle: Optional[TextIO] = None
        if os.path.exists(path) and os.path.getsize(path) > 0:
            header, __ = read_journal(path)
            check_fingerprint(header, fingerprint, path)
            self._handle = open(path, "a")
        else:
            self._handle = open(path, "w")
            self._write_line(
                {
                    "schema": JOURNAL_SCHEMA,
                    "fingerprint": fingerprint,
                    "total_runs": total_runs,
                }
            )

    def _write_line(self, record: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def append(self, record: dict) -> None:
        """Persist one finalized result record (flushed immediately)."""
        if self._handle is None:
            raise ValueError("journal already closed")
        self._write_line(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def check_fingerprint(header: dict, fingerprint: str, path: str) -> None:
    """Refuse to mix results from a differently-configured campaign."""
    recorded = header.get("fingerprint")
    if fingerprint and recorded != fingerprint:
        raise JournalError(
            f"{path}: journal belongs to a different campaign "
            f"(journal fingerprint {recorded!r}, this campaign "
            f"{fingerprint!r})"
        )
