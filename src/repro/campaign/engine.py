"""Fault-tolerant parallel campaign engine.

Fans a matrix of independent runs (:class:`RunSpec`) across worker
processes and is robust by construction:

* **crash isolation** — each run executes in its own short-lived
  process; a worker that dies before reporting (unhandled C-level
  crash, ``os._exit``, the OOM killer) becomes a structured
  ``worker-crashed`` result instead of taking the campaign down;
* **hang isolation** — each run has a wall-clock timeout; a hung worker
  is terminated (then killed) and classified ``worker-timeout``;
* **retry with backoff** — crashed and timed-out attempts are retried
  up to a deterministic budget with capped exponential backoff;
  task-level exceptions are *not* retried (they are deterministic) and
  surface as ``task-error``;
* **checkpoint/resume** — finalized results stream into an append-only
  JSONL journal (:mod:`repro.campaign.journal`); resuming skips
  finished runs, and ``KeyboardInterrupt`` still yields the partial
  result set;
* **graceful degradation** — ``workers <= 1`` (or a failed process
  spawn) falls back to in-process serial execution with identical
  results for every run that completes.

**Determinism.**  Results are keyed by run index and merged in index
order, each run's behaviour must derive only from its own payload
(derive per-run seeds in the caller — never from shared RNG state), and
journaled values round-trip through JSON.  Consequently the merged
result list is byte-identical regardless of worker count, scheduling
order, retries, or resume boundaries.  Task payloads and return values
must therefore be JSON-pure (dict/list/str/int/float/bool/None).

Task functions must be module-level (importable) callables: worker
processes resolve them by reference.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from .journal import JournalWriter, check_fingerprint, read_journal
from .worker import CHAOS_KINDS, describe_error, worker_entry

#: Run outcome taxonomy (see ``docs/campaign.md``).
OUTCOME_OK = "ok"
OUTCOME_TASK_ERROR = "task-error"
OUTCOME_WORKER_CRASHED = "worker-crashed"
OUTCOME_WORKER_TIMEOUT = "worker-timeout"

OUTCOMES = (
    OUTCOME_OK,
    OUTCOME_TASK_ERROR,
    OUTCOME_WORKER_CRASHED,
    OUTCOME_WORKER_TIMEOUT,
)

#: Attempt-failure kinds that are worth retrying: the worker died
#: without producing a result, which can be transient (host pressure,
#: OOM race).  A task exception is deterministic and never retried.
RETRYABLE = (OUTCOME_WORKER_CRASHED, OUTCOME_WORKER_TIMEOUT)


@dataclass(frozen=True)
class RunSpec:
    """One independent run of the matrix.

    ``index`` is the run's stable identity — the journal key and the
    merge-sort key — and must be unique across the campaign.  The
    payload is the task's entire input; anything seed-like must be
    derived per-run *before* building specs.
    """

    index: int
    payload: dict


@dataclass(frozen=True)
class RunResult:
    """One finalized run: an outcome, and a value when the task ran."""

    index: int
    outcome: str
    value: object = None
    error: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK

    def to_json(self) -> dict:
        record: dict = {
            "index": self.index,
            "outcome": self.outcome,
            "attempts": self.attempts,
        }
        if self.value is not None:
            record["value"] = self.value
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_json(cls, record: dict) -> "RunResult":
        return cls(
            index=record["index"],
            outcome=record["outcome"],
            value=record.get("value"),
            error=record.get("error"),
            attempts=record.get("attempts", 1),
        )


@dataclass(frozen=True)
class EngineConfig:
    """Execution parameters: how a campaign runs, never what it computes.

    Nothing here may influence result *values* — that is what keeps the
    merged report byte-identical across worker counts and resume
    boundaries.
    """

    #: concurrent worker processes; <= 1 selects the in-process serial
    #: path (no subprocesses at all)
    workers: int = 1
    #: wall-clock seconds one attempt may take before its worker is
    #: killed (None = no timeout)
    run_timeout: Optional[float] = None
    #: extra attempts allowed after a crashed/timed-out first attempt
    retries: int = 2
    #: exponential backoff before retry k: min(cap, base * 2**(k-1))
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: append finalized results to this JSONL journal
    journal: Optional[str] = None
    #: skip runs already finalized in this journal
    resume: Optional[str] = None
    #: checkpoint valve: stop (gracefully) after this many *new*
    #: results this session, leaving the rest for a resumed campaign
    stop_after: Optional[int] = None
    #: multiprocessing start method (None = "fork" when available)
    mp_context: Optional[str] = None
    #: seconds between SIGTERM and SIGKILL when putting a worker down
    grace_seconds: float = 1.0
    #: injected worker failures for self-tests: (run index, kind) with
    #: kind in CHAOS_KINDS; fires only on the run's first attempt and
    #: only in worker processes
    chaos: tuple[tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        for __, kind in self.chaos:
            if kind not in CHAOS_KINDS:
                raise ValueError(
                    f"unknown chaos kind {kind!r} (expected {CHAOS_KINDS})"
                )
        if self.retries < 0:
            raise ValueError("retries must be >= 0")


@dataclass
class EngineReport:
    """Merged results plus the engine's own robustness telemetry.

    ``results`` is the deterministic surface (sorted by run index);
    everything else describes *this execution* — wall time, retries,
    worker utilization — and legitimately varies between runs of the
    same campaign.
    """

    results: list[RunResult] = field(default_factory=list)
    total_runs: int = 0
    interrupted: bool = False
    stopped: bool = False
    degraded_serial: bool = False
    resumed: int = 0
    completed: int = 0
    retried: int = 0
    crashed_attempts: int = 0
    timed_out_attempts: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0

    @property
    def utilization(self) -> float:
        """Busy worker-seconds over available worker-seconds."""
        available = self.workers * self.wall_seconds
        return self.busy_seconds / available if available > 0 else 0.0

    def by_outcome(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for result in self.results:
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        return counts

    def counters(self) -> dict[str, int]:
        """The robustness counters, JSON-ready."""
        return {
            "runs_total": self.total_runs,
            "completed": self.completed,
            "resumed": self.resumed,
            "retried": self.retried,
            "crashed_attempts": self.crashed_attempts,
            "timed_out_attempts": self.timed_out_attempts,
            **{
                f"outcome_{name.replace('-', '_')}": count
                for name, count in sorted(self.by_outcome().items())
            },
        }

    def describe(self) -> str:
        """One-line execution summary (deliberately *not* part of the
        deterministic report surface: it includes wall-clock numbers)."""
        flags = []
        if self.interrupted:
            flags.append("interrupted")
        if self.stopped:
            flags.append("checkpoint-stop")
        if self.degraded_serial:
            flags.append("degraded-serial")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"engine: workers={self.workers} completed={self.completed} "
            f"resumed={self.resumed} retried={self.retried} "
            f"crashed={self.crashed_attempts} "
            f"timed-out={self.timed_out_attempts} "
            f"wall={self.wall_seconds:.2f}s "
            f"utilization={self.utilization:.2f}{suffix}"
        )


@dataclass
class _Active:
    """One in-flight worker."""

    process: multiprocessing.process.BaseProcess
    spec: RunSpec
    attempt: int
    started: float
    deadline: Optional[float]


class CampaignEngine:
    """Drives one campaign: schedule, isolate, retry, journal, merge."""

    def __init__(
        self,
        task: Callable[[dict], object],
        config: EngineConfig = EngineConfig(),
        *,
        fingerprint: str = "",
        metrics=None,
    ):
        self.task = task
        self.config = config
        self.fingerprint = fingerprint
        self._chaos = dict(config.chaos)
        self._journal: Optional[JournalWriter] = None
        self._results: dict[int, RunResult] = {}
        self._failures: dict[int, int] = {}
        self._report = EngineReport(workers=max(1, config.workers))
        self._delayed_heap: list[tuple[float, int, RunSpec]] = []
        self._busy = 0.0
        self._metrics = self._register_metrics(metrics)

    # -- metrics ---------------------------------------------------------------------

    def _register_metrics(self, registry):
        if registry is None:
            return None
        return {
            "runs": registry.counter(
                "campaign_runs_total",
                "Finalized campaign runs, by outcome",
                labels=("outcome",),
            ),
            "retries": registry.counter(
                "campaign_retries_total",
                "Run attempts re-scheduled after a crashed or timed-out "
                "worker",
            ),
            "failures": registry.counter(
                "campaign_attempt_failures_total",
                "Worker attempts that died before producing a result, "
                "by kind",
                labels=("kind",),
            ),
            "resumed": registry.counter(
                "campaign_runs_resumed_total",
                "Runs skipped because the resume journal already held "
                "their result",
            ),
            "utilization": registry.gauge(
                "campaign_worker_utilization",
                "Busy worker-seconds over available worker-seconds",
            ),
            "workers": registry.gauge(
                "campaign_workers", "Configured worker processes"
            ),
        }

    # -- public API ------------------------------------------------------------------

    def run(self, specs: Iterable[RunSpec]) -> EngineReport:
        """Execute the matrix and return the merged report."""
        ordered = sorted(specs, key=lambda spec: spec.index)
        indices = [spec.index for spec in ordered]
        if len(set(indices)) != len(indices):
            raise ValueError("run indices must be unique")
        report = self._report
        report.total_runs = len(ordered)
        started = time.monotonic()

        if self.config.resume:
            self._load_resume(ordered)
        if self.config.journal:
            self._journal = JournalWriter(
                self.config.journal, self.fingerprint, len(ordered)
            )

        todo = [spec for spec in ordered if spec.index not in self._results]
        budget = self.config.stop_after
        if budget is not None and budget < len(todo):
            report.stopped = True
            todo = todo[:budget]

        try:
            if self.config.workers <= 1:
                self._run_serial(todo)
            else:
                self._run_parallel(todo)
        except KeyboardInterrupt:
            report.interrupted = True
        finally:
            if self._journal is not None:
                self._journal.close()
            report.wall_seconds = time.monotonic() - started
            report.busy_seconds = self._busy
            report.results = [
                self._results[index]
                for index in sorted(self._results)
            ]
            if self._metrics is not None:
                self._metrics["utilization"].set(
                    round(report.utilization, 6)
                )
                self._metrics["workers"].set(report.workers)
        return report

    # -- resume ----------------------------------------------------------------------

    def _load_resume(self, specs: Sequence[RunSpec]) -> None:
        if not os.path.exists(self.config.resume):
            # First run of the --journal X --resume X recovery idiom:
            # nothing finished yet, nothing to skip.
            return
        header, records = read_journal(self.config.resume)
        check_fingerprint(header, self.fingerprint, self.config.resume)
        wanted = {spec.index for spec in specs}
        for index, record in records.items():
            if index not in wanted:
                continue
            self._results[index] = RunResult.from_json(record)
            self._report.resumed += 1
            if self._metrics is not None:
                self._metrics["resumed"].inc()

    # -- finalization (shared by every path) -----------------------------------------

    def _finalize(self, result: RunResult) -> None:
        self._results[result.index] = result
        self._report.completed += 1
        if self._metrics is not None:
            self._metrics["runs"].inc(outcome=result.outcome)
        if self._journal is not None:
            self._journal.append(result.to_json())

    def _attempts_of(self, index: int) -> int:
        return self._failures.get(index, 0) + 1

    # -- serial path -----------------------------------------------------------------

    def _run_one_inline(self, spec: RunSpec) -> None:
        """Run one spec in-process (serial path and spawn-failure
        fallback).  Crash/hang isolation is unavailable here; a task
        exception is still classified, and tasks may bound themselves
        with the simulator's ``max_wall_seconds`` valve."""
        start = time.monotonic()
        try:
            value = self.task(spec.payload)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            self._busy += time.monotonic() - start
            self._finalize(
                RunResult(
                    index=spec.index,
                    outcome=OUTCOME_TASK_ERROR,
                    error=describe_error(exc),
                    attempts=self._attempts_of(spec.index),
                )
            )
        else:
            self._busy += time.monotonic() - start
            self._finalize(
                RunResult(
                    index=spec.index,
                    outcome=OUTCOME_OK,
                    value=value,
                    attempts=self._attempts_of(spec.index),
                )
            )

    def _run_serial(self, todo: Sequence[RunSpec]) -> None:
        for spec in todo:
            self._run_one_inline(spec)

    # -- parallel path ---------------------------------------------------------------

    def _context(self):
        if self.config.mp_context:
            return multiprocessing.get_context(self.config.mp_context)
        # Prefer fork: no re-import requirement on task modules, and
        # payloads transfer without a pickling round-trip.
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _run_parallel(self, todo: Sequence[RunSpec]) -> None:
        from multiprocessing.connection import wait as connection_wait

        ctx = self._context()
        pending: deque[RunSpec] = deque(todo)
        delayed = self._delayed_heap = []  # [(ready_time, index, spec)]
        active: dict[object, _Active] = {}

        try:
            while pending or delayed or active:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    __, __, spec = heapq.heappop(delayed)
                    pending.append(spec)

                while pending and len(active) < self.config.workers:
                    spec = pending.popleft()
                    if not self._launch(ctx, spec, active):
                        # Spawn failure: degrade to in-process execution
                        # rather than losing the run.
                        self._report.degraded_serial = True
                        self._run_one_inline(spec)

                timeout = self._wait_timeout(active, delayed, now)
                if active:
                    ready = connection_wait(list(active), timeout=timeout)
                    for conn in ready:
                        self._absorb(conn, active.pop(conn))
                elif timeout > 0:
                    time.sleep(timeout)

                self._reap_timeouts(active)
        except KeyboardInterrupt:
            self._kill_all(active)
            raise

    def _launch(self, ctx, spec: RunSpec, active: dict) -> bool:
        attempt = self._attempts_of(spec.index)
        chaos = self._chaos.get(spec.index) if attempt == 1 else None
        receiver, sender = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=worker_entry,
            args=(self.task, spec.payload, sender, chaos),
            daemon=True,
        )
        try:
            process.start()
        except OSError:
            receiver.close()
            sender.close()
            return False
        # The child holds its own handle; closing ours makes the
        # receiver see EOF the instant the worker dies.
        sender.close()
        now = time.monotonic()
        deadline = (
            now + self.config.run_timeout
            if self.config.run_timeout is not None
            else None
        )
        active[receiver] = _Active(
            process=process,
            spec=spec,
            attempt=attempt,
            started=now,
            deadline=deadline,
        )
        return True

    def _wait_timeout(self, active, delayed, now: float) -> float:
        candidates = [0.5]
        for record in active.values():
            if record.deadline is not None:
                candidates.append(record.deadline - now)
        if delayed:
            candidates.append(delayed[0][0] - now)
        return max(0.01, min(candidates))

    def _absorb(self, conn, record: _Active) -> None:
        """Consume a worker's message (or its death) and finalize/retry."""
        self._busy += time.monotonic() - record.started
        try:
            kind, value = conn.recv()
        except (EOFError, OSError):
            self._join(record.process)
            code = record.process.exitcode
            self._attempt_failed(
                record.spec,
                OUTCOME_WORKER_CRASHED,
                f"worker exited with code {code} before reporting a result",
            )
            return
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._join(record.process)
        if kind == "ok":
            self._finalize(
                RunResult(
                    index=record.spec.index,
                    outcome=OUTCOME_OK,
                    value=value,
                    attempts=record.attempt,
                )
            )
        else:
            self._finalize(
                RunResult(
                    index=record.spec.index,
                    outcome=OUTCOME_TASK_ERROR,
                    error=str(value),
                    attempts=record.attempt,
                )
            )

    def _reap_timeouts(self, active: dict) -> None:
        now = time.monotonic()
        expired = [
            conn
            for conn, record in active.items()
            if record.deadline is not None and now >= record.deadline
        ]
        for conn in expired:
            record = active.pop(conn)
            self._busy += time.monotonic() - record.started
            self._put_down(record.process)
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._attempt_failed(
                record.spec,
                OUTCOME_WORKER_TIMEOUT,
                f"run exceeded the {self.config.run_timeout}s wall-clock "
                "timeout; worker killed",
            )

    def _attempt_failed(self, spec: RunSpec, kind: str, detail: str) -> None:
        failures = self._failures.get(spec.index, 0) + 1
        self._failures[spec.index] = failures
        if kind == OUTCOME_WORKER_CRASHED:
            self._report.crashed_attempts += 1
        else:
            self._report.timed_out_attempts += 1
        if self._metrics is not None:
            self._metrics["failures"].inc(kind=kind)
        if kind in RETRYABLE and failures <= self.config.retries:
            self._report.retried += 1
            if self._metrics is not None:
                self._metrics["retries"].inc()
            delay = min(
                self.config.backoff_cap,
                self.config.backoff_base * (2 ** (failures - 1)),
            )
            heapq.heappush(
                self._delayed_heap,
                (time.monotonic() + delay, spec.index, spec),
            )
        else:
            self._finalize(
                RunResult(
                    index=spec.index,
                    outcome=kind,
                    error=detail,
                    attempts=failures,
                )
            )

    # -- process hygiene -------------------------------------------------------------

    def _join(self, process) -> None:
        process.join(timeout=self.config.grace_seconds)
        if process.is_alive():  # pragma: no cover - defensive
            process.kill()
            process.join(timeout=self.config.grace_seconds)

    def _put_down(self, process) -> None:
        """Terminate, then kill, a worker that must not keep running."""
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.config.grace_seconds)
        if process.is_alive():
            process.kill()
            process.join(timeout=self.config.grace_seconds)

    def _kill_all(self, active: dict) -> None:
        for conn, record in active.items():
            self._put_down(record.process)
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        active.clear()


def run_matrix(
    task: Callable[[dict], object],
    specs: Iterable[RunSpec],
    config: EngineConfig = EngineConfig(),
    *,
    fingerprint: str = "",
    metrics=None,
) -> EngineReport:
    """One-shot convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        task, config, fingerprint=fingerprint, metrics=metrics
    )
    return engine.run(specs)
