"""Importable demo tasks for the campaign engine.

Worker processes resolve task functions by module reference, so the
engine's own tests and the CI ``campaign-smoke`` job need tasks that
live in an importable module — these.  They double as minimal examples
of the task contract: a module-level callable taking one JSON-pure
payload dict and returning a JSON-pure value.
"""

from __future__ import annotations

import os
import time


def echo_task(payload: dict) -> dict:
    """Return the payload — the identity task (scheduling tests)."""
    return dict(payload)


def square_task(payload: dict) -> dict:
    """A tiny deterministic computation keyed by the payload value."""
    value = payload["value"]
    return {"value": value, "square": value * value}


def sleep_task(payload: dict) -> str:
    """Sleep ``payload['seconds']`` — a stand-in for a hung run."""
    time.sleep(payload.get("seconds", 60.0))
    return "woke"


def error_task(payload: dict):
    """Raise — a deterministic task bug (classified ``task-error``)."""
    raise RuntimeError(payload.get("message", "boom"))


def crash_task(payload: dict):
    """Die without reporting — what an OOM kill looks like."""
    os._exit(payload.get("code", 21))


def crash_once_task(payload: dict) -> dict:
    """Crash on the first attempt, succeed on the retry.

    Uses a marker file (``payload['marker']``) as the cross-process
    "have I run before" bit, so the retry machinery is exercised with a
    real process death rather than a mock.
    """
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted\n")
        os._exit(payload.get("code", 21))
    return {"value": payload.get("value"), "recovered": True}


def busy_task(payload: dict) -> int:
    """Burn CPU deterministically — the parallel-speedup workload."""
    total = 0
    for i in range(payload.get("iterations", 200_000)):
        total = (total + i * i) % 1_000_003
    return total
