"""Fault-tolerant parallel campaign engine (see ``docs/campaign.md``).

Fault campaigns, fabric-scaling sweeps, and design-space exploration
all evaluate a matrix of independent (seed × config) runs.  This
package fans such a matrix across isolated worker processes and
survives what deliberately-pathological workloads do to a harness:
worker crashes become ``worker-crashed`` results, hangs are killed on a
wall-clock timeout, transient deaths are retried with capped
exponential backoff, completed results checkpoint into an append-only
JSONL journal for resume, and the merged result list is byte-identical
to a serial run regardless of worker count, scheduling, or resume
boundaries.

* :mod:`~repro.campaign.engine` — the scheduler/isolator/merger;
* :mod:`~repro.campaign.journal` — the JSONL checkpoint store;
* :mod:`~repro.campaign.worker` — worker entry point and chaos hooks;
* :mod:`~repro.campaign.tasks` — importable demo tasks;
* :mod:`~repro.campaign.prune` — predict-pruned matrices: score every
  point with the analytical model (:mod:`repro.model`) and simulate
  only the predicted Pareto frontier plus a safety margin.
"""

from .engine import (
    OUTCOME_OK,
    OUTCOME_TASK_ERROR,
    OUTCOME_WORKER_CRASHED,
    OUTCOME_WORKER_TIMEOUT,
    OUTCOMES,
    CampaignEngine,
    EngineConfig,
    EngineReport,
    RunResult,
    RunSpec,
    run_matrix,
)
from .journal import JOURNAL_SCHEMA, JournalError, JournalWriter, read_journal
from .prune import PruneReport, predict_pruned_matrix
from .worker import CHAOS_KINDS

__all__ = [
    "OUTCOME_OK",
    "OUTCOME_TASK_ERROR",
    "OUTCOME_WORKER_CRASHED",
    "OUTCOME_WORKER_TIMEOUT",
    "OUTCOMES",
    "CampaignEngine",
    "EngineConfig",
    "EngineReport",
    "RunResult",
    "RunSpec",
    "run_matrix",
    "JOURNAL_SCHEMA",
    "JournalError",
    "JournalWriter",
    "read_journal",
    "PruneReport",
    "predict_pruned_matrix",
    "CHAOS_KINDS",
]
