"""Worker-process entry point and chaos hooks for the campaign engine.

One run = one short-lived process.  The worker calls the task function
and reports exactly one of two messages back through its pipe:

* ``("ok", value)`` — the task returned;
* ``("error", description)`` — the task raised (caught *inside* the
  worker, so a deterministic task bug is a structured ``task-error``
  outcome, never a dead worker).

Anything else — the process dying before a message lands (``os._exit``,
a segfault, the OOM killer) — is observed by the parent as pipe EOF and
classified ``worker-crashed``.  A worker that never reports at all is
killed by the parent's run timeout and classified ``worker-timeout``.

``CHAOS_KINDS`` are the engine's *self-test* faults: deliberately
crashing, hanging, or raising inside a worker, used by the CI
``campaign-smoke`` job and the test suite to prove the isolation,
retry, and resume machinery against real process death rather than
mocks.  Chaos only ever fires on a run's first attempt, so a retried
run completes and the merged report stays byte-identical to an
uninjected campaign.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

#: Exit code a chaos-crashed worker dies with (visible in the parent's
#: failure detail; distinct from Python's 0/1 so reports are readable).
CHAOS_EXIT_CODE = 23

#: Supported chaos kinds: simulate a hard crash, a livelocked hang, and
#: an unhandled task exception.
CHAOS_KINDS = ("crash", "hang", "raise")


def apply_chaos(kind: str) -> None:
    """Execute one injected worker failure (testing aid)."""
    if kind == "crash":
        # A hard death: no exception propagation, no cleanup, no result
        # message — exactly what an OOM kill looks like to the parent.
        os._exit(CHAOS_EXIT_CODE)
    elif kind == "hang":
        # A livelock stand-in: never returns; only the parent's run
        # timeout can end this worker.
        while True:  # pragma: no cover - killed by the parent
            time.sleep(60)
    elif kind == "raise":
        raise RuntimeError("injected chaos fault (kind=raise)")
    else:
        raise ValueError(f"unknown chaos kind {kind!r}")


def describe_error(exc: BaseException) -> str:
    """Stable one-line rendering of a task exception."""
    text = str(exc)
    name = type(exc).__name__
    return f"{name}: {text}" if text else name


def worker_entry(
    task: Callable[[dict], object],
    payload: dict,
    conn,
    chaos: Optional[str] = None,
) -> None:
    """Run ``task(payload)`` and report the outcome through ``conn``."""
    message: tuple
    try:
        if chaos is not None:
            apply_chaos(chaos)
        message = ("ok", task(payload))
    except Exception as exc:
        message = ("error", describe_error(exc))
    try:
        conn.send(message)
    except (OSError, ValueError):  # parent gone or result unpicklable
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
