"""The sharded memory fabric: N memory controllers behind one address space.

:class:`MemoryFabric` is itself a :class:`~repro.core.controller.MemoryController`
— executors submit logical-address requests exactly as they would to a
single wrapper, and the fabric:

1. **routes** each request through the sharding policy to the bank owning
   its word (translating to a bank-local address);
2. carries it across the :class:`~repro.fabric.crossbar.Crossbar` (link
   latency + per-bank batched delivery with round-robin output arbitration);
3. lets the *bank's own organization* (arbitrated §3.1 / event-driven §3.2 /
   lock baseline) arbitrate and perform the access;
4. merges bank grants back into fabric-level results, so the base class's
   latency samples measure the full ingress-to-grant path.

Guarded requests whose dependency entry is homed on the bank holding the
guarded data (the default ``dep_home="address"``) are enforced by that
bank's native dependency list, unchanged from the paper.  With
``dep_home="spread"`` entries round-robin across banks to balance CAM and
arbiter load; entries landing away from their data bank become *cross-bank*
dependencies owned by the :class:`~repro.fabric.router.DependencyRouter`,
which holds producer writes and consumer reads at fabric ingress until the
§3.1 protocol allows them (see the router's module docstring).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.advisor import Organization
from ..core.arbitrated import ArbitratedController
from ..core.controller import MemRequest, MemResult, MemoryController
from ..core.event_driven import EventDrivenController
from ..core.lock_baseline import LockBaselineController
from ..hic.pragmas import Dependency
from ..hic.semantic import CheckedProgram
from ..memory.allocation import FABRIC_BRAM, MemoryMap, WORDS_PER_BRAM
from ..memory.bram import BlockRam
from ..memory.deplist import DependencyEntry, DependencyList
from .crossbar import Crossbar
from .router import DependencyRouter, RoutedDependency
from .sharding import ShardingPolicy, make_policy

#: Dependency home-bank policies (where the guard entry lives).
DEP_HOME_POLICIES = ("address", "spread")


@dataclass(frozen=True)
class FabricConfig:
    """Build-time parameters of one fabric."""

    num_banks: int = 1
    shard_policy: str = "interleaved"
    link_latency: int = 1
    batch_size: int = 1
    #: "address" homes each guard entry with its guarded data (all-native);
    #: "spread" homes entries away from their data bank (rotating by
    #: dependency index), creating cross-bank dependencies handled by
    #: the router
    dep_home: str = "address"

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("a fabric needs at least one bank")
        if self.dep_home not in DEP_HOME_POLICIES:
            raise ValueError(
                f"unknown dep_home policy {self.dep_home!r} "
                f"(expected one of {DEP_HOME_POLICIES})"
            )


class FabricMemoryView:
    """BlockRam-compatible view of the fabric's logical address space.

    Executor-side message DMA and debug peeks address the fabric logically;
    this view shards each word access to the owning bank's physical BRAM.
    """

    def __init__(self, policy: ShardingPolicy, banks: dict[str, BlockRam]):
        self.name = FABRIC_BRAM
        self._policy = policy
        self._banks = banks

    @property
    def depth(self) -> int:
        return self._policy.capacity

    def _locate(self, address: int) -> tuple[BlockRam, int]:
        bank = self._policy.bank_name(self._policy.bank_for(address))
        return self._banks[bank], self._policy.local_address(address)

    def read(self, address: int, cycle: int = 0, port: str = "A") -> int:
        bram, local = self._locate(address)
        return bram.read(local, cycle, port)

    def write(
        self, address: int, data: int, cycle: int = 0, port: str = "A"
    ) -> None:
        bram, local = self._locate(address)
        bram.write(local, data, cycle, port)

    def peek(self, address: int) -> int:
        bram, local = self._locate(address)
        return bram.peek(local)

    @property
    def width(self) -> int:
        return next(iter(self._banks.values())).width

    def flip_bit(self, address: int, bit: int) -> None:
        """SEU seam: flip one stored bit in the owning bank's BRAM."""
        bram, local = self._locate(address)
        bram.flip_bit(local, bit)

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self.peek(a) for a in range(self.depth))


@dataclass
class FabricPlan:
    """Design-time fabric artifact carried on a compiled design."""

    config: FabricConfig
    policy: ShardingPolicy
    bank_names: list[str]
    #: dependencies enforced natively by each bank's own organization
    native_dep_groups: dict[str, list[Dependency]] = field(default_factory=dict)
    #: per-bank dependency lists (bank-local addresses)
    bank_deplists: dict[str, DependencyList] = field(default_factory=dict)
    #: cross-bank dependencies (home bank != data bank), router-owned
    routed_deps: list[RoutedDependency] = field(default_factory=list)
    #: dep_id -> home bank index (native and routed alike)
    dep_home: dict[str, int] = field(default_factory=dict)

    @property
    def cross_bank_count(self) -> int:
        return len(self.routed_deps)


def plan_fabric(
    checked: CheckedProgram, memory_map: MemoryMap, config: FabricConfig
) -> FabricPlan:
    """Split a program's dependencies across the fabric's banks.

    Every dependency's guarded (produced) variable has a logical address;
    the sharding policy determines its *data bank*.  The home-bank policy
    then decides where the guard entry lives — entries homed with their
    data stay native, the rest become router-owned cross-bank entries.
    """
    if memory_map.fabric_banks != config.num_banks:
        raise ValueError(
            f"memory map was allocated for {memory_map.fabric_banks} banks, "
            f"fabric configured with {config.num_banks}"
        )
    policy = make_policy(config.shard_policy, config.num_banks)
    bank_names = [policy.bank_name(i) for i in range(config.num_banks)]
    plan = FabricPlan(
        config=config,
        policy=policy,
        bank_names=bank_names,
        native_dep_groups={name: [] for name in bank_names},
    )

    native_entries: dict[str, list[DependencyEntry]] = {
        name: [] for name in bank_names
    }
    ordered = sorted(checked.dependencies, key=lambda d: d.dep_id)
    for index, dep in enumerate(ordered):
        placement = memory_map.placement(dep.producer_thread, dep.producer_var)
        if not placement.is_bram:
            raise ValueError(
                f"dependency {dep.dep_id!r}: producer variable "
                f"{dep.producer_var!r} must be BRAM-resident"
            )
        logical = placement.base_address
        data_bank = policy.bank_for(logical)
        if config.dep_home == "address":
            home = data_bank
        else:
            # spread: home the entry away from its (hot) data bank,
            # rotating by dependency index to balance CAM/arbiter load.
            # With one bank this degenerates to native.
            home = (data_bank + 1 + index) % config.num_banks
        plan.dep_home[dep.dep_id] = home
        if home == data_bank:
            plan.native_dep_groups[bank_names[data_bank]].append(dep)
            native_entries[bank_names[data_bank]].append(
                DependencyEntry(
                    dep_id=dep.dep_id,
                    dependency_number=dep.dependency_number,
                    base_address=policy.local_address(logical),
                    producer_thread=dep.producer_thread,
                    consumer_threads=dep.consumer_threads(),
                )
            )
        else:
            plan.routed_deps.append(
                RoutedDependency(
                    dep_id=dep.dep_id,
                    dependency_number=dep.dependency_number,
                    logical_address=logical,
                    home_bank=home,
                    data_bank=data_bank,
                    producer_thread=dep.producer_thread,
                    consumer_threads=dep.consumer_threads(),
                )
            )

    plan.bank_deplists = {
        name: DependencyList(bram=name, entries=native_entries[name])
        for name in bank_names
    }
    return plan


class _State(enum.Enum):
    #: held at fabric ingress by the cross-bank dependency router
    GATED = "gated"
    #: travelling through the crossbar
    IN_FLIGHT = "in-flight"
    #: delivered to the bank; asserted there until granted
    DELIVERED = "delivered"


@dataclass
class _Tracked:
    """Progress of one fabric-level request through the pipeline."""

    original: MemRequest
    routed: MemRequest
    bank: str
    state: _State
    managed: bool  # router-owned cross-bank dependency


@dataclass
class FabricBankStats:
    """Per-bank activity summary (see :meth:`MemoryFabric.fabric_stats`)."""

    routed: int = 0
    granted: int = 0


class MemoryFabric(MemoryController):
    """N memory-organization banks behind one logical address space."""

    def __init__(
        self,
        banks: dict[str, MemoryController],
        policy: ShardingPolicy,
        router: DependencyRouter,
        crossbar: Crossbar,
        config: FabricConfig,
    ):
        view = FabricMemoryView(
            policy, {name: bank.bram for name, bank in banks.items()}
        )
        super().__init__(view)
        self.banks = banks
        self.policy = policy
        self.router = router
        self.crossbar = crossbar
        self.config = config
        self.bank_names = list(banks)
        self._tracked: dict[tuple, _Tracked] = {}
        self.bank_stats: dict[str, FabricBankStats] = {
            name: FabricBankStats() for name in banks
        }

    # -- routing --------------------------------------------------------------------

    def _route(self, request: MemRequest, cycle: int) -> _Tracked:
        """Classify a newly asserted request and, when allowed, push it
        into the crossbar."""
        managed = self.router.manages(request.dep_id)
        if managed:
            entry = self.router.entries[request.dep_id]
            bank_index = entry.data_bank
            # Cross-bank guarded traffic reaches the data bank as a plain
            # direct-port access: the guard was already enforced at ingress.
            routed = replace(
                request,
                port="A",
                address=self.policy.local_address(request.address),
            )
        else:
            bank_index = self.policy.bank_for(request.address)
            routed = replace(
                request, address=self.policy.local_address(request.address)
            )
        bank = self.policy.bank_name(bank_index)
        tracked = _Tracked(
            original=request,
            routed=routed,
            bank=bank,
            state=_State.GATED,
            managed=managed,
        )
        self._try_release(tracked, bank_index, cycle)
        return tracked

    def _try_release(
        self, tracked: _Tracked, bank_index: int, cycle: int
    ) -> None:
        """Move a GATED request into the crossbar if the router allows."""
        if tracked.state is not _State.GATED:
            return
        if tracked.managed:
            dep_id = tracked.original.dep_id
            if tracked.original.write:
                if not self.router.write_release_allowed(dep_id):
                    self.router.note_gated(cycle)
                    return
                self.router.on_write_released(dep_id, cycle)
            else:
                if not self.router.read_release_allowed(dep_id):
                    self.router.note_gated(cycle)
                    return
                self.router.on_read_released(dep_id, cycle)
        self.crossbar.push(bank_index, tracked.routed, cycle)
        self.bank_stats[tracked.bank].routed += 1
        tracked.state = _State.IN_FLIGHT
        if tracked.managed and self.observer is not None:
            on_routed = getattr(self.observer, "on_dep_routed", None)
            if on_routed is not None:
                on_routed(
                    self.bram.name,
                    tracked.original.dep_id,
                    tracked.bank,
                    tracked.original.client,
                    tracked.original.write,
                    cycle,
                )

    # -- the fabric cycle -------------------------------------------------------------

    def _arbitrate_cycle(
        self, requests: list[MemRequest], cycle: int
    ) -> dict[str, MemResult]:
        # A tracked request's crossbar/bank state can advance every
        # fabric cycle, so cached classifications never outlive one.
        self.classify_epoch += 1
        armed = self.router.tick(cycle)
        if armed and self.observer is not None:
            on_notified = getattr(self.observer, "on_dep_notified", None)
            for dep_id in armed:
                entry = self.router.entries[dep_id]
                home = self.policy.bank_name(entry.home_bank)
                self.observer.on_dep_armed(
                    home,
                    dep_id,
                    entry.producer_thread,
                    entry.logical_address,
                    cycle,
                    entry.outstanding,
                )
                if on_notified is not None:
                    on_notified(
                        self.bram.name,
                        dep_id,
                        home,
                        cycle,
                        self.router.notify_latency,
                    )

        asserted = set()
        for request in sorted(requests):
            key = request.key
            asserted.add(key)
            tracked = self._tracked.get(key)
            if tracked is None:
                self._tracked[key] = self._route(request, cycle)
            elif tracked.state is _State.GATED:
                bank_index = self.bank_names.index(tracked.bank)
                self._try_release(tracked, bank_index, cycle)

        # A gated request whose thread stopped asserting was withdrawn
        # before it ever entered the interconnect.
        for key in [
            k
            for k, t in self._tracked.items()
            if t.state is _State.GATED and k not in asserted
        ]:
            del self._tracked[key]

        # Crossbar deliveries land at their banks.
        for bank_index, delivered in self.crossbar.deliveries(cycle).items():
            bank = self.policy.bank_name(bank_index)
            for routed in delivered:
                for tracked in self._tracked.values():
                    if (
                        tracked.state is _State.IN_FLIGHT
                        and tracked.bank == bank
                        and tracked.routed.key == routed.key
                    ):
                        tracked.state = _State.DELIVERED
                        break

        # Delivered requests assert their lines at the bank every cycle
        # until granted (banks clear pending per cycle, like the kernel).
        for tracked in self._tracked.values():
            if tracked.state is _State.DELIVERED:
                self.banks[tracked.bank].submit(tracked.routed)

        bank_results = {
            name: bank.arbitrate(cycle) for name, bank in self.banks.items()
        }

        # Merge bank grants back into fabric-level results.
        results: dict[str, MemResult] = {}
        consumed: set[tuple[str, str]] = set()
        for key in sorted(
            (k for k, t in self._tracked.items()
             if t.state is _State.DELIVERED),
            key=lambda k: self._tracked[k].original.sort_key,
        ):
            tracked = self._tracked[key]
            slot = (tracked.bank, tracked.routed.client)
            if slot in consumed:
                continue
            result = bank_results[tracked.bank].get(tracked.routed.client)
            if result is None or not result.granted:
                continue
            consumed.add(slot)
            results[tracked.original.client] = result
            self.bank_stats[tracked.bank].granted += 1
            if tracked.managed:
                if tracked.original.write:
                    self.router.on_write_granted(
                        tracked.original.dep_id, cycle
                    )
                else:
                    self.router.on_read_granted(
                        tracked.original.dep_id, cycle
                    )
            del self._tracked[key]
        return results

    # -- quiescence (fast-kernel wake contract) -----------------------------------------

    def next_wake(self, cycle: int):
        """Earliest future cycle the fabric pipeline can move.

        * a *gated* managed request accrues ``gated_cycles`` every
          asserted cycle, so gating is never skippable;
        * *in-flight* requests wake when the crossbar can deliver;
        * an in-flight arm notification wakes the router at arrival;
        * *delivered* requests defer to their banks' own wake rules
          (bank state only moves on grants).
        """
        wakes = []
        notification = self.router.next_notification(cycle)
        if notification is not None:
            wakes.append(notification)
        in_flight = False
        delivered = False
        for tracked in self._tracked.values():
            if tracked.state is _State.GATED:
                return cycle + 1
            if tracked.state is _State.IN_FLIGHT:
                in_flight = True
            elif tracked.state is _State.DELIVERED:
                delivered = True
        if in_flight:
            ready = self.crossbar.next_ready(cycle)
            if ready is not None:
                wakes.append(ready)
        if delivered:
            for bank in self.banks.values():
                wake = bank.next_wake(cycle)
                if wake is not None:
                    wakes.append(wake)
        return min(wakes) if wakes else None

    def note_idle_cycles(self, cycle: int) -> None:
        """Catch the fabric's and every bank's cycle register up after a
        skip (each bank's ``arbitrate`` would have tracked it)."""
        super().note_idle_cycles(cycle)
        for bank in self.banks.values():
            bank.note_idle_cycles(cycle)

    # -- wait attribution (profiler seam) ------------------------------------------------

    def classify_wait(self, request: MemRequest) -> tuple[str, str, str]:
        """Attribute a fabric-blocked cycle to its pipeline stage:
        router-gated at ingress → ``guard-stall``, in the crossbar →
        ``crossbar-transit``, delivered → whatever the owning bank's own
        rules say (so the site label is the *bank*, not the fabric)."""
        tracked = self._tracked.get(request.key)
        if tracked is None:
            return ("arbitration-loss", self.bram.name, request.port)
        if tracked.state is _State.GATED:
            return ("guard-stall", self.bram.name, request.port)
        if tracked.state is _State.IN_FLIGHT:
            return ("crossbar-transit", self.bram.name, request.port)
        return self.banks[tracked.bank].classify_wait(tracked.routed)

    # -- watchdog recovery -------------------------------------------------------------

    def force_unblock(self, request: MemRequest, cycle: int) -> bool:
        self.classify_epoch += 1
        tracked = self._tracked.get(request.key)
        if tracked is not None and tracked.managed:
            if request.write:
                return self.router.force_drain(request.dep_id)
            return self.router.force_arm(request.dep_id)
        if tracked is not None and tracked.state is _State.DELIVERED:
            return self.banks[tracked.bank].force_unblock(
                tracked.routed, cycle
            )
        # Not yet delivered (or untracked): aim at the owning bank.
        bank = self.policy.bank_name(self.policy.bank_for(request.address))
        routed = replace(
            request, address=self.policy.local_address(request.address)
        )
        return self.banks[bank].force_unblock(routed, cycle)

    # -- reporting ---------------------------------------------------------------------

    def fabric_stats(self) -> dict:
        """Structured activity summary for telemetry, the CLI, and examples."""
        return {
            "banks": {
                name: {
                    "routed": stats.routed,
                    "granted": stats.granted,
                    "bank_grants": len(self.banks[name].latency_samples),
                    "queue_occupancy": self.crossbar.occupancy(
                        self.bank_names.index(name)
                    ),
                }
                for name, stats in self.bank_stats.items()
            },
            "crossbar": {
                "forwarded": self.crossbar.stats.forwarded,
                "delivered": self.crossbar.stats.delivered,
                "queue_wait_cycles": self.crossbar.stats.queue_wait_cycles,
                "queued_peak": self.crossbar.stats.queued_peak,
            },
            "router": {
                "entries": len(self.router),
                "writes_routed": self.router.stats.writes_routed,
                "reads_routed": self.router.stats.reads_routed,
                "notifications_sent": self.router.stats.notifications_sent,
                "notifications_applied": (
                    self.router.stats.notifications_applied
                ),
                "gated_cycles": self.router.stats.gated_cycles,
            },
        }

    def reset(self) -> None:
        super().reset()
        for bank in self.banks.values():
            bank.reset()
        self.crossbar.reset()
        self.router.reset()
        self._tracked.clear()
        self.bank_stats = {name: FabricBankStats() for name in self.banks}


def build_fabric(
    organization: Organization | dict[str, Organization],
    plan: FabricPlan,
) -> MemoryFabric:
    """Instantiate bank controllers, router, and crossbar from a plan.

    ``organization`` may be a single organization for every bank or a
    mapping ``bank name -> organization`` for a mixed fabric.
    """
    config = plan.config
    if isinstance(organization, Organization):
        per_bank = {name: organization for name in plan.bank_names}
    else:
        per_bank = dict(organization)
        missing = [n for n in plan.bank_names if n not in per_bank]
        if missing:
            raise ValueError(f"no organization given for banks {missing}")

    banks: dict[str, MemoryController] = {}
    for name in plan.bank_names:
        bram = BlockRam(name)
        deps = plan.native_dep_groups[name]
        # Controllers mutate guard counters; never share the plan's copy.
        deplist = plan.bank_deplists[name].clone()
        org = per_bank[name]
        if org is Organization.ARBITRATED:
            consumers = sorted(
                {t for dep in deps for t in dep.consumer_threads()}
            )
            producers = sorted({dep.producer_thread for dep in deps})
            banks[name] = ArbitratedController(
                bram, deplist, consumers or ["-"], producers or ["-"]
            )
        elif org is Organization.EVENT_DRIVEN:
            banks[name] = EventDrivenController(bram, deps)
        else:
            clients = sorted(
                {dep.producer_thread for dep in deps}
                | {t for dep in deps for t in dep.consumer_threads()}
            )
            banks[name] = LockBaselineController(
                bram, deplist, clients or ["-"]
            )

    router = DependencyRouter(notify_latency=max(1, config.link_latency))
    for template in plan.routed_deps:
        router.add(
            replace(template, outstanding=0, reserved=0, arm_in_flight=False)
        )
    crossbar = Crossbar(
        num_banks=config.num_banks,
        link_latency=config.link_latency,
        batch_size=config.batch_size,
    )
    return MemoryFabric(banks, plan.policy, router, crossbar, config)
