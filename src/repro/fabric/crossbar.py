"""Cycle-accurate crossbar interconnect between fabric ingress and banks.

Models the interconnect a multi-bank fabric would synthesize: per-bank
output queues fed by the ingress router, a configurable link latency (the
pipeline registers a request crosses between ingress and a bank), and
round-robin output arbitration — each bank accepts up to ``batch_size``
requests per cycle, picked round-robin over requesting clients so no
client starves at a hot bank.

The model is deterministic: queue order is insertion order, eligibility is
``enqueue_cycle + link_latency <= now``, and the per-bank round-robin
pointer advances exactly as the RTL arbiter macro would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.controller import MemRequest


@dataclass
class _InFlight:
    """One request travelling through the crossbar to a bank."""

    request: MemRequest
    enqueue_cycle: int

    def ready_at(self, link_latency: int) -> int:
        return self.enqueue_cycle + link_latency


@dataclass
class CrossbarStats:
    """Aggregate crossbar behaviour for reports and telemetry."""

    forwarded: int = 0
    delivered: int = 0
    #: cycles requests spent queued beyond the pure link latency
    queue_wait_cycles: int = 0
    #: worst simultaneous occupancy of any single bank queue
    queued_peak: int = 0
    per_bank_delivered: dict[int, int] = field(default_factory=dict)


class Crossbar:
    """N-output crossbar with batched, round-robin output arbitration."""

    def __init__(
        self,
        num_banks: int,
        link_latency: int = 1,
        batch_size: int = 1,
    ):
        if num_banks <= 0:
            raise ValueError("crossbar needs at least one output bank")
        if link_latency < 0:
            raise ValueError("link latency cannot be negative")
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.num_banks = num_banks
        self.link_latency = link_latency
        self.batch_size = batch_size
        self._queues: dict[int, list[_InFlight]] = {
            bank: [] for bank in range(num_banks)
        }
        #: per-bank round-robin pointer over client names
        self._rr_last: dict[int, str] = {}
        self.stats = CrossbarStats()

    def push(self, bank: int, request: MemRequest, cycle: int) -> None:
        """Accept a request at fabric ingress, destined for ``bank``."""
        self._queues[bank].append(_InFlight(request, cycle))
        self.stats.forwarded += 1
        occupancy = len(self._queues[bank])
        if occupancy > self.stats.queued_peak:
            self.stats.queued_peak = occupancy

    def occupancy(self, bank: int) -> int:
        return len(self._queues[bank])

    def next_ready(self, cycle: int):
        """Earliest future cycle at which any queued request becomes
        deliverable (fast-kernel wake contract); ``None`` when empty."""
        ready = None
        for queue in self._queues.values():
            for entry in queue:
                at = max(cycle + 1, entry.ready_at(self.link_latency))
                if ready is None or at < ready:
                    ready = at
        return ready

    def deliveries(self, cycle: int) -> dict[int, list[MemRequest]]:
        """Pop up to ``batch_size`` arrived requests per bank.

        Among entries whose link latency has elapsed, clients are served
        round-robin (starting after the last-granted client); within one
        client, queue order is preserved.
        """
        out: dict[int, list[MemRequest]] = {}
        for bank, queue in self._queues.items():
            eligible = [
                entry
                for entry in queue
                if entry.ready_at(self.link_latency) <= cycle
            ]
            if not eligible:
                continue
            picked = self._pick(bank, eligible)
            for entry in picked:
                queue.remove(entry)
                self.stats.delivered += 1
                self.stats.per_bank_delivered[bank] = (
                    self.stats.per_bank_delivered.get(bank, 0) + 1
                )
                waited = cycle - entry.ready_at(self.link_latency)
                self.stats.queue_wait_cycles += waited
            out[bank] = [entry.request for entry in picked]
        return out

    def _pick(self, bank: int, eligible: list[_InFlight]) -> list[_InFlight]:
        """Round-robin over clients, up to the batch size."""
        clients = sorted({e.request.client for e in eligible})
        last = self._rr_last.get(bank)
        if last is not None and last in clients:
            pivot = clients.index(last) + 1
            clients = clients[pivot:] + clients[:pivot]
        elif last is not None:
            # Rotate past the last grantee's position even if absent now.
            after = [c for c in clients if c > last]
            before = [c for c in clients if c <= last]
            clients = after + before

        picked: list[_InFlight] = []
        by_client: dict[str, list[_InFlight]] = {}
        for entry in eligible:
            by_client.setdefault(entry.request.client, []).append(entry)
        while len(picked) < self.batch_size and clients:
            progressed = False
            for client in list(clients):
                bucket = by_client.get(client)
                if bucket:
                    picked.append(bucket.pop(0))
                    self._rr_last[bank] = client
                    progressed = True
                    if len(picked) >= self.batch_size:
                        break
                else:
                    clients.remove(client)
            if not progressed:
                break
        return picked

    def reset(self) -> None:
        for queue in self._queues.values():
            queue.clear()
        self._rr_last.clear()
        self.stats = CrossbarStats()
