"""Sharding policies: mapping one logical address space onto N banks.

The paper's controllers each wrap a *single* dual-ported BRAM; the fabric
(see :mod:`repro.fabric.fabric`) composes several of them behind one
logical address space of ``num_banks * WORDS_PER_BRAM`` words.  A sharding
policy is the pure address arithmetic of that composition — which physical
bank serves a logical word, and at which bank-local address:

* **interleaved** — ``bank = addr % N``, ``local = addr // N``: consecutive
  words round-robin across banks, spreading any access stream evenly (the
  classic low-order interleave);
* **range** — ``bank = addr // 512``, ``local = addr % 512``: each bank
  owns a contiguous slice, preserving locality so one thread's working set
  stays on one bank (the allocator balances threads across slices).

Both are bijections, so ``logical_address(bank_for(a), local_address(a))``
round-trips — the property the fabric's memory view and the tests rely on.
"""

from __future__ import annotations

import abc

from ..memory.allocation import WORDS_PER_BRAM


class ShardingPolicy(abc.ABC):
    """Pure address arithmetic mapping logical words to (bank, local)."""

    name = "abstract"

    def __init__(self, num_banks: int, words_per_bank: int = WORDS_PER_BRAM):
        if num_banks <= 0:
            raise ValueError("a fabric needs at least one bank")
        self.num_banks = num_banks
        self.words_per_bank = words_per_bank

    @property
    def capacity(self) -> int:
        """Logical words addressable through the fabric."""
        return self.num_banks * self.words_per_bank

    def check(self, logical: int) -> None:
        if not 0 <= logical < self.capacity:
            raise ValueError(
                f"logical address {logical} outside the fabric's "
                f"{self.capacity}-word space"
            )

    @abc.abstractmethod
    def bank_for(self, logical: int) -> int:
        """Physical bank index serving ``logical``."""

    @abc.abstractmethod
    def local_address(self, logical: int) -> int:
        """Bank-local word address of ``logical``."""

    @abc.abstractmethod
    def logical_address(self, bank: int, local: int) -> int:
        """Inverse mapping: the logical word at (bank, local)."""

    def bank_name(self, bank: int) -> str:
        return f"bank{bank}"

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_banks} banks x "
            f"{self.words_per_bank} words"
        )


class InterleavedSharding(ShardingPolicy):
    """Low-order interleave: word ``a`` lives on bank ``a % N``."""

    name = "interleaved"

    def bank_for(self, logical: int) -> int:
        self.check(logical)
        return logical % self.num_banks

    def local_address(self, logical: int) -> int:
        self.check(logical)
        return logical // self.num_banks

    def logical_address(self, bank: int, local: int) -> int:
        return local * self.num_banks + bank


class RangeSharding(ShardingPolicy):
    """Contiguous slices: bank ``a // words_per_bank`` owns word ``a``."""

    name = "range"

    def bank_for(self, logical: int) -> int:
        self.check(logical)
        return logical // self.words_per_bank

    def local_address(self, logical: int) -> int:
        self.check(logical)
        return logical % self.words_per_bank

    def logical_address(self, bank: int, local: int) -> int:
        return bank * self.words_per_bank + local


#: Registry consumed by the CLI's ``--shard-policy`` flag.
POLICIES = {
    InterleavedSharding.name: InterleavedSharding,
    RangeSharding.name: RangeSharding,
}


def make_policy(
    name: str, num_banks: int, words_per_bank: int = WORDS_PER_BRAM
) -> ShardingPolicy:
    """Instantiate a sharding policy by name (``interleaved`` / ``range``)."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown sharding policy {name!r} "
            f"(expected one of {sorted(POLICIES)})"
        ) from None
    return cls(num_banks, words_per_bank)
