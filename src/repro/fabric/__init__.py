"""Sharded multi-bank memory fabric (crossbar + cross-bank dependency routing).

The paper's wrappers each manage one dual-ported BRAM.  This package scales
that design out: N bank controllers — any mix of the §3.1 arbitrated, §3.2
event-driven, and lock-baseline organizations — compose behind one logical
address space, connected by a cycle-accurate crossbar, with dependency
guards that still honour the §3.1 protocol even when a guard entry and its
guarded data land on different banks.
"""

from .crossbar import Crossbar, CrossbarStats
from .fabric import (
    DEP_HOME_POLICIES,
    FabricConfig,
    FabricMemoryView,
    FabricPlan,
    MemoryFabric,
    build_fabric,
    plan_fabric,
)
from .router import DependencyRouter, RoutedDependency, RouterStats
from .sharding import (
    POLICIES,
    InterleavedSharding,
    RangeSharding,
    ShardingPolicy,
    make_policy,
)

__all__ = [
    "Crossbar",
    "CrossbarStats",
    "DEP_HOME_POLICIES",
    "DependencyRouter",
    "FabricConfig",
    "FabricMemoryView",
    "FabricPlan",
    "InterleavedSharding",
    "MemoryFabric",
    "POLICIES",
    "RangeSharding",
    "RoutedDependency",
    "RouterStats",
    "ShardingPolicy",
    "build_fabric",
    "make_policy",
    "plan_fabric",
]
