"""Cross-bank dependency routing: §3.1 guard semantics across banks.

On a single BRAM, the dependency list and the guarded data share a wrapper,
so arming (producer write) and disarming (consumer reads) are local.  On a
sharded fabric the guard *entry* may be homed on a different bank than the
guarded *data* — the issue the paper's per-BRAM construction cannot see.
This router owns exactly those entries and keeps the §3.1 protocol intact
across the crossbar:

* a producer write is **held at fabric ingress** until the previous
  produce-consume cycle has fully completed (no outstanding or in-flight
  reads, no arm notification still travelling), then routed to the data
  bank as a plain access;
* when the write is granted at the data bank, an **arm notification** is
  forwarded to the home bank — it arrives ``notify_latency`` cycles later,
  and only then may consumer reads release;
* consumer reads are held at ingress until armed, reserve one of the
  ``dn`` grants on release (so at most ``dn`` reads ever travel), and
  decrement the entry when the data bank grants them.

Every transition is appended to an event log, so a test can assert the
acceptance property directly: *no read ever releases before the producer
write that armed it was granted* (see :meth:`DependencyRouter.verify_guard_ordering`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RoutedDependency:
    """One cross-bank guard entry owned by the router.

    Static configuration mirrors :class:`repro.memory.deplist.DependencyEntry`;
    ``home_bank`` is the bank holding the entry (notification target),
    ``data_bank`` the bank holding the guarded word.
    """

    dep_id: str
    dependency_number: int
    logical_address: int
    home_bank: int
    data_bank: int
    producer_thread: str
    consumer_threads: tuple[str, ...]

    #: armed reads remaining (decremented when the data bank grants a read)
    outstanding: int = 0
    #: reads released into the crossbar but not yet granted
    reserved: int = 0
    #: an arm notification is still travelling to the home bank
    arm_in_flight: bool = False

    def reset(self) -> None:
        self.outstanding = 0
        self.reserved = 0
        self.arm_in_flight = False

    @property
    def counter_bits(self) -> int:
        return max(1, self.dependency_number.bit_length())


@dataclass
class RouterStats:
    """Router activity counters for telemetry."""

    writes_routed: int = 0
    reads_routed: int = 0
    notifications_sent: int = 0
    notifications_applied: int = 0
    #: ingress cycles spent holding gated requests
    gated_cycles: int = 0


@dataclass
class _Notification:
    dep_id: str
    arrival_cycle: int


class DependencyRouter:
    """Runtime guard state for dependencies whose home and data banks differ."""

    def __init__(self, notify_latency: int = 1):
        if notify_latency < 0:
            raise ValueError("notification latency cannot be negative")
        self.notify_latency = notify_latency
        self.entries: dict[str, RoutedDependency] = {}
        self._in_flight: list[_Notification] = []
        self.stats = RouterStats()
        #: chronological (kind, dep_id, cycle) log; kinds are
        #: write-released / write-granted / arm-applied / read-released /
        #: read-granted
        self.events: list[tuple[str, str, int]] = []

    def add(self, entry: RoutedDependency) -> None:
        self.entries[entry.dep_id] = entry

    def manages(self, dep_id: str | None) -> bool:
        return dep_id is not None and dep_id in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    # -- ingress gating (checked every cycle a request is held) -----------------

    def write_release_allowed(self, dep_id: str) -> bool:
        """May the producer's write enter the crossbar now?  Only once the
        previous cycle is fully drained: counter at zero, no reads still
        travelling, no arm notification in flight."""
        entry = self.entries[dep_id]
        return (
            entry.outstanding == 0
            and entry.reserved == 0
            and not entry.arm_in_flight
        )

    def read_release_allowed(self, dep_id: str) -> bool:
        """May a consumer read enter the crossbar now?  Only against grants
        already armed and not yet spoken for by a travelling read."""
        entry = self.entries[dep_id]
        return entry.outstanding - entry.reserved > 0

    def note_gated(self, cycle: int) -> None:
        self.stats.gated_cycles += 1

    # -- transitions -------------------------------------------------------------

    def on_write_released(self, dep_id: str, cycle: int) -> None:
        self.stats.writes_routed += 1
        self.events.append(("write-released", dep_id, cycle))

    def on_read_released(self, dep_id: str, cycle: int) -> None:
        entry = self.entries[dep_id]
        entry.reserved += 1
        self.stats.reads_routed += 1
        self.events.append(("read-released", dep_id, cycle))

    def on_write_granted(self, dep_id: str, cycle: int) -> None:
        """The data bank performed the write: forward the arm notification
        to the home bank (arrives after the notification latency)."""
        entry = self.entries[dep_id]
        entry.arm_in_flight = True
        self._in_flight.append(
            _Notification(dep_id, cycle + self.notify_latency)
        )
        self.stats.notifications_sent += 1
        self.events.append(("write-granted", dep_id, cycle))

    def on_read_granted(self, dep_id: str, cycle: int) -> None:
        entry = self.entries[dep_id]
        entry.reserved = max(0, entry.reserved - 1)
        entry.outstanding = max(0, entry.outstanding - 1)
        self.events.append(("read-granted", dep_id, cycle))

    def next_notification(self, cycle: int):
        """Earliest future cycle an in-flight arm notification lands
        (fast-kernel wake contract); ``None`` when nothing is travelling."""
        if not self._in_flight:
            return None
        return max(
            cycle + 1, min(n.arrival_cycle for n in self._in_flight)
        )

    def tick(self, cycle: int) -> list[str]:
        """Apply arm notifications that have reached their home bank."""
        arrived = [n for n in self._in_flight if n.arrival_cycle <= cycle]
        if not arrived:
            return []
        self._in_flight = [
            n for n in self._in_flight if n.arrival_cycle > cycle
        ]
        applied = []
        for notification in arrived:
            entry = self.entries[notification.dep_id]
            entry.outstanding = entry.dependency_number
            entry.arm_in_flight = False
            self.stats.notifications_applied += 1
            self.events.append(("arm-applied", notification.dep_id, cycle))
            applied.append(notification.dep_id)
        return applied

    # -- watchdog seam -----------------------------------------------------------

    def force_arm(self, dep_id: str) -> bool:
        """Break-dependency recovery for a read stuck at ingress: arm the
        entry with one grant (the data is whatever the bank holds)."""
        entry = self.entries.get(dep_id)
        if entry is None or entry.outstanding - entry.reserved > 0:
            return False
        entry.outstanding += 1
        return True

    def force_drain(self, dep_id: str) -> bool:
        """Recovery for a write stuck at ingress: drop unconsumed grants."""
        entry = self.entries.get(dep_id)
        if entry is None:
            return False
        had_state = (
            entry.outstanding > 0 or entry.reserved > 0 or entry.arm_in_flight
        )
        entry.outstanding = 0
        entry.reserved = 0
        entry.arm_in_flight = False
        self._in_flight = [
            n for n in self._in_flight if n.dep_id != dep_id
        ]
        return had_state

    # -- the acceptance property ---------------------------------------------------

    def verify_guard_ordering(self) -> list[str]:
        """Check the event log for guard violations.

        Returns a list of violation descriptions (empty = the §3.1
        property held): every read release must be covered by arming that
        itself follows a granted producer write, and at most ``dn`` reads
        may release per arming.
        """
        violations: list[str] = []
        budget: dict[str, int] = {dep: 0 for dep in self.entries}
        writes_granted: dict[str, int] = {dep: 0 for dep in self.entries}
        arms: dict[str, int] = {dep: 0 for dep in self.entries}
        for kind, dep_id, cycle in self.events:
            if kind == "write-granted":
                writes_granted[dep_id] += 1
            elif kind == "arm-applied":
                arms[dep_id] += 1
                if arms[dep_id] > writes_granted[dep_id]:
                    violations.append(
                        f"{dep_id}: armed at cycle {cycle} without a "
                        "granted producer write"
                    )
                budget[dep_id] += self.entries[dep_id].dependency_number
            elif kind == "read-released":
                if budget[dep_id] <= 0:
                    violations.append(
                        f"{dep_id}: read released at cycle {cycle} before "
                        "the producer write armed the guard"
                    )
                else:
                    budget[dep_id] -= 1
        return violations

    def reset(self) -> None:
        for entry in self.entries.values():
            entry.reset()
        self._in_flight.clear()
        self.stats = RouterStats()
        self.events.clear()
