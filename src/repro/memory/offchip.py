"""Off-chip memory model.

Section 2: the logical global shared memory "is then mapped on to a
physically distributed on- and off-chip memory organization as is found on
FPGAs".  The paper's evaluation stays on-chip, but the mapping substrate
needs the off-chip tier for data that cannot fit a BRAM: this module
models a ZBT-SRAM-class external memory — large, single-ported, with a
fixed multi-cycle access latency — plus the simple in-order controller
that serializes thread accesses to it.

Synchronized (guarded) variables must stay in BRAM: the paper's wrappers
are BRAM port logic.  The allocator enforces that; off-chip placements are
for bulk private data (large tables, buffers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.controller import MemRequest, MemResult, MemoryController

#: Default access latency of the external memory, in fabric cycles.
#: ZBT SRAM behind an FPGA pin interface at ~125 MHz: a handful of cycles
#: for address-out / wave-pipelined data-back.
DEFAULT_LATENCY = 4

#: Default capacity in 36-bit words (2 MB-class part).
DEFAULT_DEPTH = 512 * 1024


@dataclass
class OffchipMemory:
    """Storage model of one external SRAM bank (BlockRam-compatible API)."""

    name: str
    depth: int = DEFAULT_DEPTH
    width: int = 36
    _words: dict[int, int] = field(default_factory=dict, repr=False)

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.depth:
            raise IndexError(
                f"address {address} out of range for {self.name} "
                f"(depth {self.depth})"
            )

    def read(self, address: int, cycle: int = 0, port: str = "X") -> int:
        self._check_address(address)
        return self._words.get(address, 0)

    def write(self, address: int, data: int, cycle: int = 0, port: str = "X") -> None:
        self._check_address(address)
        self._words[address] = data & self.mask

    def peek(self, address: int) -> int:
        self._check_address(address)
        return self._words.get(address, 0)


class OffchipController(MemoryController):
    """In-order single-port controller for an external memory bank.

    One transaction at a time; each occupies the port for ``latency``
    cycles from acceptance to grant.  Waiting requesters are served in
    client-name order (a fixed-priority pin mux — adequate for private
    data, where fairness is a non-issue).
    """

    def __init__(self, memory: OffchipMemory, latency: int = DEFAULT_LATENCY):
        super().__init__(memory)  # type: ignore[arg-type]
        if latency < 1:
            raise ValueError("latency must be at least one cycle")
        self.latency = latency
        self._current: Optional[MemRequest] = None
        self._finish_cycle = 0

    def _arbitrate_cycle(
        self, requests: list[MemRequest], cycle: int
    ) -> dict[str, MemResult]:
        results: dict[str, MemResult] = {}
        if self._current is None and requests:
            self._current = min(requests, key=lambda r: (r.client, r.port))
            self._finish_cycle = cycle + self.latency - 1
        if self._current is not None and cycle >= self._finish_cycle:
            # The transaction completes only if the owner is still asking
            # (it always is: a stalled FSM state keeps its request lines up).
            still_pending = any(
                r.key == self._current.key for r in requests
            )
            if still_pending:
                results[self._current.client] = self._perform(self._current)
                self._current = None
        return results

    # -- wait attribution (profiler seam) ----------------------------------------------

    def classify_wait(self, request: MemRequest) -> tuple[str, str, str]:
        """Every blocked cycle at the external tier is latency: either
        the request owns the in-flight multi-cycle transaction or it is
        serialized behind one on the single port."""
        return ("offchip-latency", self.bram.name, request.port)

    # -- quiescence (fast-kernel wake contract) ---------------------------------------

    def next_wake(self, cycle: int):
        """Wake when the in-flight transaction can complete, or next
        cycle if a blocked request could be accepted onto the free port."""
        if self._current is not None:
            return max(cycle + 1, self._finish_cycle)
        if self.blocked:
            return cycle + 1
        return None

    def reset(self) -> None:
        super().reset()
        self._current = None
        self._finish_cycle = 0
