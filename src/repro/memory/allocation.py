"""Memory allocation: mapping hic variables onto BRAMs.

Section 3 of the paper: "the memory allocation process takes into account
available physical memory size (eg: BRAM size of 18 Kb) and number of ports
(eg: dual ports on each BRAM)" and is guided by the memory access graph and
a partial order of operations.  The mapping algorithm itself is explicitly
*not* the paper's focus, so this module implements a straightforward,
deterministic allocator with the properties the controllers need:

* every **shared** variable (a dependency endpoint) is BRAM-resident — the
  whole point of the paper is guarding those BRAM addresses;
* arrays and ``message`` variables are BRAM-resident (too big for fabric
  registers);
* small private scalars stay in fabric **registers** (the FSM datapath);
* BRAM packing is first-fit decreasing by size, with an affinity preference
  that tries to co-locate variables touched by the same threads;
* variables wider than one BRAM word span consecutive words.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..analysis.memgraph import MemoryAccessGraph
from ..hic.pragmas import Dependency
from ..hic.semantic import CheckedProgram, Symbol, SymbolKind
from ..hic.types import MESSAGE_FIELDS, MessageType
from .bram import BRAM_BITS


class Residency(enum.Enum):
    """Where a variable's storage lives."""

    REGISTER = "register"
    BRAM = "bram"
    OFFCHIP = "offchip"


#: Scalars at or below this width may stay in fabric registers when private.
REGISTER_WIDTH_LIMIT = 36

#: Word width used for BRAM packing (512x36 aspect ratio).
WORD_WIDTH = 36

#: Words available per BRAM at the packing width.
WORDS_PER_BRAM = BRAM_BITS // WORD_WIDTH  # 512


@dataclass(frozen=True)
class Placement:
    """The physical location of one variable."""

    thread: str
    variable: str
    residency: Residency
    bram: str = ""
    base_address: int = 0
    words: int = 0
    bits: int = 0

    @property
    def is_bram(self) -> bool:
        return self.residency is Residency.BRAM

    @property
    def is_memory(self) -> bool:
        """BRAM- or off-chip-resident (accessed through a controller)."""
        return self.residency in (Residency.BRAM, Residency.OFFCHIP)


@dataclass
class MemoryMap:
    """The complete allocation result."""

    placements: dict[tuple[str, str], Placement] = field(default_factory=dict)
    bram_names: list[str] = field(default_factory=list)
    #: words used per BRAM, for utilization reports
    bram_fill: dict[str, int] = field(default_factory=dict)
    #: off-chip banks used (empty unless something spilled)
    offchip_names: list[str] = field(default_factory=list)
    offchip_fill: dict[str, int] = field(default_factory=dict)
    #: FIFO-lowered channel storages (``fifo_<dep_id>``), one per channel
    #: classified FIFO by :mod:`repro.analysis.channels`.  Deliberately
    #: *not* part of ``bram_names``: channels are not packed address
    #: spaces — each holds exactly its channel's ring buffer.
    fifo_names: list[str] = field(default_factory=list)
    #: words of value storage per FIFO channel (the ring depth is a
    #: controller/RTL parameter, not an allocation property)
    fifo_fill: dict[str, int] = field(default_factory=dict)
    #: >0 when the map targets a sharded fabric: addresses are *logical*
    #: (one space of ``fabric_banks * WORDS_PER_BRAM`` words) and the
    #: sharding policy decides which physical bank serves each word
    fabric_banks: int = 0
    fabric_policy: str = ""
    #: words resident per physical bank index (range policy only; the
    #: interleaved policy scatters every variable across all banks)
    fabric_bank_fill: dict[int, int] = field(default_factory=dict)

    def placement(self, thread: str, variable: str) -> Placement:
        key = (thread, variable)
        if key not in self.placements:
            raise KeyError(f"no placement for {thread}.{variable}")
        return self.placements[key]

    def is_bram_resident(self, thread: str, variable: str) -> bool:
        key = (thread, variable)
        return key in self.placements and self.placements[key].is_bram

    def bram_variables(self, bram: str) -> list[Placement]:
        return sorted(
            (p for p in self.placements.values() if p.bram == bram),
            key=lambda p: p.base_address,
        )

    def bram_count(self) -> int:
        return len(self.bram_names)

    def register_bits(self) -> int:
        return sum(
            p.bits
            for p in self.placements.values()
            if p.residency is Residency.REGISTER
        )

    def utilization(self, bram: str) -> float:
        capacity = BRAM_BITS * max(1, self.fabric_banks or 1)
        return (self.bram_fill.get(bram, 0) * WORD_WIDTH) / capacity


def words_needed(bits: int) -> int:
    """BRAM words (at the packing width) needed for ``bits`` of storage."""
    return max(1, -(-bits // WORD_WIDTH))


def symbol_words(symbol: Symbol) -> int:
    """BRAM words a symbol occupies, honouring addressable layouts.

    * ``message``: one word per field (field-per-word layout, so field
      accesses are single word reads/writes);
    * arrays: one word per element (elements must fit the 36-bit word);
    * scalars: enough words for the bit width.
    """
    if isinstance(symbol.hic_type, MessageType):
        return len(MESSAGE_FIELDS)
    if symbol.is_array:
        if symbol.hic_type.bit_width > WORD_WIDTH:
            raise ValueError(
                f"array {symbol.name!r}: element width "
                f"{symbol.hic_type.bit_width} exceeds the {WORD_WIDTH}-bit "
                "BRAM word"
            )
        return symbol.array_size
    return words_needed(symbol.storage_bits)


def _decide_residency(
    symbol_bits: int,
    is_array_or_message: bool,
    is_shared: bool,
) -> Residency:
    if is_shared or is_array_or_message or symbol_bits > REGISTER_WIDTH_LIMIT:
        return Residency.BRAM
    return Residency.REGISTER


def _allocation_error(message: str, **payload):
    # Local import: repro.core pulls in this module at package
    # initialization, so a top-level import would be circular.
    from ..core.errors import AllocationError

    return AllocationError(message, **payload)


def allocate(
    checked: CheckedProgram,
    access: MemoryAccessGraph | None = None,
    force_single_bram: bool = False,
    allow_offchip: bool = False,
    fabric_banks: int = 0,
    fabric_policy: str = "interleaved",
    fifo_channels: dict[tuple[str, str], str] | None = None,
) -> MemoryMap:
    """Allocate every storage-owning variable of a checked program.

    Args:
        checked: The semantically checked program.
        access: Optional access graph (reserved for finer-grained affinity
            policies; the current packer uses the owning thread as the
            affinity unit, which matches the graph's dominant structure
            since shared variables are stored with their producer).
        force_single_bram: Place all BRAM-resident data in one BRAM (the
            paper's evaluation measures a *single* BRAM wrapper; this knob
            reproduces that setup).  Raises ``ValueError`` if it cannot fit.
        allow_offchip: Spill variables too large for one BRAM to the
            off-chip tier instead of failing.  Synchronized (produced)
            variables may never spill — the paper's wrappers are BRAM port
            logic.
        fabric_banks: When positive, allocate into the *logical* address
            space of a sharded memory fabric (``fabric_banks`` banks of
            ``WORDS_PER_BRAM`` words behind one crossbar) instead of
            per-BRAM packing.  The map then has a single pseudo-BRAM named
            ``"fabric"`` and the sharding policy decides physical homes.
        fabric_policy: ``"interleaved"`` (word ``addr % banks``) packs one
            sequential cursor; ``"range"`` (bank ``addr // 512``) places
            each thread's affinity group in a preferred bank, balanced by
            weighted access counts from the access graph.
        fifo_channels: ``(producer_thread, producer_var) -> dep_id`` for
            dependencies the channel classifier lowered to plain FIFOs.
            Each such variable is homed in its own channel storage
            (``fifo_<dep_id>``, base address 0) instead of being packed
            into a guarded BRAM — the FSM's guarded ops then target the
            FIFO controller with no synthesis changes.
    """
    # Only produced variables must live in BRAM: they are the guarded
    # addresses.  Consumer-side targets are ordinary thread-local state.
    shared = {
        (dep.producer_thread, dep.producer_var)
        for dep in checked.dependencies
    }
    items: list[tuple[tuple[str, str], int, int, bool]] = []
    for thread_name, scope in sorted(checked.scopes.items()):
        for name, symbol in sorted(scope.symbols.items()):
            if symbol.kind in (SymbolKind.SHARED, SymbolKind.CONSTANT):
                continue
            is_big = symbol.is_array or symbol.hic_type.name == "message"
            key = (thread_name, name)
            items.append((key, symbol.storage_bits, symbol_words(symbol), is_big))

    memory_map = MemoryMap()
    bram_items: list[tuple[tuple[str, str], int, int]] = []
    for key, bits, words, is_big in items:
        residency = _decide_residency(bits, is_big, key in shared)
        if residency is Residency.REGISTER:
            memory_map.placements[key] = Placement(
                thread=key[0],
                variable=key[1],
                residency=Residency.REGISTER,
                bits=bits,
            )
        else:
            bram_items.append((key, bits, words))

    if fifo_channels:
        if fabric_banks > 0:
            raise ValueError(
                "FIFO channel lowering is incompatible with a sharded "
                "fabric (use channel_synthesis='guarded' with num_banks)"
            )
        remaining: list[tuple[tuple[str, str], int, int]] = []
        for key, bits, words in bram_items:
            dep_id = fifo_channels.get(key)
            if dep_id is None:
                remaining.append((key, bits, words))
                continue
            name = f"fifo_{dep_id}"
            memory_map.placements[key] = Placement(
                thread=key[0],
                variable=key[1],
                residency=Residency.BRAM,
                bram=name,
                base_address=0,
                words=words,
                bits=bits,
            )
            memory_map.fifo_names.append(name)
            memory_map.fifo_fill[name] = words
        bram_items = remaining
        memory_map.fifo_names.sort()

    if fabric_banks > 0:
        if allow_offchip:
            raise ValueError(
                "fabric allocation keeps all data on chip "
                "(allow_offchip is not supported with fabric_banks)"
            )
        _allocate_fabric(
            memory_map, bram_items, fabric_banks, fabric_policy, access
        )
        return memory_map

    # Variables too large for any single BRAM spill to the off-chip tier
    # (when allowed); guarded variables must stay on chip.
    oversize = [item for item in bram_items if item[2] > WORDS_PER_BRAM]
    if oversize and allow_offchip:
        bram_items = [i for i in bram_items if i[2] <= WORDS_PER_BRAM]
        bank = "offchip0"
        memory_map.offchip_names.append(bank)
        cursor = 0
        for key, bits, need in sorted(oversize, key=lambda i: i[0]):
            if key in shared:
                raise _allocation_error(
                    f"produced variable {key[0]}.{key[1]} is too large for a "
                    "BRAM and cannot spill off chip (guards are BRAM logic)",
                    variable=key[1],
                    thread=key[0],
                    words_needed=need,
                    words_available=WORDS_PER_BRAM,
                )
            memory_map.placements[key] = Placement(
                thread=key[0],
                variable=key[1],
                residency=Residency.OFFCHIP,
                bram=bank,
                base_address=cursor,
                words=need,
                bits=bits,
            )
            cursor += need
        memory_map.offchip_fill[bank] = cursor

    # Affinity-aware packing: the natural affinity unit is the owning
    # thread (shared variables are stored with their producer), so items
    # are grouped per thread and groups packed first-fit decreasing.  A
    # group larger than the remaining space splits item-wise, so packing
    # degrades gracefully to per-item first-fit — BRAM count never exceeds
    # what plain FFD needs for the same items.
    for key, bits, need in bram_items:
        if need > WORDS_PER_BRAM:
            raise _allocation_error(
                f"variable {key[0]}.{key[1]} needs {need} words, "
                f"more than one BRAM holds ({WORDS_PER_BRAM})",
                variable=key[1],
                thread=key[0],
                words_needed=need,
                words_available=WORDS_PER_BRAM,
            )

    groups: dict[str, list[tuple[tuple[str, str], int, int]]] = {}
    for item in sorted(bram_items, key=lambda i: (-i[2], i[0])):
        groups.setdefault(item[0][0], []).append(item)
    ordered_groups = sorted(
        groups.values(),
        key=lambda items: (-sum(i[2] for i in items), items[0][0]),
    )

    bram_fill: list[int] = []  # words used per open BRAM

    def place(item, bram_idx: int) -> None:
        key, bits, need = item
        memory_map.placements[key] = Placement(
            thread=key[0],
            variable=key[1],
            residency=Residency.BRAM,
            bram=f"bram{bram_idx}",
            base_address=bram_fill[bram_idx],
            words=need,
            bits=bits,
        )
        bram_fill[bram_idx] += need

    for group in ordered_groups:
        total = sum(need for __, __b, need in group)
        target = None
        if total <= WORDS_PER_BRAM:
            for idx, fill in enumerate(bram_fill):
                if fill + total <= WORDS_PER_BRAM:
                    target = idx
                    break
            if target is None:
                bram_fill.append(0)
                target = len(bram_fill) - 1
            for item in group:
                place(item, target)
        else:
            # Oversized group: split item-wise, first-fit.
            for item in group:
                __, __b, need = item
                target = None
                for idx, fill in enumerate(bram_fill):
                    if fill + need <= WORDS_PER_BRAM:
                        target = idx
                        break
                if target is None:
                    bram_fill.append(0)
                    target = len(bram_fill) - 1
                place(item, target)

    if force_single_bram and len(bram_fill) > 1:
        raise _allocation_error(
            "force_single_bram: does not fit in one BRAM "
            f"({len(bram_fill)} needed)",
            words_needed=sum(bram_fill),
            words_available=WORDS_PER_BRAM,
        )
    for idx, fill in enumerate(bram_fill):
        name = f"bram{idx}"
        memory_map.bram_names.append(name)
        memory_map.bram_fill[name] = fill

    return memory_map


#: Name of the pseudo-BRAM representing a fabric's logical address space.
FABRIC_BRAM = "fabric"


def _allocate_fabric(
    memory_map: MemoryMap,
    bram_items: list[tuple[tuple[str, str], int, int]],
    fabric_banks: int,
    fabric_policy: str,
    access: MemoryAccessGraph | None,
) -> None:
    """Pack BRAM-resident items into a fabric's logical address space.

    Keeps the single-BRAM packer's deterministic ordering (first-fit
    decreasing over per-thread affinity groups) but places into one logical
    space of ``fabric_banks * WORDS_PER_BRAM`` words.  Under the ``range``
    policy each group lands in a preferred physical bank (balanced by the
    access graph); under ``interleaved`` a single cursor suffices because
    consecutive words scatter across banks by construction.
    """
    if fabric_policy not in ("interleaved", "range"):
        raise ValueError(
            f"unknown fabric sharding policy {fabric_policy!r} "
            "(expected 'interleaved' or 'range')"
        )
    capacity = fabric_banks * WORDS_PER_BRAM
    for key, bits, need in bram_items:
        if need > WORDS_PER_BRAM:
            raise _allocation_error(
                f"variable {key[0]}.{key[1]} needs {need} words, "
                f"more than one bank holds ({WORDS_PER_BRAM})",
                variable=key[1],
                thread=key[0],
                words_needed=need,
                words_available=WORDS_PER_BRAM,
            )
    total_need = sum(need for __, __b, need in bram_items)
    if total_need > capacity:
        raise _allocation_error(
            f"program needs {total_need} words but a {fabric_banks}-bank "
            f"fabric holds {capacity}",
            words_needed=total_need,
            words_available=capacity,
        )

    groups: dict[str, list[tuple[tuple[str, str], int, int]]] = {}
    for item in sorted(bram_items, key=lambda i: (-i[2], i[0])):
        groups.setdefault(item[0][0], []).append(item)
    ordered_groups = sorted(
        groups.values(),
        key=lambda items: (-sum(i[2] for i in items), items[0][0]),
    )

    def place(key, bits, need, base: int) -> None:
        memory_map.placements[key] = Placement(
            thread=key[0],
            variable=key[1],
            residency=Residency.BRAM,
            bram=FABRIC_BRAM,
            base_address=base,
            words=need,
            bits=bits,
        )

    bank_fill = {bank: 0 for bank in range(fabric_banks)}
    if fabric_policy == "interleaved":
        cursor = 0
        for group in ordered_groups:
            for key, bits, need in group:
                place(key, bits, need, cursor)
                cursor += need
        used = cursor
        for offset in range(used):
            bank_fill[offset % fabric_banks] += 1
    else:  # range: bank = logical // WORDS_PER_BRAM
        if access is not None:
            from ..analysis.memgraph import partition_threads_across_banks

            preferred = partition_threads_across_banks(access, fabric_banks)
        else:
            preferred = {}
        next_bank = 0
        for group in ordered_groups:
            thread = group[0][0][0]
            total = sum(need for __, __b, need in group)
            want = preferred.get(thread)
            if want is None:
                want = next_bank % fabric_banks
                next_bank += 1
            candidates = [want] + [
                b for b in range(fabric_banks) if b != want
            ]
            target = next(
                (
                    b
                    for b in candidates
                    if bank_fill[b] + total <= WORDS_PER_BRAM
                ),
                None,
            )
            if target is not None:
                for key, bits, need in group:
                    base = target * WORDS_PER_BRAM + bank_fill[target]
                    place(key, bits, need, base)
                    bank_fill[target] += need
            else:
                # Oversized group: split item-wise, first-fit over banks.
                for key, bits, need in group:
                    target = next(
                        (
                            b
                            for b in candidates
                            if bank_fill[b] + need <= WORDS_PER_BRAM
                        ),
                        None,
                    )
                    if target is None:
                        raise _allocation_error(
                            f"variable {key[0]}.{key[1]} fits no bank of the "
                            f"{fabric_banks}-bank fabric (range policy "
                            "fragmentation)",
                            variable=key[1],
                            thread=key[0],
                            words_needed=need,
                            words_available=max(
                                WORDS_PER_BRAM - fill
                                for fill in bank_fill.values()
                            ),
                        )
                    base = target * WORDS_PER_BRAM + bank_fill[target]
                    place(key, bits, need, base)
                    bank_fill[target] += need
        used = sum(bank_fill.values())

    memory_map.bram_names.append(FABRIC_BRAM)
    memory_map.bram_fill[FABRIC_BRAM] = used
    memory_map.fabric_banks = fabric_banks
    memory_map.fabric_policy = fabric_policy
    memory_map.fabric_bank_fill = bank_fill


def dependencies_per_bram(
    memory_map: MemoryMap, dependencies: list[Dependency]
) -> dict[str, list[Dependency]]:
    """Group dependencies by the BRAM holding their produced variable.

    The controllers are generated *per BRAM* ("insert memory dependence
    enforcement on a per-BRAM basis", §3), so each BRAM's wrapper guards
    exactly the dependencies whose producer variable it stores.
    """
    grouping: dict[str, list[Dependency]] = {name: [] for name in memory_map.bram_names}
    for dep in dependencies:
        placement = memory_map.placement(dep.producer_thread, dep.producer_var)
        if not placement.is_bram:
            raise ValueError(
                f"dependency {dep.dep_id!r}: producer variable "
                f"{dep.producer_var!r} must be BRAM-resident"
            )
        grouping[placement.bram].append(dep)
    return grouping
