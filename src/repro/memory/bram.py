"""Model of the Virtex-II Pro on-chip block RAM (BRAM).

The paper's platform (Virtex-II Pro, [4]) provides true dual-ported 18 Kb
block RAMs.  Each port can be configured in one of several aspect ratios;
both the memory allocator and the cycle-accurate simulator use this model.

The behavioural model implements synchronous (registered) reads and writes:
a read issued in cycle *n* delivers data in cycle *n+1*, matching the real
primitive's registered outputs and the paper's single-cycle-access
assumption at the FSM level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Total capacity of one Virtex-II Pro block RAM, in bits (18 Kb).
BRAM_BITS = 18 * 1024

#: Supported (depth, width) aspect ratios of the 18 Kb BRAM primitive.
ASPECT_RATIOS: tuple[tuple[int, int], ...] = (
    (16384, 1),
    (8192, 2),
    (4096, 4),
    (2048, 9),
    (1024, 18),
    (512, 36),
)

#: Number of native ports on a BRAM (true dual port).
NATIVE_PORTS = 2


def aspect_ratio_for_width(data_width: int) -> tuple[int, int]:
    """The narrowest aspect ratio whose width fits ``data_width`` bits.

    Raises ``ValueError`` if the width exceeds the widest port (36 bits) —
    wider data must be split across words by the allocator.
    """
    for depth, width in ASPECT_RATIOS:
        if width >= data_width:
            return depth, width
    raise ValueError(
        f"data width {data_width} exceeds the widest BRAM port (36 bits)"
    )


@dataclass
class PortAccess:
    """One port-level transaction, for tracing and contention accounting."""

    cycle: int
    port: str
    address: int
    write: bool
    data: int


@dataclass
class BlockRam:
    """Behavioural model of one 18 Kb dual-ported BRAM.

    Configured with a depth/width; storage is a dense word list.  The model
    checks the single-write-per-port-per-cycle discipline but leaves
    arbitration to the memory-organization wrappers in :mod:`repro.core`.
    """

    name: str
    depth: int = 512
    width: int = 36
    _words: list[int] = field(default_factory=list, repr=False)
    _trace: list[PortAccess] = field(default_factory=list, repr=False)
    trace_enabled: bool = False

    def __post_init__(self) -> None:
        if self.depth * self.width > BRAM_BITS:
            raise ValueError(
                f"configuration {self.depth}x{self.width} exceeds "
                f"{BRAM_BITS} bits"
            )
        if (self.depth, self.width) not in ASPECT_RATIOS:
            raise ValueError(
                f"unsupported aspect ratio {self.depth}x{self.width}"
            )
        if not self._words:
            self._words = [0] * self.depth

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.depth:
            raise IndexError(
                f"address {address} out of range for {self.name} "
                f"(depth {self.depth})"
            )

    def read(self, address: int, cycle: int = 0, port: str = "A") -> int:
        """Synchronous read: returns the word currently stored."""
        self._check_address(address)
        value = self._words[address]
        if self.trace_enabled:
            self._trace.append(PortAccess(cycle, port, address, False, value))
        return value

    def write(self, address: int, data: int, cycle: int = 0, port: str = "A") -> None:
        """Synchronous write of ``data`` (truncated to the port width)."""
        self._check_address(address)
        self._words[address] = data & self.mask
        if self.trace_enabled:
            self._trace.append(PortAccess(cycle, port, address, True, data & self.mask))

    def peek(self, address: int) -> int:
        """Debug read without trace side effects."""
        self._check_address(address)
        return self._words[address]

    def flip_bit(self, address: int, bit: int) -> int:
        """Fault-injection seam: flip one stored bit (an SEU model — no
        port transaction, no trace entry, exactly as a particle strike
        bypasses the port logic).  Returns the corrupted word."""
        self._check_address(address)
        if not 0 <= bit < self.width:
            raise ValueError(
                f"bit {bit} out of range for {self.width}-bit words"
            )
        self._words[address] ^= 1 << bit
        return self._words[address]

    def snapshot(self) -> tuple[int, ...]:
        """The full memory contents, for golden-trace comparison."""
        return tuple(self._words)

    def load(self, words: list[int]) -> None:
        """Initialize memory contents (configuration-time preload)."""
        if len(words) > self.depth:
            raise ValueError("too many words for this BRAM")
        for i, word in enumerate(words):
            self._words[i] = word & self.mask

    @property
    def trace(self) -> list[PortAccess]:
        return list(self._trace)

    def clear_trace(self) -> None:
        self._trace.clear()

    def utilization(self, used_words: int) -> float:
        """Fraction of the BRAM's bits occupied by ``used_words`` words."""
        return (used_words * self.width) / BRAM_BITS
