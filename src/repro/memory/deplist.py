"""The per-BRAM dependency list of the arbitrated memory organization.

Section 3.1: "the dependency list ... is populated at configuration time
since they are determined at design time using static analysis.  Each entry
in the list has two parts.  The first part contains a dependency number,
which is the number of threads that are dependent on this producer ...  The
second part of the entry is the base address of the data structure in BRAM."

A CAM-like structure compares an incoming address against all entries in
parallel.  This module holds the *static configuration* (built from the
allocation) and the *runtime counters* used by the behavioural controller
model; the RTL generator sizes its CAM and counter bits from the same
object, so area estimation and simulation cannot drift apart.

Granularity note: the guard covers the *base address* of the produced data
structure — "this is the address that consumer threads will provide to
read the data" — so for multi-word data only the base-word transaction is
guarded; follow-on words are plain accesses, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hic.pragmas import Dependency
from .allocation import MemoryMap


@dataclass
class DependencyEntry:
    """One configured entry: a guarded producer address.

    Attributes:
        dep_id: The source dependency identifier (diagnostics only; the
            hardware stores just dn and the address).
        dependency_number: ``dn`` — consumer reads expected per write.
        base_address: The guarded word address in the BRAM.
        producer_thread: Thread allowed to write through port D.
        consumer_threads: Threads allowed to read through port C.
    """

    dep_id: str
    dependency_number: int
    base_address: int
    producer_thread: str
    consumer_threads: tuple[str, ...]

    #: Runtime: outstanding consumer reads before the guard re-arms.
    #: Zero means "no valid data": consumers block, producer may write.
    outstanding: int = 0

    def reset(self) -> None:
        self.outstanding = 0

    @property
    def counter_bits(self) -> int:
        """Bits needed for the outstanding-reads counter."""
        return max(1, (self.dependency_number).bit_length())


@dataclass
class DependencyList:
    """The dependency list attached to one BRAM wrapper."""

    bram: str
    entries: list[DependencyEntry] = field(default_factory=list)
    address_bits: int = 9  # 512-word BRAM
    #: bumped whenever the *configuration* (not the runtime counters)
    #: changes — i.e. on :meth:`corrupt` — so entry-resolution caches
    #: can tell when CAM matches may have moved
    config_version: int = 0

    @classmethod
    def build(
        cls,
        bram: str,
        dependencies: list[Dependency],
        memory_map: MemoryMap,
        address_bits: int = 9,
    ) -> "DependencyList":
        """Populate the list from resolved dependencies (configuration time)."""
        entries = []
        for dep in dependencies:
            placement = memory_map.placement(dep.producer_thread, dep.producer_var)
            if placement.bram != bram:
                raise ValueError(
                    f"dependency {dep.dep_id!r} belongs to BRAM "
                    f"{placement.bram!r}, not {bram!r}"
                )
            entries.append(
                DependencyEntry(
                    dep_id=dep.dep_id,
                    dependency_number=dep.dependency_number,
                    base_address=placement.base_address,
                    producer_thread=dep.producer_thread,
                    consumer_threads=dep.consumer_threads(),
                )
            )
        return cls(bram=bram, entries=entries, address_bits=address_bits)

    def __len__(self) -> int:
        return len(self.entries)

    def reset(self) -> None:
        for entry in self.entries:
            entry.reset()

    def clone(self) -> "DependencyList":
        """A fresh runtime instance of this configuration.

        Controllers mutate their entries' ``outstanding`` counters, so a
        compiled design's deplist must be cloned per simulation — two
        simulations built from one design must not share guard state.
        """
        return DependencyList(
            bram=self.bram,
            entries=[replace(entry, outstanding=0) for entry in self.entries],
            address_bits=self.address_bits,
        )

    # -- the CAM match ------------------------------------------------------------

    def match(self, address: int) -> DependencyEntry | None:
        """CAM lookup: the first entry guarding ``address``, or None.

        Multiple dependencies may guard the same address ("multiple
        producer-consumer dependencies on a single address", §3.1) — use
        :meth:`match_for_write` / :meth:`match_for_read` when the
        requesting thread is known to pick the right one.
        """
        for entry in self.entries:
            if entry.base_address == address:
                return entry
        return None

    def matches(self, address: int) -> list[DependencyEntry]:
        """All entries guarding ``address``."""
        return [e for e in self.entries if e.base_address == address]

    def match_for_write(
        self,
        address: int,
        producer_thread: str,
        dep_id: str | None = None,
    ) -> DependencyEntry | None:
        """The entry a given producer's write arms.

        Per §3.1, each producer carries its own dependency number with the
        write ("we store the associated dependency number in each producer
        thread"), so a tagged write selects its entry directly; untagged
        writes fall back to the writer's identity."""
        candidates = [
            e
            for e in self.matches(address)
            if e.producer_thread == producer_thread
        ]
        if dep_id is not None:
            for entry in candidates:
                if entry.dep_id == dep_id:
                    return entry
            return None
        return candidates[0] if candidates else None

    def match_for_read(
        self,
        address: int,
        consumer_thread: str,
        dep_id: str | None = None,
    ) -> DependencyEntry | None:
        """The entry a given consumer's read draws from: a tagged read
        selects its entry; otherwise the entry listing the reader among
        its consumers (preferring an armed one)."""
        candidates = [
            e
            for e in self.matches(address)
            if consumer_thread in e.consumer_threads
        ]
        if dep_id is not None:
            for entry in candidates:
                if entry.dep_id == dep_id:
                    return entry
            return None
        for entry in candidates:
            if entry.outstanding > 0:
                return entry
        return candidates[0] if candidates else None

    def entry_for(self, dep_id: str) -> DependencyEntry:
        for entry in self.entries:
            if entry.dep_id == dep_id:
                return entry
        raise KeyError(f"no dependency entry {dep_id!r}")

    # -- fault-injection seam -------------------------------------------------------

    def corrupt(
        self,
        dep_id: str,
        *,
        dependency_number: int | None = None,
        base_address: int | None = None,
    ) -> tuple[int, int]:
        """Overwrite one entry's configuration in place (a configuration
        upset: wrong ``dn`` or wrong guarded address).  Returns the
        original ``(dependency_number, base_address)`` pair so an injector
        can report — or undo — the damage."""
        entry = self.entry_for(dep_id)
        original = (entry.dependency_number, entry.base_address)
        if dependency_number is not None:
            entry.dependency_number = max(0, dependency_number)
        if base_address is not None:
            entry.base_address = base_address
        self.config_version += 1
        return original

    # -- the guard protocol (§3.1 access rules) -----------------------------------

    def consumer_read_allowed(
        self,
        address: int,
        consumer_thread: str | None = None,
        dep_id: str | None = None,
    ) -> bool:
        """Port C rule: a read is granted iff the address is guarded with a
        dependency number greater than zero; otherwise it blocks."""
        if consumer_thread is not None:
            entry = self.match_for_read(address, consumer_thread, dep_id)
        else:
            entry = self.match(address)
        if entry is None:
            # Unguarded addresses are not port-C traffic; grant defensively.
            return True
        return entry.outstanding > 0

    def producer_write_allowed(
        self,
        address: int,
        producer_thread: str | None = None,
        dep_id: str | None = None,
    ) -> bool:
        """Port D rule: a write is allowed iff a matching entry exists and
        the previous produce-consume cycle has completed (counter at zero)."""
        if producer_thread is not None:
            entry = self.match_for_write(address, producer_thread, dep_id)
        else:
            entry = self.match(address)
        if entry is None:
            return False
        # With several dependencies guarding one address, a write must also
        # wait for every *other* entry's consumers: the storage location is
        # shared, so an armed sibling entry means unconsumed data that this
        # write would clobber.
        return all(e.outstanding == 0 for e in self.matches(address))

    def note_producer_write(
        self,
        address: int,
        producer_thread: str | None = None,
        dep_id: str | None = None,
    ) -> None:
        """A granted producer write arms the guard: dn consumer reads may
        now proceed."""
        if producer_thread is not None:
            entry = self.match_for_write(address, producer_thread, dep_id)
        else:
            entry = self.match(address)
        if entry is None:
            raise KeyError(f"no dependency entry guards address {address}")
        entry.outstanding = entry.dependency_number

    def note_consumer_read(
        self,
        address: int,
        consumer_thread: str | None = None,
        dep_id: str | None = None,
    ) -> None:
        """A granted consumer read decrements the outstanding count; at zero
        the produce-consume cycle ends and the address is unguarded until
        the next write."""
        if consumer_thread is not None:
            entry = self.match_for_read(address, consumer_thread, dep_id)
        else:
            entry = self.match(address)
        if entry is None:
            raise KeyError(f"no dependency entry guards address {address}")
        if entry.outstanding <= 0:
            # Local import: repro.core pulls in this module at package
            # initialization, so a top-level import would be circular.
            from ..core.errors import GuardViolationError

            raise GuardViolationError(
                f"consumer read at address {address} with no outstanding "
                "produce-consume cycle",
                bram=self.bram,
                client=consumer_thread,
                dep_id=dep_id or entry.dep_id,
            )
        entry.outstanding -= 1

    # -- hardware sizing (consumed by the RTL generator / area model) --------------

    @property
    def counter_bits(self) -> int:
        """Width of the widest per-entry counter."""
        if not self.entries:
            return 1
        return max(entry.counter_bits for entry in self.entries)

    def storage_bits(self) -> int:
        """Flip-flop bits the list occupies: per entry, the base address,
        the outstanding counter, and a valid bit."""
        return sum(
            self.address_bits + entry.counter_bits + 1 for entry in self.entries
        )
