"""On-chip memory subsystem: BRAM model, allocation, dependency lists.

* :mod:`~repro.memory.bram` — the 18 Kb true-dual-port Virtex-II Pro block
  RAM model used by both the allocator and the simulator;
* :mod:`~repro.memory.allocation` — mapping of hic variables onto BRAM
  words and fabric registers;
* :mod:`~repro.memory.deplist` — the per-BRAM dependency list (CAM-matched
  {dependency number, base address} entries) of the arbitrated organization.
"""

from .allocation import (
    REGISTER_WIDTH_LIMIT,
    WORD_WIDTH,
    WORDS_PER_BRAM,
    MemoryMap,
    Placement,
    Residency,
    allocate,
    dependencies_per_bram,
    words_needed,
)
from .bram import (
    ASPECT_RATIOS,
    BRAM_BITS,
    NATIVE_PORTS,
    BlockRam,
    PortAccess,
    aspect_ratio_for_width,
)
from .deplist import DependencyEntry, DependencyList
from .offchip import (
    DEFAULT_DEPTH,
    DEFAULT_LATENCY,
    OffchipController,
    OffchipMemory,
)

__all__ = [
    "REGISTER_WIDTH_LIMIT",
    "WORD_WIDTH",
    "WORDS_PER_BRAM",
    "MemoryMap",
    "Placement",
    "Residency",
    "allocate",
    "dependencies_per_bram",
    "words_needed",
    "ASPECT_RATIOS",
    "BRAM_BITS",
    "NATIVE_PORTS",
    "BlockRam",
    "PortAccess",
    "aspect_ratio_for_width",
    "DependencyEntry",
    "DependencyList",
    "DEFAULT_DEPTH",
    "DEFAULT_LATENCY",
    "OffchipController",
    "OffchipMemory",
]
