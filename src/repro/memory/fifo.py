"""Plain FIFO channel controller for FIFO-classified dependencies.

When :mod:`repro.analysis.channels` proves a dependency is a
single-writer in-order stream, the flow lowers it to this controller
instead of a guarded BRAM wrapper: a BRAM-backed ring buffer with
full/empty handshakes and no dependency CAM.  It implements the same
:class:`~repro.core.controller.MemoryController` cycle protocol as the
§3.1/§3.2 organizations, so executors, kernels (including the event
wheel's ``next_wake`` quiescence contract), telemetry, and the
differential harness treat it like any other memory organization.

Semantics (mirrored exactly by :meth:`next_wake`):

* a **push** (producer write) is grantable iff the channel was not full
  at the start of the cycle;
* a **pop** (consumer read) is grantable iff the channel was not empty
  at the start of the cycle — non-fallthrough, so a value pushed in
  cycle ``t`` is readable in ``t + 1``, matching the guarded
  organizations' one-cycle handoff;
* push and pop may grant in the same cycle (the two BRAM ports).

The controller is also the runtime assertion harness behind the
classification pass: any access that violates the proven channel shape —
a write from a thread other than the producer, a read from a thread
other than the consumer, or an access without the channel's dependency
tag — raises a structured :class:`ChannelProtocolError` instead of
silently corrupting the stream.  Port names are deliberately ignored
(requests key on read/write): the per-organization guarded-port
remapping (C/D -> B or G) must not change FIFO semantics.
"""

from __future__ import annotations

from typing import Optional

from ..core.controller import MemRequest, MemResult, MemoryController
from ..hic.pragmas import Dependency
from .bram import BlockRam

#: Default channel capacity in values.  Deep enough to decouple stage
#: timing, shallow enough that the RTL head/tail counters stay tiny.
DEFAULT_FIFO_DEPTH = 16


def _channel_error(message: str, **payload):
    # Local import: repro.core imports repro.memory at package init.
    from ..core.errors import ChannelProtocolError

    return ChannelProtocolError(message, **payload)


class FifoChannelController(MemoryController):
    """One FIFO-lowered channel behind the MemoryController protocol."""

    def __init__(
        self,
        bram: BlockRam,
        dependency: Dependency,
        depth: int = DEFAULT_FIFO_DEPTH,
    ):
        if dependency.dependency_number != 1:
            raise ValueError(
                f"dependency {dependency.dep_id!r} has "
                f"{dependency.dependency_number} consumers; FIFO channels "
                "are single-consumer"
            )
        if depth < 1:
            raise ValueError("FIFO depth must be positive")
        super().__init__(bram)
        #: telemetry discovery seam (see ``Telemetry._discover_dependencies``)
        self.channel_dependency = dependency
        self.dep_id = dependency.dep_id
        self.producer = dependency.producer_thread
        self.consumer = dependency.consumers[0].thread
        self.depth = depth
        #: monotone push/pop counts; occupancy = tail - head, storage at
        #: ``index % depth`` — deterministic ring layout, so the BRAM
        #: snapshot compares bytewise across simulation kernels
        self.head = 0
        self.tail = 0
        #: in-order verification log: every value pushed / popped, in
        #: grant order.  The property suite asserts the popped sequence
        #: is a prefix of the pushed sequence.
        self.pushed_values: list[int] = []
        self.popped_values: list[int] = []

    # -- invariants --------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self.tail - self.head

    @property
    def full(self) -> bool:
        return self.occupancy >= self.depth

    @property
    def empty(self) -> bool:
        return self.occupancy == 0

    def _check_protocol(self, request: MemRequest, cycle: int) -> None:
        if request.dep_id != self.dep_id:
            raise _channel_error(
                f"access without channel tag (dep {request.dep_id!r}) on "
                f"FIFO channel {self.dep_id!r}",
                bram=self.bram.name,
                client=request.client,
                cycle=cycle,
                dep_id=self.dep_id,
            )
        expected = self.producer if request.write else self.consumer
        if request.client != expected:
            role = "write" if request.write else "read"
            raise _channel_error(
                f"{role} from {request.client!r} on FIFO channel "
                f"{self.dep_id!r} (only {expected!r} may {role})",
                bram=self.bram.name,
                client=request.client,
                cycle=cycle,
                dep_id=self.dep_id,
            )

    # -- cycle protocol ----------------------------------------------------------------

    def _arbitrate_cycle(
        self, requests: list[MemRequest], cycle: int
    ) -> dict[str, MemResult]:
        # Grantability is measured against the occupancy at cycle start:
        # a same-cycle push never feeds a same-cycle pop (non-fallthrough).
        could_pop = not self.empty
        could_push = not self.full
        results: dict[str, MemResult] = {}
        # Pops before pushes: the freed slot is reusable by this cycle's
        # push once the ring wraps (head/tail are monotone either way;
        # the order only fixes the BRAM access cycle stamps).
        for request in sorted(requests):
            self._check_protocol(request, cycle)
            if request.write:
                if not could_push or request.client in results:
                    continue
                slot = self.tail % self.depth
                self.bram.write(slot, request.data, cycle, request.port)
                self.tail += 1
                self.pushed_values.append(request.data)
                self.classify_epoch += 1
                results[request.client] = MemResult(granted=True)
                if self.observer is not None:
                    self.observer.on_dep_armed(
                        self.bram.name,
                        self.dep_id,
                        request.client,
                        slot,
                        cycle,
                        self.occupancy,
                    )
            else:
                if not could_pop or request.client in results:
                    continue
                slot = self.head % self.depth
                value = self.bram.read(slot, cycle, request.port)
                self.head += 1
                self.popped_values.append(value)
                self.classify_epoch += 1
                results[request.client] = MemResult(granted=True, data=value)
                if self.observer is not None:
                    self.observer.on_dep_decrement(
                        self.bram.name,
                        self.dep_id,
                        request.client,
                        slot,
                        cycle,
                        self.occupancy,
                    )
        return results

    # -- quiescence (fast-kernel wake contract) ----------------------------------------

    def next_wake(self, cycle: int) -> Optional[int]:
        """Mirror of :meth:`_arbitrate_cycle`'s grantability: a blocked
        pop wakes once the channel is non-empty, a blocked push once it
        is non-full; a blocked request that stays ungrantable without
        new input keeps the channel quiescent."""
        for item in self.blocked:
            if item.request.write:
                if not self.full:
                    return cycle + 1
            elif not self.empty:
                return cycle + 1
        return None

    # -- wait attribution (profiler seam) ----------------------------------------------

    def classify_wait(self, request: MemRequest) -> tuple[str, str, str]:
        if request.write and self.full:
            # Backpressure: the producer is held by the channel guard,
            # exactly like a guarded write with outstanding consumers.
            return ("guard-stall", self.bram.name, request.port)
        if not request.write and self.empty:
            return ("blocked-read", self.bram.name, request.port)
        return ("arbitration-loss", self.bram.name, request.port)

    # -- watchdog recovery seam --------------------------------------------------------

    def force_unblock(self, request: MemRequest, cycle: int) -> bool:
        """Degrade the channel to free a wedged endpoint: synthesize a
        zero datum for a starved pop, or drop the oldest datum for a
        backpressured push.  Stream integrity is gone either way — the
        watchdog records the recovery."""
        if request.write and self.full:
            self.head += 1
        elif not request.write and self.empty:
            self.bram.write(self.tail % self.depth, 0, cycle, request.port)
            self.tail += 1
            self.pushed_values.append(0)
        else:
            return False
        self.classify_epoch += 1
        return True

    def reset(self) -> None:
        super().reset()
        self.head = 0
        self.tail = 0
        self.pushed_values.clear()
        self.popped_values.clear()

    # -- verification helpers ----------------------------------------------------------

    def in_order(self) -> bool:
        """True iff every popped value left in push order — the runtime
        verification of the classifier's in-order claim."""
        return (
            self.popped_values
            == self.pushed_values[: len(self.popped_values)]
        )

    def describe(self) -> str:
        return (
            f"fifo channel {self.dep_id}: {self.producer} -> "
            f"{self.consumer}, depth {self.depth}, "
            f"{self.tail} pushed / {self.head} popped, "
            f"occupancy {self.occupancy}"
        )
