"""Dependency-lifecycle spans assembled from grant/guard events.

A *span* is one produce-consume cycle of one dependency: the producer's
granted write opens it, each consumer's granted read of the same
dependency attaches to it (with the read's blocked wait), and it closes
when the dependency counter drains to zero (arbitrated / lock baseline)
or when every expected consumer has read (event-driven, where there is
no runtime counter — the static schedule implies completion).

This is the per-dependency occupancy/latency record the paper's §3.1 vs
§3.2 discussion is about: for the arbitrated organization the read waits
inside one span vary with contention; for the event-driven organization
the k-th read lands exactly k cycles after the write, every span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(slots=True)
class ConsumerRead:
    """One granted consumer read inside a span (immutable by convention;
    slotted for cheap construction on the traced hot path)."""

    client: str
    issue_cycle: int
    grant_cycle: int

    @property
    def wait_cycles(self) -> int:
        return self.grant_cycle - self.issue_cycle


@dataclass
class DependencySpan:
    """One produce-consume cycle of one dependency."""

    bram: str
    dep_id: str
    instance: int
    producer: str
    write_cycle: int
    #: cycle the guard armed (CAM match live) — same cycle as the write
    #: for the arbitrated deplist; None for organizations with no guard
    armed_cycle: Optional[int] = None
    reads: list[ConsumerRead] = field(default_factory=list)
    #: reads expected before the span closes (the dependency number)
    expected_reads: Optional[int] = None
    complete_cycle: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.complete_cycle is not None

    @property
    def duration(self) -> Optional[int]:
        """Write-to-drain occupancy, in cycles (None while open)."""
        if self.complete_cycle is None:
            return None
        return self.complete_cycle - self.write_cycle

    @property
    def last_activity(self) -> int:
        cycles = [self.write_cycle] + [r.grant_cycle for r in self.reads]
        if self.complete_cycle is not None:
            cycles.append(self.complete_cycle)
        return max(cycles)

    def read_waits(self) -> list[int]:
        return [read.wait_cycles for read in self.reads]

    def post_write_latencies(self) -> list[int]:
        """Per consumer read: cycles elapsed since the opening write —
        the quantity the paper calls (non-)deterministic."""
        return [read.grant_cycle - self.write_cycle for read in self.reads]


class SpanAssembler:
    """Builds :class:`DependencySpan` objects from controller callbacks."""

    def __init__(self) -> None:
        self.spans: list[DependencySpan] = []
        self._active: dict[tuple[str, str], DependencySpan] = {}
        self._instances: dict[tuple[str, str], int] = {}
        #: (bram, dep_id) -> dependency number, filled at attach time
        self.expected: dict[tuple[str, str], int] = {}
        #: keys whose spans close on counter drain, not read count
        self._counter_backed: set[tuple[str, str]] = set()
        #: arm notifications that arrived before their span opened
        #: (guard events fire inside the arbitration cycle, the grant —
        #: which opens the span — is recorded by the base class after)
        self._pending_arm: dict[tuple[str, str], int] = {}

    def active_span(self, bram: str, dep_id: str) -> Optional[DependencySpan]:
        return self._active.get((bram, dep_id))

    def open(self, bram: str, dep_id: str, producer: str, cycle: int) -> DependencySpan:
        key = (bram, dep_id)
        # A write while the previous span is still open supersedes it
        # (possible only under faults/recovery); leave the old span
        # incomplete rather than inventing a drain cycle.
        index = self._instances.get(key, 0)
        self._instances[key] = index + 1
        span = DependencySpan(
            bram=bram,
            dep_id=dep_id,
            instance=index,
            producer=producer,
            write_cycle=cycle,
            expected_reads=self.expected.get(key),
        )
        # A guard-arm notification for this write may have arrived during
        # arbitration, before the grant that opens the span (it can lead
        # the grant by a cycle in the lock baseline's protocol).
        pending = self._pending_arm.pop(key, None)
        if pending is not None and pending <= cycle:
            span.armed_cycle = pending
        self.spans.append(span)
        self._active[key] = span
        return span

    def armed(self, bram: str, dep_id: str, cycle: int) -> None:
        key = (bram, dep_id)
        span = self._active.get(key)
        if (
            span is not None
            and span.armed_cycle is None
            and not span.complete
            and cycle >= span.write_cycle
        ):
            span.armed_cycle = cycle
            return
        self._pending_arm[key] = cycle

    def read(
        self, bram: str, dep_id: str, client: str, issue_cycle: int, grant_cycle: int
    ) -> None:
        key = (bram, dep_id)
        span = self._active.get(key)
        if span is None:
            return  # read with no opening write observed (e.g. forced unblock)
        span.reads.append(ConsumerRead(client, issue_cycle, grant_cycle))
        # Organizations without a runtime counter close on the last
        # expected read; counter-backed ones close via `drained`.
        if (
            span.expected_reads is not None
            and span.complete_cycle is None
            and len(span.reads) >= span.expected_reads
            and key not in self._counter_backed
        ):
            span.complete_cycle = grant_cycle

    def drained(self, bram: str, dep_id: str, cycle: int) -> None:
        """The dependency counter reached zero: the span is complete.

        The span stays addressable until the next write opens its
        successor — the grant that performed the final read is recorded
        *after* the drain notification within the same arbitration call,
        and the lock baseline's grant trails by a full protocol cycle.
        """
        span = self._active.get((bram, dep_id))
        if span is not None and span.complete_cycle is None:
            span.complete_cycle = cycle

    def mark_counter_backed(self, bram: str, dep_id: str) -> None:
        """Declare that (bram, dep_id) has a runtime counter, so spans
        close on :meth:`drained` rather than on read count."""
        self._counter_backed.add((bram, dep_id))

    # -- aggregate views --------------------------------------------------------------

    def complete_spans(self) -> list[DependencySpan]:
        return [span for span in self.spans if span.complete]

    def by_dependency(self) -> dict[tuple[str, str], list[DependencySpan]]:
        grouped: dict[tuple[str, str], list[DependencySpan]] = {}
        for span in self.spans:
            grouped.setdefault((span.bram, span.dep_id), []).append(span)
        return grouped

    def wait_statistics(self) -> dict[tuple[str, str], dict]:
        """(bram, dep_id) -> summary of read waits across all spans."""
        out: dict[tuple[str, str], dict] = {}
        for key, spans in sorted(self.by_dependency().items()):
            waits = [w for span in spans for w in span.read_waits()]
            post = [p for span in spans for p in span.post_write_latencies()]
            out[key] = {
                "spans": len(spans),
                "complete": sum(1 for s in spans if s.complete),
                "reads": sum(len(s.reads) for s in spans),
                "wait_min": min(waits) if waits else None,
                "wait_max": max(waits) if waits else None,
                "wait_mean": (sum(waits) / len(waits)) if waits else None,
                "post_write_min": min(post) if post else None,
                "post_write_max": max(post) if post else None,
                "deterministic_post_write": len(set(post)) <= 1,
                "observed": bool(post),
            }
        return out
