"""Critical-path extraction over the dependency span graph.

The PR-2 span assembler records every produce-consume cycle: the
producer's granted write opens a span, each consumer's granted read
attaches to it.  This module turns those spans into a weighted event
DAG and extracts the longest chain — the sequence of dependent grants
that *explains* the end-to-end makespan; everything off it had slack.

Nodes are grant events:

* one **write** node per span (the producer's granted write);
* one **read** node per consumer read (the consumer's granted read).

Edges, weighted in cycles (always non-negative — edges follow time):

* **produce** — write → each of its reads, weight the post-write
  latency (the paper's §3.1/§3.2 determinism quantity).  Each produce
  edge also carries the wait decomposition: ``wait_before_data``
  (cycles the read was issued before the data existed — profiler state
  ``blocked-read``) and ``wait_after_data`` (cycles between data ready
  and the grant — ``arbitration-loss`` territory);
* **thread-order** — consecutive grant events of one thread, weight
  the cycle gap (the thread's own serialization).

The longest path is computed by DP over the (cycle, kind, name)
topological order with deterministic tie-breaks, so the report is
byte-stable.  Per-edge slack is ``critical_length - (longest_to(u) +
weight + longest_from(v))`` — zero on the critical path, positive
elsewhere; the report lists the minimum-slack off-path edges, the next
bottlenecks after the critical chain is shortened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PathEvent:
    """One grant event in the span DAG (node identity + sort order)."""

    cycle: int
    #: 0 = write, 1 = read — writes sort before same-cycle reads
    rank: int
    thread: str
    bram: str
    dep_id: str
    instance: int

    @property
    def kind(self) -> str:
        return "write" if self.rank == 0 else "read"

    @property
    def sort_key(self) -> tuple:
        return (
            self.cycle,
            self.rank,
            self.thread,
            self.bram,
            self.dep_id,
            self.instance,
        )

    def describe(self) -> str:
        return (
            f"{self.thread} {self.kind} {self.bram}/{self.dep_id}"
            f"#{self.instance} @{self.cycle}"
        )


@dataclass(frozen=True)
class PathEdge:
    """A weighted dependency between two grant events."""

    source: PathEvent
    target: PathEvent
    weight: int
    kind: str  # "produce" | "thread-order"
    #: produce edges: cycles the read waited before the data existed
    wait_before_data: int = 0
    #: produce edges: cycles between data-ready and the read's grant
    wait_after_data: int = 0


def build_event_graph(spans) -> tuple[list[PathEvent], list[PathEdge]]:
    """Nodes and edges of the span DAG, deterministically ordered."""
    events: list[PathEvent] = []
    edges: list[PathEdge] = []
    per_thread: dict[str, list[PathEvent]] = {}

    for span in spans:
        write = PathEvent(
            cycle=span.write_cycle,
            rank=0,
            thread=span.producer,
            bram=span.bram,
            dep_id=span.dep_id,
            instance=span.instance,
        )
        events.append(write)
        per_thread.setdefault(span.producer, []).append(write)
        for read in span.reads:
            node = PathEvent(
                cycle=read.grant_cycle,
                rank=1,
                thread=read.client,
                bram=span.bram,
                dep_id=span.dep_id,
                instance=span.instance,
            )
            events.append(node)
            per_thread.setdefault(read.client, []).append(node)
            edges.append(
                PathEdge(
                    source=write,
                    target=node,
                    weight=max(0, read.grant_cycle - span.write_cycle),
                    kind="produce",
                    wait_before_data=max(
                        0, span.write_cycle - read.issue_cycle
                    ),
                    wait_after_data=max(
                        0,
                        read.grant_cycle
                        - max(read.issue_cycle, span.write_cycle),
                    ),
                )
            )

    events.sort(key=lambda e: e.sort_key)
    for thread in sorted(per_thread):
        chain = sorted(per_thread[thread], key=lambda e: e.sort_key)
        for source, target in zip(chain, chain[1:]):
            edges.append(
                PathEdge(
                    source=source,
                    target=target,
                    weight=max(0, target.cycle - source.cycle),
                    kind="thread-order",
                )
            )
    edges.sort(key=lambda e: (e.source.sort_key, e.target.sort_key, e.kind))
    return events, edges


def extract_critical_path(spans, makespan: Optional[int] = None) -> dict:
    """The longest weighted chain through the span DAG, with slack.

    ``makespan`` is the reference duration for the coverage ratio
    (defaults to the cycle range the events themselves cover).
    """
    events, edges = build_event_graph(spans)
    if not events:
        return {
            "events": 0,
            "edges": 0,
            "makespan": makespan or 0,
            "critical_cycles": 0,
            "coverage": 0.0,
            "path": [],
            "near_critical_edges": [],
        }

    incoming: dict[PathEvent, list[PathEdge]] = {}
    outgoing: dict[PathEvent, list[PathEdge]] = {}
    for edge in edges:
        incoming.setdefault(edge.target, []).append(edge)
        outgoing.setdefault(edge.source, []).append(edge)

    # Forward DP in topological (= sort-key) order.
    longest_to: dict[PathEvent, int] = {}
    best_in: dict[PathEvent, Optional[PathEdge]] = {}
    for node in events:
        best, via = 0, None
        for edge in incoming.get(node, []):
            total = longest_to[edge.source] + edge.weight
            if total > best or (
                total == best
                and via is not None
                and edge.source.sort_key < via.source.sort_key
            ):
                best, via = total, edge
        longest_to[node] = best
        best_in[node] = via

    # Backward DP for slack.
    longest_from: dict[PathEvent, int] = {}
    for node in reversed(events):
        best = 0
        for edge in outgoing.get(node, []):
            best = max(best, edge.weight + longest_from[edge.target])
        longest_from[node] = best

    terminal = max(events, key=lambda n: (longest_to[n], n.sort_key))
    critical = longest_to[terminal]

    path_edges: list[PathEdge] = []
    node = terminal
    while best_in[node] is not None:
        edge = best_in[node]
        path_edges.append(edge)
        node = edge.source
    path_edges.reverse()
    on_path = set()
    for edge in path_edges:
        on_path.add((edge.source.sort_key, edge.target.sort_key, edge.kind))

    if makespan is None:
        makespan = events[-1].cycle - events[0].cycle

    near: list[dict] = []
    for edge in edges:
        key = (edge.source.sort_key, edge.target.sort_key, edge.kind)
        if key in on_path:
            continue
        slack = critical - (
            longest_to[edge.source] + edge.weight + longest_from[edge.target]
        )
        near.append(
            {
                "source": edge.source.describe(),
                "target": edge.target.describe(),
                "kind": edge.kind,
                "weight": edge.weight,
                "slack": slack,
            }
        )
    near.sort(key=lambda item: (item["slack"], item["source"], item["target"]))

    # The path renders as its starting event plus each traversed edge.
    start = path_edges[0].source if path_edges else terminal
    path = [{"event": start.describe()}]
    for edge in path_edges:
        path.append(
            {
                "event": edge.target.describe(),
                "via": edge.kind,
                "weight": edge.weight,
                "wait_before_data": edge.wait_before_data,
                "wait_after_data": edge.wait_after_data,
            }
        )

    return {
        "events": len(events),
        "edges": len(edges),
        "makespan": makespan,
        "critical_cycles": critical,
        "coverage": round(critical / makespan, 6) if makespan else 0.0,
        "path": path,
        "near_critical_edges": near,
    }


def render_critical_path(report: dict, top: int = 5) -> str:
    """Deterministic text rendering of an extracted critical path."""
    lines = [
        (
            f"critical path: {report['critical_cycles']} of "
            f"{report['makespan']} makespan cycles "
            f"(coverage {report['coverage']:.3f}, "
            f"{report['events']} events, {report['edges']} edges)"
        )
    ]
    for index, step in enumerate(report["path"]):
        if index == 0:
            lines.append(f"  start {step['event']}")
        else:
            extra = ""
            if step["via"] == "produce":
                extra = (
                    f" (before-data {step['wait_before_data']}, "
                    f"after-data {step['wait_after_data']})"
                )
            lines.append(
                f"  +{step['weight']:<4} {step['via']:<12} -> "
                f"{step['event']}{extra}"
            )
    near = report["near_critical_edges"][: max(0, top)]
    if near:
        lines.append(f"near-critical edges (min slack, top {len(near)}):")
        for item in near:
            lines.append(
                f"  slack {item['slack']:<4} {item['kind']:<12} "
                f"{item['source']} -> {item['target']}"
            )
    return "\n".join(lines) + "\n"
