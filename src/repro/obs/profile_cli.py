"""``python -m repro profile`` — the cycle-attribution profiler CLI.

Compiles a hic design, runs it with the profiler attached, and prints
the per-thread wait-state breakdown; optional exporters write the
folded-stack/SVG flamegraph, the Chrome-trace timeline, the JSON/CSV
breakdown, and the critical-path report.  Everything printed or written
is byte-deterministic for a fixed design + options (the CI
``profile-smoke`` job ``cmp``'s the JSON against a committed golden).

Examples::

    python -m repro profile design.hic
    python -m repro profile design.hic --kernel reference --critical-path
    python -m repro profile design.hic --flame flame.svg --top 10
    python -m repro profile design.hic --breakdown-json breakdown.json
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core.advisor import Organization
from ..core.errors import SimulationTimeout
from ..hic.errors import HicError

#: Default simulation horizon (the Figure-1 golden runs use it too).
DEFAULT_CYCLES = 300


def _profile_parser() -> argparse.ArgumentParser:
    from ..flow import DEFAULT_KERNEL, SIMULATION_KERNELS

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description=(
            "Attribute every simulated cycle of every thread to an "
            "exclusive wait state (executing, blocked-read, guard-stall, "
            "arbitration-loss, crossbar-transit, offchip-latency, idle) "
            "and report where the cycles went (see docs/profiling.md)."
        ),
    )
    parser.add_argument("source", help="hic source file")
    parser.add_argument(
        "--organization",
        choices=[org.value for org in Organization],
        default=Organization.ARBITRATED.value,
        help="memory organization to profile (default: arbitrated)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=DEFAULT_CYCLES,
        metavar="N",
        help=f"simulation horizon in cycles (default: {DEFAULT_CYCLES})",
    )
    parser.add_argument(
        "--kernel",
        choices=list(SIMULATION_KERNELS),
        default=DEFAULT_KERNEL,
        help=(
            f"simulation backend (default: {DEFAULT_KERNEL}); every "
            "kernel produces byte-identical attribution (the compiled "
            "kernel runs its interpreted path under the profiler)"
        ),
    )
    parser.add_argument(
        "--banks",
        type=int,
        default=0,
        metavar="N",
        help="profile on a sharded N-bank fabric (0 = single address space)",
    )
    parser.add_argument(
        "--dep-home",
        choices=["address", "spread"],
        default="address",
        help="fabric dependency-entry homing (see python -m repro --help)",
    )
    parser.add_argument(
        "--link-latency",
        type=int,
        default=1,
        metavar="CYCLES",
        help="fabric crossbar link latency (default: 1)",
    )
    parser.add_argument(
        "--traffic-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="seeded Bernoulli ingress traffic probability per cycle",
    )
    parser.add_argument(
        "--traffic-seed",
        type=int,
        default=1,
        help="seed for --traffic-rate generators (default: 1)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="hottest wait cells / near-critical edges to list (default: 5)",
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="extract and print the critical path over the span graph",
    )
    parser.add_argument(
        "--flame",
        metavar="FILE",
        help=(
            "write a flamegraph: folded stacks, or a self-contained SVG "
            "when FILE ends in .svg"
        ),
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="FILE",
        help="write the attribution timeline as Chrome trace-event JSON",
    )
    parser.add_argument(
        "--breakdown-json",
        metavar="FILE",
        help="write the full attribution breakdown as JSON",
    )
    parser.add_argument(
        "--breakdown-csv",
        metavar="FILE",
        help="write the attribution cells as CSV",
    )
    parser.add_argument(
        "--max-wall-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock livelock valve for the simulation",
    )
    return parser


def profile_main(argv: list[str] | None = None) -> int:
    from ..flow import build_simulation, compile_design
    from .critical_path import extract_critical_path, render_critical_path
    from .exporters import write_profile_chrome_trace
    from .flame import write_flame
    from .profiler import breakdown_csv, breakdown_dict, render_breakdown

    args = _profile_parser().parse_args(argv)
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: cannot read {args.source}: {error}", file=sys.stderr)
        return 2

    try:
        design = compile_design(
            source,
            name=args.source.rsplit("/", 1)[-1].split(".")[0],
            organization=Organization(args.organization),
            num_banks=args.banks,
            link_latency=args.link_latency,
            dep_home=args.dep_home,
        )
    except (HicError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    sim = build_simulation(design, kernel=args.kernel)
    profiler = sim.attach_profiler()
    if args.traffic_rate > 0:
        from ..net import BernoulliTraffic

        for index, rx in enumerate(sim.rx.values()):
            generator = BernoulliTraffic(
                rate=args.traffic_rate, seed=args.traffic_seed + index
            )
            sim.kernel.add_pre_cycle_hook(generator.attach(rx))
    try:
        sim.run(args.cycles, max_wall_seconds=args.max_wall_seconds)
    except SimulationTimeout as error:
        print(f"error: {error.describe()}", file=sys.stderr)
        return 1

    sys.stdout.write(render_breakdown(profiler, top=args.top))
    breakdown = breakdown_dict(profiler)
    if not breakdown["conservation"]["ok"]:
        print("error: attribution conservation violated", file=sys.stderr)
        return 1

    if args.critical_path:
        report = extract_critical_path(
            sim.telemetry.spans.spans, makespan=args.cycles
        )
        sys.stdout.write(render_critical_path(report, top=args.top))

    if args.breakdown_json:
        with open(args.breakdown_json, "w") as handle:
            handle.write(json.dumps(breakdown, sort_keys=True, indent=2) + "\n")
        print(f"wrote breakdown JSON to {args.breakdown_json}")
    if args.breakdown_csv:
        with open(args.breakdown_csv, "w") as handle:
            handle.write(breakdown_csv(profiler))
        print(f"wrote breakdown CSV to {args.breakdown_csv}")
    if args.flame:
        write_flame(profiler, args.flame)
        print(f"wrote flamegraph to {args.flame}")
    if args.chrome_trace:
        write_profile_chrome_trace(profiler, args.chrome_trace)
        print(f"wrote profile Chrome trace to {args.chrome_trace}")
    return 0
