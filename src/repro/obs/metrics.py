"""A small labelled-metrics registry: counters, gauges, histograms.

The shape deliberately follows the Prometheus data model (metric name +
help + type, label sets, cumulative histogram buckets) so the text
exposition renderer in :meth:`MetricsRegistry.render_prometheus` is a
direct mapping, but the registry itself has no I/O and no dependencies —
it is just deterministic dictionaries the exporters serialize.

Rendering is byte-stable: metrics appear in registration order, label
sets in sorted order, and values are formatted with a fixed rule
(integers without a decimal point, floats via ``repr``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram buckets, in cycles: powers of two up to a full
#: watchdog window, plus the implicit +Inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _format_value(value: Number) -> str:
    if isinstance(value, bool):  # bools are ints; refuse the ambiguity
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(label_names: Sequence[str], key: tuple) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{name}="{value}"' for name, value in zip(label_names, key)
    )
    return "{" + pairs + "}"


def _sanitize(name: str) -> str:
    out = [c if (c.isalnum() or c in "_:") else "_" for c in name]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


@dataclass
class _Metric:
    """Common shape of one named metric with its label schema."""

    name: str
    help: str
    label_names: tuple[str, ...]

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)


@dataclass
class Counter(_Metric):
    """A monotonically increasing count per label set."""

    _values: dict[tuple, Number] = field(default_factory=dict)

    type_name = "counter"

    def inc(self, amount: Number = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> Number:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> list[tuple[tuple, Number]]:
        return sorted(self._values.items())


@dataclass
class Gauge(_Metric):
    """A point-in-time value per label set."""

    _values: dict[tuple, Number] = field(default_factory=dict)

    type_name = "gauge"

    def set(self, value: Number, **labels) -> None:
        self._values[self._key(labels)] = value

    def inc(self, amount: Number = 1, **labels) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> Number:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> list[tuple[tuple, Number]]:
        return sorted(self._values.items())


@dataclass
class _HistogramState:
    counts: list[int]
    total: int = 0
    sum: float = 0.0


@dataclass
class Histogram(_Metric):
    """Cumulative-bucket histogram per label set (Prometheus semantics:
    ``le`` buckets are inclusive upper bounds, +Inf is implicit)."""

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    _values: dict[tuple, _HistogramState] = field(default_factory=dict)

    type_name = "histogram"

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def observe(self, value: Number, **labels) -> None:
        key = self._key(labels)
        state = self._values.get(key)
        if state is None:
            state = _HistogramState(counts=[0] * (len(self.buckets) + 1))
            self._values[key] = state
        index = bisect.bisect_left(self.buckets, value)
        state.counts[index] += 1
        state.total += 1
        state.sum += value

    def observe_many(self, values: Iterable[Number], **labels) -> None:
        for value in values:
            self.observe(value, **labels)

    def count(self, **labels) -> int:
        state = self._values.get(self._key(labels))
        return state.total if state is not None else 0

    def sum_of(self, **labels) -> float:
        state = self._values.get(self._key(labels))
        return state.sum if state is not None else 0.0

    def samples(self) -> list[tuple[tuple, _HistogramState]]:
        return sorted(self._values.items())


class MetricsRegistry:
    """Ordered collection of named metrics with idempotent registration."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def clear(self) -> None:
        self._metrics.clear()

    def _register(self, cls, name, help, labels, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered with a different "
                    "type or label schema"
                )
            return existing
        metric = cls(
            name=_sanitize(name), help=help, label_names=tuple(labels), **kwargs
        )
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labels, buckets=tuple(buckets)
        )

    # -- exposition -------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            if isinstance(metric, Histogram):
                self._render_histogram(metric, lines)
                continue
            for key, value in metric.samples():
                labels = _format_labels(metric.label_names, key)
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(metric: Histogram, lines: list[str]) -> None:
        for key, state in metric.samples():
            cumulative = 0
            for bound, count in zip(metric.buckets, state.counts):
                cumulative += count
                bucket_key = key + (_format_value(bound),)
                labels = _format_labels(
                    metric.label_names + ("le",), bucket_key
                )
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            inf_key = key + ("+Inf",)
            labels = _format_labels(metric.label_names + ("le",), inf_key)
            lines.append(f"{metric.name}_bucket{labels} {state.total}")
            plain = _format_labels(metric.label_names, key)
            lines.append(f"{metric.name}_sum{plain} {_format_value(state.sum)}")
            lines.append(f"{metric.name}_count{plain} {state.total}")

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (the summary exporter's raw material)."""
        out: dict = {}
        for metric in self._metrics.values():
            entry: dict = {
                "type": metric.type_name,
                "help": metric.help,
                "values": [],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                for key, state in metric.samples():
                    entry["values"].append(
                        {
                            "labels": dict(zip(metric.label_names, key)),
                            "counts": list(state.counts),
                            "count": state.total,
                            "sum": state.sum,
                        }
                    )
            else:
                for key, value in metric.samples():
                    entry["values"].append(
                        {
                            "labels": dict(zip(metric.label_names, key)),
                            "value": value,
                        }
                    )
            out[metric.name] = entry
        return out
