"""Flamegraph exporters over the attribution ledger.

Two renderings of the same stacks:

* **folded stacks** (:func:`folded_stacks`) — the Brendan Gregg
  ``frame;frame;frame count`` text format, one line per attribution
  cell, sorted; feed it to any ``flamegraph.pl``-compatible tool;
* **self-contained SVG** (:func:`render_flame_svg`) — a minimal
  three-level icicle (thread → wait state → site:port) rendered with
  integer-free deterministic layout (fixed canvas, widths proportional
  to cycle counts, fixed-precision coordinates), so the artifact is
  byte-identical across runs and platforms.

Stack shape: ``thread;state`` for executing/idle cycles (they happen at
the thread) and ``thread;state;site:port`` for attributed waits.
"""

from __future__ import annotations

from .attribution import NO_SITE
from .profiler import CycleProfiler

#: Fixed fill palette, picked per frame by a stable string hash.
_PALETTE = (
    "#d62728",
    "#ff7f0e",
    "#2ca02c",
    "#1f77b4",
    "#9467bd",
    "#8c564b",
    "#e377c2",
    "#7f7f7f",
    "#bcbd22",
    "#17becf",
)

_WIDTH = 1200.0
_ROW_HEIGHT = 18
_FONT_SIZE = 11


def folded_stacks(profiler: CycleProfiler) -> str:
    """The ledger as sorted folded-stack lines."""
    lines = []
    for (thread, state, site, port), count in profiler.ledger.sorted_cells():
        frames = [thread, state]
        if site != NO_SITE:
            frames.append(f"{site}:{port}")
        lines.append(f"{';'.join(frames)} {count}")
    return "\n".join(lines) + "\n" if lines else ""


def _color(frame: str) -> str:
    return _PALETTE[sum(ord(ch) for ch in frame) % len(_PALETTE)]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _boxes(stacks: list[tuple[tuple[str, ...], int]]) -> list[tuple]:
    """Flatten sorted stacks into (depth, x, width, frame, count) boxes."""
    total = sum(count for __, count in stacks)
    if total == 0:
        return []
    boxes: list[tuple] = []

    def walk(items: list[tuple[tuple[str, ...], int]], depth: int, x: float):
        index = 0
        while index < len(items):
            frame = items[index][0][0]
            group: list[tuple[tuple[str, ...], int]] = []
            count = 0
            while index < len(items) and items[index][0][0] == frame:
                stack, cycles = items[index]
                count += cycles
                if len(stack) > 1:
                    group.append((stack[1:], cycles))
                index += 1
            width = _WIDTH * count / total
            boxes.append((depth, x, width, frame, count))
            walk(group, depth + 1, x)
            x += width

    walk(sorted(stacks), 0, 0.0)
    return boxes


def render_flame_svg(profiler: CycleProfiler, title: str = "cycle attribution") -> str:
    """A deterministic, dependency-free flamegraph SVG."""
    stacks: list[tuple[tuple[str, ...], int]] = []
    for (thread, state, site, port), count in profiler.ledger.sorted_cells():
        frames = (thread, state) if site == NO_SITE else (
            thread,
            state,
            f"{site}:{port}",
        )
        stacks.append((frames, count))
    boxes = _boxes(stacks)
    depth = max((box[0] for box in boxes), default=0) + 1
    height = (depth + 2) * _ROW_HEIGHT
    parts = [
        (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_WIDTH:.0f}" height="{height}" '
            f'font-family="monospace" font-size="{_FONT_SIZE}">'
        ),
        (
            f'<text x="4" y="{_ROW_HEIGHT - 5}">'
            f"{_escape(title)} "
            f"({sum(count for __, count in stacks)} thread-cycles)</text>"
        ),
    ]
    for level, x, width, frame, count in boxes:
        if width <= 0:
            continue
        y = (level + 1) * _ROW_HEIGHT
        label = f"{frame} ({count})"
        parts.append(
            f'<g><title>{_escape(label)}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{width:.2f}" '
            f'height="{_ROW_HEIGHT - 1}" fill="{_color(frame)}" '
            f'stroke="white" stroke-width="0.5"/>'
            + (
                f'<text x="{x + 3:.2f}" y="{y + _ROW_HEIGHT - 5}">'
                f"{_escape(label[: max(0, int(width // 7))])}</text>"
                if width > 20
                else ""
            )
            + "</g>"
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def write_flame(profiler: CycleProfiler, path: str) -> None:
    """Write a flamegraph artifact; ``.svg`` renders, anything else
    gets folded stacks."""
    text = (
        render_flame_svg(profiler)
        if path.endswith(".svg")
        else folded_stacks(profiler)
    )
    with open(path, "w") as handle:
        handle.write(text)
