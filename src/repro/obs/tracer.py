"""The event tracer / telemetry front-end.

One :class:`Telemetry` object attaches to a simulation and becomes the
*observer* of its kernel, controllers, and (if present) watchdog.  All
instrumentation points in the instrumented modules are guarded by an
``if self.observer is not None`` check, so a simulation without telemetry
pays exactly one attribute test per seam — the disabled path is a no-op.

The hot path keeps only plain-dict accumulators and event appends; the
:class:`~repro.obs.metrics.MetricsRegistry` is materialized from those
accumulators by :meth:`Telemetry.finalize` (idempotent — exporters call
it for you).  Everything recorded is a pure function of the simulation,
so a fixed seed yields byte-identical exports (see
:mod:`repro.obs.exporters`).
"""

from __future__ import annotations

from typing import Optional

from ..core.controller import LatencySample, MemRequest
from .events import EventKind, TraceEvent
from .metrics import DEFAULT_BUCKETS, MetricsRegistry
from .spans import SpanAssembler

#: Trace verbosity: "deps" records dependency-lifecycle events only;
#: "full" additionally records every grant and submit.
TRACE_LEVELS = ("deps", "full")


class Telemetry:
    """Structured event tracing + metrics over one simulation run.

    Usage::

        sim = build_simulation(design)
        telemetry = Telemetry().attach(sim)
        sim.run(1000)
        write_chrome_trace(telemetry, "trace.json")
        write_prometheus(telemetry, "metrics.prom")
    """

    def __init__(
        self,
        *,
        trace_level: str = "deps",
        wait_buckets: tuple = DEFAULT_BUCKETS,
        profile: bool = False,
    ):
        if trace_level not in TRACE_LEVELS:
            raise ValueError(
                f"trace_level must be one of {TRACE_LEVELS}, got {trace_level!r}"
            )
        self.trace_level = trace_level
        self._full = trace_level == "full"
        #: cycle-attribution profiler (``profile=True``); None keeps the
        #: traced hot path free of the per-thread classification work
        self.profiler = None
        #: pre-bound ``profiler.on_cycle`` (set at attach) — the hot
        #: per-cycle dispatch
        self._profiler_on_cycle = None
        if profile:
            from .profiler import CycleProfiler

            self.profiler = CycleProfiler()
        self.wait_buckets = tuple(wait_buckets)
        self.events: list[TraceEvent] = []
        self.spans = SpanAssembler()
        self.registry = MetricsRegistry()
        self.kernel = None
        self._controllers: dict = {}
        self._executors: dict = {}
        self._tx: dict = {}
        # hot-path accumulators (materialized into the registry lazily)
        self._granted: dict[tuple[str, str], int] = {}
        #: bram -> peak simultaneously blocked requests (sampled per cycle)
        self._blocked_peak: dict[str, int] = {}
        self._waits: dict[tuple[str, str, str], list[int]] = {}
        self._grant_waits: dict[tuple[str, str], list[int]] = {}
        self._overrides: dict[str, int] = {}
        self._chain_events: dict[tuple[str, str], int] = {}
        self._watchdog: dict[tuple[str, str], int] = {}
        self._fabrics: dict = {}
        #: (fabric, bank, kind) -> cross-bank guarded releases
        self._routed: dict[tuple[str, str, str], int] = {}
        self._recoveries = 0
        self._stats_watch: list = []
        self._controller_items: list = []
        self.cycles_observed = 0

    # -- wiring ---------------------------------------------------------------------

    def attach(self, target) -> "Telemetry":
        """Wire into a :class:`repro.flow.Simulation` (or a bare kernel)."""
        kernel = getattr(target, "kernel", target)
        self.kernel = kernel
        self._controllers = dict(kernel.controllers)
        # A memory fabric fans out to named banks: register each bank as a
        # controller of its own so every event and metric carries the bank
        # label, while the fabric itself keeps the end-to-end view.
        self._fabrics = {
            name: controller
            for name, controller in self._controllers.items()
            if hasattr(controller, "fabric_stats")
        }
        for fabric in self._fabrics.values():
            self._controllers.update(fabric.banks)
        self._executors = dict(kernel.executors)
        self._tx = dict(getattr(target, "tx", {}) or {})
        for controller in self._controllers.values():
            controller.observer = self
            # The submit seam is the hottest instrumentation point, and
            # at "deps" level its only product (the submission counter)
            # is derivable from grants at finalize time — so only
            # "full"-level tracing pays for the callback.
            if self._full:
                controller.submit_observer = self
        kernel.observer = self
        kernel.context["telemetry"] = self
        watchdog = kernel.context.get("watchdog")
        if watchdog is not None:
            watchdog.observer = self
        if hasattr(target, "telemetry"):
            target.telemetry = self
        # Hot-path views: the stats objects are stable per executor, so
        # on_cycle can poll them without re-resolving attributes.  Each
        # watch entry is [name, stats, last_rounds_seen] — a mutable
        # slot, cheaper than a dict lookup per cycle.
        self._stats_watch = [
            [name, executor.stats, executor.stats.rounds_completed]
            for name, executor in self._executors.items()
        ]
        self._controller_items = list(self._controllers.items())
        if self.profiler is not None:
            # The profiler scans *top-level* controllers only (a fabric
            # classifies on behalf of its banks), so it binds to the
            # kernel, not to this object's bank-expanded registry.  The
            # pre-bound method saves two attribute loads per cycle.
            self.profiler.bind(kernel)
            self._profiler_on_cycle = self.profiler.on_cycle
        self._discover_dependencies()
        return self

    def _discover_dependencies(self) -> None:
        """Learn each dependency's expected read count (and whether it is
        counter-backed) from the attached controllers' configuration."""
        for bram, controller in self._controllers.items():
            deplist = getattr(controller, "deplist", None)
            if deplist is not None:
                for entry in deplist.entries:
                    self.spans.expected[(bram, entry.dep_id)] = (
                        entry.dependency_number
                    )
                    self.spans.mark_counter_backed(bram, entry.dep_id)
                continue
            channel_dep = getattr(controller, "channel_dependency", None)
            if channel_dep is not None:
                # FIFO-lowered channel: spans are counter-backed by the
                # channel occupancy (drained == empty), one expected read
                # per produced value.
                self.spans.expected[(bram, channel_dep.dep_id)] = (
                    channel_dep.dependency_number
                )
                self.spans.mark_counter_backed(bram, channel_dep.dep_id)
                continue
            schedule = getattr(controller, "schedule", None)
            if schedule is not None:
                counts: dict[str, int] = {}
                for slot in schedule.slots:
                    if slot.kind.name == "CONSUMER":
                        counts[slot.dep_id] = counts.get(slot.dep_id, 0) + 1
                for dep_id, count in counts.items():
                    self.spans.expected[(bram, dep_id)] = count

    # -- controller observer callbacks -------------------------------------------------

    def on_submit(self, bram: str, request: MemRequest) -> None:
        # Only wired up at "full" level (see attach): one SUBMIT event
        # per distinct request.
        self.events.append(
            TraceEvent(
                cycle=self._controllers[bram].cycle,
                kind=EventKind.SUBMIT,
                source=bram,
                client=request.client,
                port=request.port,
                address=request.address,
                dep_id=request.dep_id,
            )
        )

    def on_grant(self, bram: str, request: MemRequest, sample: LatencySample) -> None:
        key = (bram, request.port)
        self._granted[key] = self._granted.get(key, 0) + 1
        # Inline `sample.wait_cycles`: a property call per grant is
        # measurable on the traced hot path.
        wait = sample.grant_cycle - sample.issue_cycle
        waits = self._grant_waits.get(key)
        if waits is None:
            waits = self._grant_waits[key] = []
        waits.append(wait)
        if request.dep_id is not None:
            dep_key = (bram, request.dep_id, request.client)
            dep_waits = self._waits.get(dep_key)
            if dep_waits is None:
                dep_waits = self._waits[dep_key] = []
            dep_waits.append(wait)
            if request.write:
                self.spans.open(
                    bram, request.dep_id, request.client, sample.grant_cycle
                )
            else:
                self.spans.read(
                    bram,
                    request.dep_id,
                    request.client,
                    sample.issue_cycle,
                    sample.grant_cycle,
                )
        # Grant TraceEvents only at "full" level: at "deps" level the
        # dependency lifecycle is already captured by the span assembler
        # and the guard events, and skipping the per-grant event object
        # keeps the traced hot path inside the overhead budget.
        if self._full:
            self.events.append(
                TraceEvent(
                    cycle=sample.grant_cycle,
                    kind=EventKind.GRANT,
                    source=bram,
                    client=request.client,
                    port=request.port,
                    address=request.address,
                    dep_id=request.dep_id,
                    value=wait,
                )
            )

    def on_dep_armed(
        self, bram: str, dep_id: str, client: str, address: int,
        cycle: int, outstanding: int,
    ) -> None:
        self.spans.armed(bram, dep_id, cycle)
        self.events.append(
            TraceEvent(
                cycle=cycle,
                kind=EventKind.DEP_ARMED,
                source=bram,
                client=client,
                address=address,
                dep_id=dep_id,
                value=outstanding,
            )
        )

    def on_dep_decrement(
        self, bram: str, dep_id: str, client: str, address: int,
        cycle: int, outstanding: int,
    ) -> None:
        self.events.append(
            TraceEvent(
                cycle=cycle,
                kind=EventKind.DEP_DECREMENT,
                source=bram,
                client=client,
                address=address,
                dep_id=dep_id,
                value=outstanding,
            )
        )
        if outstanding == 0:
            self.spans.drained(bram, dep_id, cycle)
            self.events.append(
                TraceEvent(
                    cycle=cycle,
                    kind=EventKind.DEP_COMPLETE,
                    source=bram,
                    dep_id=dep_id,
                )
            )

    def on_override(self, bram: str, cycle: int) -> None:
        self._overrides[bram] = self._overrides.get(bram, 0) + 1
        self.events.append(
            TraceEvent(cycle=cycle, kind=EventKind.OVERRIDE, source=bram)
        )

    def on_chain_event(self, bram: str, dep_id: str, thread: str, cycle: int) -> None:
        key = (bram, dep_id)
        self._chain_events[key] = self._chain_events.get(key, 0) + 1
        self.events.append(
            TraceEvent(
                cycle=cycle,
                kind=EventKind.CHAIN_EVENT,
                source=bram,
                client=thread,
                dep_id=dep_id,
            )
        )

    # -- fabric observer callbacks -----------------------------------------------------

    def on_dep_routed(
        self, fabric: str, dep_id: str, bank: str, client: str,
        write: bool, cycle: int,
    ) -> None:
        """A router-gated cross-bank request was released into the crossbar."""
        key = (fabric, bank, "write" if write else "read")
        self._routed[key] = self._routed.get(key, 0) + 1
        self.events.append(
            TraceEvent(
                cycle=cycle,
                kind=EventKind.DEP_ROUTED,
                source=fabric,
                client=client,
                dep_id=dep_id,
                detail=f"-> {bank}",
            )
        )

    def on_dep_notified(
        self, fabric: str, dep_id: str, bank: str, cycle: int, latency: int
    ) -> None:
        """A cross-bank arm notification reached its home bank."""
        self.events.append(
            TraceEvent(
                cycle=cycle,
                kind=EventKind.DEP_NOTIFIED,
                source=bank,
                dep_id=dep_id,
                value=latency,
            )
        )

    # -- watchdog observer callbacks ---------------------------------------------------

    def on_watchdog_event(self, event) -> None:
        key = (event.kind, event.action)
        self._watchdog[key] = self._watchdog.get(key, 0) + 1
        self.events.append(
            TraceEvent(
                cycle=event.cycle,
                kind=EventKind.WATCHDOG,
                source=event.bram or "system",
                client=event.client,
                dep_id=event.dep_id,
                value=event.blocked_cycles,
                detail=f"{event.kind} -> {event.action}",
            )
        )

    def on_recovery(self, cycle: int, description: str) -> None:
        self._recoveries += 1
        self.events.append(
            TraceEvent(
                cycle=cycle,
                kind=EventKind.RECOVERY,
                source="system",
                detail=description,
            )
        )

    # -- kernel observer callback ------------------------------------------------------

    def on_cycle(self, cycle: int, kernel) -> None:
        self.cycles_observed += 1
        if self._full:
            # Per-thread ROUND_COMPLETE instants are a "full"-level
            # nicety; the aggregate round counters come from the
            # executor stats at finalize time either way.
            for entry in self._stats_watch:
                rounds = entry[1].rounds_completed
                if rounds != entry[2]:
                    entry[2] = rounds
                    self.events.append(
                        TraceEvent(
                            cycle=cycle,
                            kind=EventKind.ROUND_COMPLETE,
                            source=entry[0],
                            value=rounds,
                        )
                    )
        peaks = self._blocked_peak
        for bram, controller in self._controller_items:
            count = len(controller.blocked)
            if count > peaks.get(bram, 0):
                peaks[bram] = count
        profiler_on_cycle = self._profiler_on_cycle
        if profiler_on_cycle is not None:
            profiler_on_cycle(cycle, kernel)

    def on_idle_cycles(self, first_cycle: int, count: int, kernel) -> None:
        """Fast-kernel batch notification for a skipped idle stretch.

        The skipped cycles ``first_cycle .. first_cycle + count - 1``
        are provably quiescent: no grants, no round completions, and a
        frozen blocked set that :meth:`on_cycle` already sampled at the
        last executed cycle.  The only per-cycle accumulators that move
        during idle time are the cycle count and — when profiling — the
        attribution ledger, which books the frozen classification in
        one batch (see ``CycleProfiler.on_idle_cycles``).
        """
        self.cycles_observed += count
        if self.profiler is not None:
            self.profiler.on_idle_cycles(first_cycle, count, kernel)

    # -- registry materialization ------------------------------------------------------

    def finalize(self) -> MetricsRegistry:
        """(Re)build the metrics registry from the accumulators.

        Idempotent: exporters call it implicitly; calling it mid-run gives
        a consistent snapshot of everything observed so far.
        """
        registry = self.registry
        registry.clear()

        # Submissions are derived, not counted on the hot path: every
        # distinct submission either grants eventually or leaves an
        # outstanding issue-cycle entry at the controller.
        submitted_totals: dict[tuple[str, str], int] = dict(self._granted)
        for bram in sorted(self._controllers):
            counts = self._controllers[bram].unfinished_request_counts()
            for port, count in counts.items():
                key = (bram, port)
                submitted_totals[key] = submitted_totals.get(key, 0) + count
        submitted = registry.counter(
            "sim_requests_submitted_total",
            "Distinct requests submitted to a controller port (post fault "
            "taps; re-assertions while blocked are not counted)",
            labels=("bram", "port"),
        )
        for (bram, port), count in sorted(submitted_totals.items()):
            submitted.inc(count, bram=bram, port=port)

        granted = registry.counter(
            "sim_requests_granted_total",
            "Requests granted by arbitration",
            labels=("bram", "port"),
        )
        for (bram, port), count in sorted(self._granted.items()):
            granted.inc(count, bram=bram, port=port)

        # Blocked request-cycles are derived, not accumulated per cycle:
        # a granted request's wait equals exactly the cycles it sat
        # blocked, so the per-port totals are the grant-wait sums plus
        # the still-blocked requests' current ages.
        blocked_totals: dict[tuple[str, str], int] = {}
        for (bram, port), values in self._grant_waits.items():
            total = sum(values)
            if total:
                blocked_totals[(bram, port)] = total
        for bram in sorted(self._controllers):
            for item in self._controllers[bram].blocked:
                key = (bram, item.request.port)
                blocked_totals[key] = (
                    blocked_totals.get(key, 0) + item.blocked_cycles
                )
        blocked = registry.counter(
            "sim_blocked_request_cycles_total",
            "Cycles spent by requests sitting blocked at a port "
            "(one count per blocked request per cycle)",
            labels=("bram", "port"),
        )
        for (bram, port), count in sorted(blocked_totals.items()):
            blocked.inc(count, bram=bram, port=port)

        occupancy = registry.gauge(
            "sim_controller_blocked_peak",
            "Peak simultaneously blocked requests at a controller",
            labels=("bram",),
        )
        for bram, count in sorted(self._blocked_peak.items()):
            occupancy.set(count, bram=bram)

        pending = registry.gauge(
            "sim_port_pending",
            "Requests still blocked at a port at snapshot time",
            labels=("bram", "port"),
        )
        for bram in sorted(self._controllers):
            per_port: dict[str, int] = {}
            for item in self._controllers[bram].blocked:
                port = item.request.port
                per_port[port] = per_port.get(port, 0) + 1
            for port, count in sorted(per_port.items()):
                pending.set(count, bram=bram, port=port)

        waits = registry.histogram(
            "sim_dependency_wait_cycles",
            "Blocked wait of guarded (dependency-tagged) accesses",
            labels=("bram", "dep_id", "client"),
            buckets=self.wait_buckets,
        )
        for (bram, dep_id, client), values in sorted(self._waits.items()):
            waits.observe_many(values, bram=bram, dep_id=dep_id, client=client)

        grant_waits = registry.histogram(
            "sim_grant_wait_cycles",
            "Blocked wait of all granted requests, per port",
            labels=("bram", "port"),
            buckets=self.wait_buckets,
        )
        for (bram, port), values in sorted(self._grant_waits.items()):
            grant_waits.observe_many(values, bram=bram, port=port)

        overrides = registry.counter(
            "sim_port_c_overrides_total",
            "Cycles a blocked port-C read was overridden by port D (§3.1)",
            labels=("bram",),
        )
        for bram, count in sorted(self._overrides.items()):
            overrides.inc(count, bram=bram)

        chain = registry.counter(
            "sim_chain_events_total",
            "Events chained through the event-driven consumer schedule",
            labels=("bram", "dep_id"),
        )
        for (bram, dep_id), count in sorted(self._chain_events.items()):
            chain.inc(count, bram=bram, dep_id=dep_id)

        spans_total = registry.counter(
            "sim_dependency_spans_total",
            "Produce-consume spans opened, by completion state",
            labels=("bram", "dep_id", "state"),
        )
        for (bram, dep_id), spans in sorted(self.spans.by_dependency().items()):
            done = sum(1 for s in spans if s.complete)
            if done:
                spans_total.inc(done, bram=bram, dep_id=dep_id, state="complete")
            if len(spans) - done:
                spans_total.inc(
                    len(spans) - done, bram=bram, dep_id=dep_id, state="open"
                )

        watchdog = registry.counter(
            "sim_watchdog_events_total",
            "Watchdog detector firings, by kind and action taken",
            labels=("kind", "action"),
        )
        for (kind, action), count in sorted(self._watchdog.items()):
            watchdog.inc(count, kind=kind, action=action)

        recoveries = registry.counter(
            "sim_watchdog_recoveries_total",
            "Forced-unblock degradations recorded by the watchdog",
        )
        if self._recoveries:
            recoveries.inc(self._recoveries)

        cycles = registry.gauge(
            "sim_cycles", "Simulation cycles observed by the telemetry layer"
        )
        cycles.set(self.cycles_observed)

        advances = registry.counter(
            "sim_thread_advances_total",
            "FSM transitions taken (the watchdog's progress signal)",
            labels=("thread",),
        )
        rounds = registry.counter(
            "sim_thread_rounds_total",
            "Completed thread rounds",
            labels=("thread",),
        )
        stalls = registry.counter(
            "sim_thread_stall_cycles_total",
            "Cycles a thread held its state waiting for a grant/message",
            labels=("thread",),
        )
        utilization = registry.gauge(
            "sim_thread_utilization",
            "1 - stall/cycles per thread",
            labels=("thread",),
        )
        for name in sorted(self._executors):
            stats = self._executors[name].stats
            if stats.advances:
                advances.inc(stats.advances, thread=name)
            if stats.rounds_completed:
                rounds.inc(stats.rounds_completed, thread=name)
            if stats.stall_cycles:
                stalls.inc(stats.stall_cycles, thread=name)
            utilization.set(round(stats.utilization, 6), thread=name)

        messages = registry.counter(
            "sim_tx_messages_total",
            "Messages emitted on egress interfaces",
            labels=("interface",),
        )
        for name in sorted(self._tx):
            count = self._tx[name].count
            if count:
                messages.inc(count, interface=name)

        if self._fabrics:
            crossbar = registry.counter(
                "sim_fabric_crossbar_requests_total",
                "Requests forwarded into / delivered out of the crossbar",
                labels=("fabric", "stat"),
            )
            router_events = registry.counter(
                "sim_fabric_router_events_total",
                "Cross-bank dependency router activity",
                labels=("fabric", "kind"),
            )
            bank_requests = registry.counter(
                "sim_fabric_bank_requests_total",
                "Fabric requests routed to / granted at each bank",
                labels=("fabric", "bank", "stat"),
            )
            for name in sorted(self._fabrics):
                stats = self._fabrics[name].fabric_stats()
                for stat in ("forwarded", "delivered"):
                    if stats["crossbar"][stat]:
                        crossbar.inc(
                            stats["crossbar"][stat], fabric=name, stat=stat
                        )
                for kind in (
                    "writes_routed",
                    "reads_routed",
                    "notifications_sent",
                    "notifications_applied",
                    "gated_cycles",
                ):
                    if stats["router"][kind]:
                        router_events.inc(
                            stats["router"][kind], fabric=name, kind=kind
                        )
                for bank, per_bank in sorted(stats["banks"].items()):
                    for stat in ("routed", "granted"):
                        if per_bank[stat]:
                            bank_requests.inc(
                                per_bank[stat],
                                fabric=name,
                                bank=bank,
                                stat=stat,
                            )

        if self.profiler is not None:
            wait_states = registry.counter(
                "sim_wait_state_cycles_total",
                "Thread cycles attributed to each exclusive wait state "
                "(see docs/profiling.md)",
                labels=("thread", "state"),
            )
            for thread, states in sorted(
                self.profiler.ledger.thread_state_totals().items()
            ):
                for state, count in sorted(states.items()):
                    if count:
                        wait_states.inc(count, thread=thread, state=state)

        outstanding = registry.gauge(
            "sim_dependency_outstanding",
            "Outstanding consumer reads per dependency at snapshot time",
            labels=("bram", "dep_id"),
        )
        for bram in sorted(self._controllers):
            deplist = getattr(self._controllers[bram], "deplist", None)
            if deplist is None:
                continue
            for entry in deplist.entries:
                outstanding.set(entry.outstanding, bram=bram, dep_id=entry.dep_id)

        return registry

    # -- convenience views ------------------------------------------------------------

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def thread_names(self) -> list[str]:
        return sorted(self._executors)

    def controller_names(self) -> list[str]:
        return sorted(self._controllers)

    def describe(self) -> str:
        spans = self.spans.spans
        return (
            f"telemetry: {self.cycles_observed} cycles, "
            f"{len(self.events)} events, {len(spans)} spans "
            f"({sum(1 for s in spans if s.complete)} complete)"
        )


def attach_telemetry(target, **kwargs) -> Telemetry:
    """Create a :class:`Telemetry` and attach it to ``target``."""
    return Telemetry(**kwargs).attach(target)
