"""Unified telemetry: dependency-lifecycle tracing, metrics, exporters.

The observability layer over the simulator and memory controllers:

* :mod:`~repro.obs.events` — structured cycle events;
* :mod:`~repro.obs.spans` — dependency-lifecycle span assembly
  (producer write → guard armed → blocked wait → consumer reads →
  counter drain);
* :mod:`~repro.obs.metrics` — a labelled counter/gauge/histogram
  registry with Prometheus text exposition;
* :mod:`~repro.obs.tracer` — :class:`Telemetry`, the observer that
  attaches to a simulation (zero overhead when not attached: every
  seam is a single ``is not None`` check);
* :mod:`~repro.obs.exporters` — Chrome trace-event JSON (Perfetto),
  Prometheus text, and JSON/CSV summaries, all byte-deterministic for
  a fixed simulation seed.

See ``docs/observability.md`` for the event schema and span model.
"""

from .events import EventKind, TraceEvent
from .exporters import (
    chrome_trace,
    dumps_chrome_trace,
    dumps_summary,
    prometheus_text,
    summary_dict,
    validate_chrome_trace,
    write_bench_json,
    write_chrome_trace,
    write_prometheus,
    write_summary_csv,
    write_summary_json,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import ConsumerRead, DependencySpan, SpanAssembler
from .tracer import Telemetry, attach_telemetry

__all__ = [
    "EventKind",
    "TraceEvent",
    "chrome_trace",
    "dumps_chrome_trace",
    "dumps_summary",
    "prometheus_text",
    "summary_dict",
    "validate_chrome_trace",
    "write_bench_json",
    "write_chrome_trace",
    "write_prometheus",
    "write_summary_csv",
    "write_summary_json",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ConsumerRead",
    "DependencySpan",
    "SpanAssembler",
    "Telemetry",
    "attach_telemetry",
]
