"""Unified telemetry: dependency-lifecycle tracing, metrics, exporters.

The observability layer over the simulator and memory controllers:

* :mod:`~repro.obs.events` — structured cycle events;
* :mod:`~repro.obs.spans` — dependency-lifecycle span assembly
  (producer write → guard armed → blocked wait → consumer reads →
  counter drain);
* :mod:`~repro.obs.metrics` — a labelled counter/gauge/histogram
  registry with Prometheus text exposition;
* :mod:`~repro.obs.tracer` — :class:`Telemetry`, the observer that
  attaches to a simulation (zero overhead when not attached: every
  seam is a single ``is not None`` check);
* :mod:`~repro.obs.exporters` — Chrome trace-event JSON (Perfetto),
  Prometheus text, and JSON/CSV summaries, all byte-deterministic for
  a fixed simulation seed;
* :mod:`~repro.obs.attribution` / :mod:`~repro.obs.profiler` — the
  cycle-attribution profiler: every simulated cycle of every thread
  booked into one exclusive wait state, per controller/bank/port;
* :mod:`~repro.obs.critical_path` — longest weighted chain over the
  dependency span graph, with per-edge slack;
* :mod:`~repro.obs.flame` — folded-stack / SVG flamegraphs of the
  attribution ledger.

See ``docs/observability.md`` for the event schema and span model, and
``docs/profiling.md`` for the attribution taxonomy.
"""

from .attribution import NO_SITE, WAIT_STATES, AttributionLedger, Segment
from .critical_path import extract_critical_path, render_critical_path
from .events import EventKind, TraceEvent
from .exporters import (
    chrome_trace,
    dumps_chrome_trace,
    dumps_profile_chrome_trace,
    dumps_summary,
    profile_chrome_trace,
    prometheus_text,
    summary_dict,
    validate_chrome_trace,
    write_bench_json,
    write_chrome_trace,
    write_profile_chrome_trace,
    write_prometheus,
    write_summary_csv,
    write_summary_json,
)
from .flame import folded_stacks, render_flame_svg, write_flame
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import (
    PROFILE_SCHEMA,
    CycleProfiler,
    attach_profiler,
    breakdown_csv,
    breakdown_dict,
    merge_profiles,
    render_breakdown,
)
from .spans import ConsumerRead, DependencySpan, SpanAssembler
from .tracer import Telemetry, attach_telemetry

__all__ = [
    "EventKind",
    "TraceEvent",
    "chrome_trace",
    "dumps_chrome_trace",
    "dumps_profile_chrome_trace",
    "dumps_summary",
    "profile_chrome_trace",
    "prometheus_text",
    "summary_dict",
    "validate_chrome_trace",
    "write_bench_json",
    "write_chrome_trace",
    "write_profile_chrome_trace",
    "write_prometheus",
    "write_summary_csv",
    "write_summary_json",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ConsumerRead",
    "DependencySpan",
    "SpanAssembler",
    "Telemetry",
    "attach_telemetry",
    "NO_SITE",
    "WAIT_STATES",
    "AttributionLedger",
    "Segment",
    "extract_critical_path",
    "render_critical_path",
    "folded_stacks",
    "render_flame_svg",
    "write_flame",
    "PROFILE_SCHEMA",
    "CycleProfiler",
    "attach_profiler",
    "breakdown_csv",
    "breakdown_dict",
    "merge_profiles",
    "render_breakdown",
]
