"""Wait-state taxonomy and the cycle-attribution ledger.

Every simulated cycle of every thread is attributed to exactly one
*wait state* — the profiler's exclusive taxonomy of where cycles go:

* ``executing`` — the thread's FSM took a transition this cycle;
* ``blocked-read`` — a guarded consumer read waited because the data was
  not yet produced (the dependency guard held it, §3.1/§3.2);
* ``guard-stall`` — a producer write waited for the previous round to
  drain (or a cross-bank request was held at fabric ingress by the
  dependency router);
* ``arbitration-loss`` — the request was *grantable* but lost
  arbitration (round-robin/priority/slot/lock-protocol contention);
* ``crossbar-transit`` — the request was travelling through the fabric
  crossbar;
* ``offchip-latency`` — the request occupied the external-memory
  controller's multi-cycle access window;
* ``idle`` — the thread held without a pending memory request
  (terminal hold, empty receive wait, or a request dropped by a fault
  tap before reaching any port).

Attribution cells are keyed ``(thread, state, site, port)`` where
*site* is the controller/bank that classified the wait (``-`` for
executing/idle, which happen at the thread).  The ledger also keeps a
run-length timeline per thread — contiguous same-classification cycles
merge into one segment — which is what makes the wheel kernel's batch
bookings (``count`` cycles at a frozen classification) byte-identical
to the reference kernel's one-by-one accrual.
"""

from __future__ import annotations

from dataclasses import dataclass

EXECUTING = "executing"
BLOCKED_READ = "blocked-read"
GUARD_STALL = "guard-stall"
ARBITRATION = "arbitration-loss"
CROSSBAR = "crossbar-transit"
OFFCHIP = "offchip-latency"
IDLE = "idle"

#: The exclusive attribution states, in report order.
WAIT_STATES = (
    EXECUTING,
    BLOCKED_READ,
    GUARD_STALL,
    ARBITRATION,
    CROSSBAR,
    OFFCHIP,
    IDLE,
)

#: Site/port placeholder for states that happen at the thread itself.
NO_SITE = "-"


@dataclass(slots=True)
class Segment:
    """A run of contiguous cycles with one classification."""

    thread: str
    state: str
    site: str
    port: str
    start: int
    length: int

    @property
    def end(self) -> int:
        """First cycle after the segment."""
        return self.start + self.length


class AttributionLedger:
    """Exact per-thread cycle accounting.

    ``book`` is the only mutation: one call attributes ``count``
    contiguous cycles of one thread to one ``(state, site, port)``
    cell.  Totals and the run-length timeline stay consistent by
    construction, so conservation (attributed == simulated) holds as
    long as every simulated cycle is booked exactly once.
    """

    def __init__(self) -> None:
        #: append-only booking log; cells/timelines materialize lazily
        #: so the per-cycle path pays one append, not the bookkeeping
        self._log: list[tuple[str, str, str, str, int, int]] = []
        self._done = 0
        self._cells: dict[tuple[str, str, str, str], int] = {}
        self._timelines: dict[str, list[Segment]] = {}

    def book(
        self,
        thread: str,
        state: str,
        site: str,
        port: str,
        cycle: int,
        count: int = 1,
    ) -> None:
        self._log.append((thread, state, site, port, cycle, count))

    @property
    def cells(self) -> dict[tuple[str, str, str, str], int]:
        """(thread, state, site, port) -> cycles."""
        self._materialize()
        return self._cells

    @property
    def timelines(self) -> dict[str, list[Segment]]:
        """Per-thread run-length timeline, in booking order."""
        self._materialize()
        return self._timelines

    def _materialize(self) -> None:
        """Fold log entries booked since the last view into the cells
        and timelines (incremental, deterministic in booking order)."""
        log = self._log
        if self._done == len(log):
            return
        cells = self._cells
        timelines = self._timelines
        for thread, state, site, port, cycle, count in log[self._done:]:
            key = (thread, state, site, port)
            cells[key] = cells.get(key, 0) + count
            timeline = timelines.get(thread)
            if timeline is None:
                timeline = timelines[thread] = []
            if timeline:
                last = timeline[-1]
                if (
                    last.end == cycle
                    and last.state == state
                    and last.site == site
                    and last.port == port
                ):
                    last.length += count
                    continue
            timeline.append(Segment(thread, state, site, port, cycle, count))
        self._done = len(log)

    # -- aggregate views --------------------------------------------------------------

    def thread_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for (thread, __, ___, ____), count in self.cells.items():
            totals[thread] = totals.get(thread, 0) + count
        return totals

    def state_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for (__, state, ___, ____), count in self.cells.items():
            totals[state] = totals.get(state, 0) + count
        return totals

    def thread_state_totals(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for (thread, state, __, ___), count in self.cells.items():
            per = out.setdefault(thread, {})
            per[state] = per.get(state, 0) + count
        return out

    def site_state_totals(self) -> dict[tuple[str, str], int]:
        """(site, state) -> cycles, for the per-controller breakdown."""
        totals: dict[tuple[str, str], int] = {}
        for (__, state, site, ___), count in self.cells.items():
            key = (site, state)
            totals[key] = totals.get(key, 0) + count
        return totals

    def state_fractions(self) -> dict[str, float]:
        """Wait-state fractions of all attributed cycles (sums to 1.0).

        The normalization the analytical model (:mod:`repro.model`)
        predicts and validates against: each state's share of every
        thread's every cycle.  Empty ledger -> empty dict.
        """
        totals = self.state_totals()
        attributed = sum(totals.values())
        if attributed == 0:
            return {}
        return {
            state: count / attributed for state, count in totals.items()
        }

    def sorted_cells(self) -> list[tuple[tuple[str, str, str, str], int]]:
        return sorted(self.cells.items())

    def merge(self, other: "AttributionLedger") -> None:
        """Fold another ledger's cells in (commutative; timelines are
        per-run artifacts and are not merged)."""
        for key, count in other.cells.items():
            self.cells[key] = self.cells.get(key, 0) + count
