"""Machine-readable exporters over a :class:`~repro.obs.tracer.Telemetry`.

Three formats:

* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — loadable in Perfetto or
  ``chrome://tracing``.  Dependency spans and consumer reads become
  complete ("X") events on per-controller and per-thread tracks;
  watchdog firings, port-C overrides, and chained events become
  instants ("i").  One simulation cycle maps to one microsecond of
  trace time.
* **Prometheus text exposition** (:func:`prometheus_text` /
  :func:`write_prometheus`) — the metrics registry, verbatim.
* **JSON/CSV summaries** (:func:`summary_dict`,
  :func:`write_summary_json`, :func:`write_summary_csv`) — the
  aggregate the benchmark harness reuses to emit ``BENCH_sim.json``.

All exporters are deterministic: fixed key order, no wall-clock
timestamps, no environment leakage — two runs of the same seeded
simulation serialize byte-identically.
"""

from __future__ import annotations

import csv
import json
from typing import Optional

from .events import EventKind
from .metrics import MetricsRegistry
from .tracer import Telemetry

#: pid values of the two trace-event "processes" (track groups).
THREADS_PID = 1
CONTROLLERS_PID = 2

_INSTANT_KINDS = {
    EventKind.OVERRIDE: "override",
    EventKind.CHAIN_EVENT: "chain",
    EventKind.WATCHDOG: "watchdog",
    EventKind.RECOVERY: "recovery",
    EventKind.DEP_ARMED: "guard",
    EventKind.DEP_DECREMENT: "guard",
    # Recorded only at "full" trace level; absent from "deps" traces.
    EventKind.SUBMIT: "request",
    EventKind.GRANT: "request",
    EventKind.ROUND_COMPLETE: "progress",
}


def _event_args(event) -> dict:
    args = {}
    for name in ("client", "port", "address", "dep_id", "value", "detail"):
        value = getattr(event, name)
        if value is not None:
            args[name] = value
    return args


def chrome_trace(telemetry: Telemetry) -> dict:
    """Render the telemetry record as a trace-event JSON document."""
    threads = telemetry.thread_names()
    controllers = telemetry.controller_names()
    thread_tid = {name: tid for tid, name in enumerate(threads, start=1)}
    controller_tid = {name: tid for tid, name in enumerate(controllers, start=1)}

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": THREADS_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "threads"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": CONTROLLERS_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "memory controllers"},
        },
    ]
    for name, tid in thread_tid.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": THREADS_PID,
                "tid": tid,
                "ts": 0,
                "args": {"name": name},
            }
        )
    for name, tid in controller_tid.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": CONTROLLERS_PID,
                "tid": tid,
                "ts": 0,
                "args": {"name": name},
            }
        )

    # Dependency-lifecycle spans on the controller tracks.
    for span in telemetry.spans.spans:
        end = span.complete_cycle if span.complete else span.last_activity
        events.append(
            {
                "name": f"{span.dep_id}#{span.instance}",
                "cat": "dependency",
                "ph": "X",
                "pid": CONTROLLERS_PID,
                "tid": controller_tid.get(span.bram, 0),
                "ts": span.write_cycle,
                "dur": max(0, end - span.write_cycle),
                "args": {
                    "producer": span.producer,
                    "reads": len(span.reads),
                    "expected_reads": span.expected_reads,
                    "complete": span.complete,
                    "post_write_latencies": span.post_write_latencies(),
                },
            }
        )
        # Each consumer read: a slice on the reading thread's track,
        # spanning its blocked wait (issue -> grant).
        for read in span.reads:
            events.append(
                {
                    "name": f"read {span.dep_id}",
                    "cat": "consumer-read",
                    "ph": "X",
                    "pid": THREADS_PID,
                    "tid": thread_tid.get(read.client, 0),
                    "ts": read.issue_cycle,
                    "dur": max(0, read.grant_cycle - read.issue_cycle),
                    "args": {
                        "bram": span.bram,
                        "dep_id": span.dep_id,
                        "wait_cycles": read.wait_cycles,
                        "post_write_latency": read.grant_cycle
                        - span.write_cycle,
                    },
                }
            )

    # Instant events for the remaining structured record.
    for event in telemetry.events:
        category = _INSTANT_KINDS.get(event.kind)
        if category is None:
            continue
        if event.source in controller_tid:
            pid, tid = CONTROLLERS_PID, controller_tid[event.source]
        elif event.source in thread_tid:
            pid, tid = THREADS_PID, thread_tid[event.source]
        else:
            pid, tid = CONTROLLERS_PID, 0
        events.append(
            {
                "name": event.kind,
                "cat": category,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": event.cycle,
                "args": _event_args(event),
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "cycles": telemetry.cycles_observed,
            "time_unit": "1 cycle = 1 us",
        },
    }


def validate_chrome_trace(document: dict) -> None:
    """Schema-check a trace-event document; raises ``ValueError``.

    Checks the subset of the trace-event format the exporter emits:
    a ``traceEvents`` array whose entries carry a name, a known phase,
    integer pid/tid, a non-negative timestamp, and — for complete
    events — a non-negative duration.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must contain a traceEvents array")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        where = f"traceEvents[{index}]"
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing name")
        phase = event.get("ph")
        if phase not in ("X", "i", "M", "C", "b", "e", "B", "E"):
            raise ValueError(f"{where}: unknown phase {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: X event needs non-negative dur")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"{where}: instant scope must be t/p/g")


def dumps_chrome_trace(telemetry: Telemetry) -> str:
    """Serialize with a fixed key order — byte-identical across runs."""
    document = chrome_trace(telemetry)
    validate_chrome_trace(document)
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_trace(telemetry: Telemetry, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dumps_chrome_trace(telemetry))


# -- profiler trace --------------------------------------------------------------------

#: pid of the profiler's wait-state track group.
PROFILE_PID = 3


def profile_chrome_trace(profiler) -> dict:
    """Chrome-trace document of the attribution timeline: one "X" slice
    per run-length segment on per-thread tracks, plus a per-state "C"
    counter track sampled at every segment boundary.  Deterministic:
    segments and boundaries derive purely from the ledger."""
    from .attribution import NO_SITE, WAIT_STATES

    threads = sorted(profiler.ledger.timelines)
    thread_tid = {name: tid for tid, name in enumerate(threads, start=1)}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PROFILE_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "wait-state attribution"},
        }
    ]
    for name, tid in thread_tid.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PROFILE_PID,
                "tid": tid,
                "ts": 0,
                "args": {"name": name},
            }
        )
    boundaries: set[int] = set()
    segments = []
    for name in threads:
        for segment in profiler.ledger.timelines[name]:
            segments.append(segment)
            boundaries.add(segment.start)
            boundaries.add(segment.end)
            args = {}
            if segment.site != NO_SITE:
                args = {"site": segment.site, "port": segment.port}
            events.append(
                {
                    "name": segment.state,
                    "cat": "wait-state",
                    "ph": "X",
                    "pid": PROFILE_PID,
                    "tid": thread_tid[name],
                    "ts": segment.start,
                    "dur": segment.length,
                    "args": args,
                }
            )
    for boundary in sorted(boundaries):
        counts = {state: 0 for state in WAIT_STATES}
        for segment in segments:
            if segment.start <= boundary < segment.end:
                counts[segment.state] += 1
        events.append(
            {
                "name": "threads per wait state",
                "ph": "C",
                "pid": PROFILE_PID,
                "tid": 0,
                "ts": boundary,
                "args": counts,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.profiler",
            "cycles": profiler.cycles_observed,
            "time_unit": "1 cycle = 1 us",
        },
    }


def dumps_profile_chrome_trace(profiler) -> str:
    document = profile_chrome_trace(profiler)
    validate_chrome_trace(document)
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def write_profile_chrome_trace(profiler, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dumps_profile_chrome_trace(profiler))


# -- Prometheus ------------------------------------------------------------------------


def prometheus_text(telemetry: Telemetry) -> str:
    return telemetry.finalize().render_prometheus()


def write_prometheus(telemetry: Telemetry, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(prometheus_text(telemetry))


# -- JSON/CSV summary ------------------------------------------------------------------


def summary_dict(telemetry: Telemetry) -> dict:
    """The aggregate summary: threads, controllers, dependencies, metrics."""
    registry: MetricsRegistry = telemetry.finalize()
    threads = {}
    for name in telemetry.thread_names():
        stats = telemetry._executors[name].stats
        threads[name] = {
            "cycles": stats.cycles,
            "stall_cycles": stats.stall_cycles,
            "advances": stats.advances,
            "rounds_completed": stats.rounds_completed,
            "utilization": round(stats.utilization, 6),
        }
    controllers = {}
    for name in telemetry.controller_names():
        controller = telemetry._controllers[name]
        controllers[name] = {
            "latency_samples": len(controller.latency_samples),
            "pending_blocked": len(controller.blocked),
        }
    dependencies = {
        f"{bram}/{dep_id}": stats
        for (bram, dep_id), stats in telemetry.spans.wait_statistics().items()
    }
    return {
        "schema": "repro.obs.summary/1",
        "cycles": telemetry.cycles_observed,
        "events": len(telemetry.events),
        "spans": {
            "total": len(telemetry.spans.spans),
            "complete": len(telemetry.spans.complete_spans()),
        },
        "threads": threads,
        "controllers": controllers,
        "dependencies": dependencies,
        "metrics": registry.to_dict(),
    }


def dumps_summary(telemetry: Telemetry) -> str:
    return (
        json.dumps(summary_dict(telemetry), sort_keys=True, indent=2) + "\n"
    )


def write_summary_json(telemetry: Telemetry, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dumps_summary(telemetry))


def write_summary_csv(telemetry: Telemetry, path: str) -> None:
    """Flat CSV of every metric sample: name, type, labels, value."""
    registry = telemetry.finalize()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", "type", "labels", "value"])
        for metric in registry:
            for key, value in metric.samples():
                labels = ";".join(
                    f"{n}={v}" for n, v in zip(metric.label_names, key)
                )
                if metric.type_name == "histogram":
                    writer.writerow(
                        [metric.name, "histogram", labels, value.total]
                    )
                    writer.writerow(
                        [f"{metric.name}_sum", "histogram", labels, value.sum]
                    )
                else:
                    writer.writerow(
                        [metric.name, metric.type_name, labels, value]
                    )


# -- benchmark artifact ----------------------------------------------------------------


def write_bench_json(path: str, payload: dict) -> None:
    """Write a ``BENCH_*.json`` artifact with stable formatting."""
    with open(path, "w") as handle:
        handle.write(json.dumps(payload, sort_keys=True, indent=2) + "\n")
