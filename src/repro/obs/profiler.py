"""The cycle-attribution profiler.

:class:`CycleProfiler` rides the telemetry observer seams and
attributes **every simulated cycle of every thread** to exactly one
wait state (see :mod:`repro.obs.attribution`):

* after each executed cycle (``on_cycle``) it polls the per-executor
  ``stats.advances`` counter — a delta means the FSM took a transition
  this cycle (*executing*); otherwise the thread held, and the
  controllers' ``blocked`` taps say why: a blocked request is handed to
  its controller's ``classify_wait`` (each organization mirrors its own
  grantability rules), and a thread with no pending request anywhere is
  *idle* (terminal hold, empty receive wait, or a fault-dropped
  request);
* for a wheel-kernel idle skip (``on_idle_cycles``) the same
  classification is booked ``count`` times in one call: during a skip
  every executor is parked and every blocked set is frozen, so the
  per-cycle classification is constant — batch booking equals the
  reference kernel's one-by-one accrual, cell for cell and segment for
  segment.

Conservation is structural: exactly one state is booked per thread per
simulated cycle, so each thread's attributed total equals its
``stats.cycles``.  ``conservation_report`` checks it; the differential
suite asserts wheel == reference byte-for-byte.

Only *top-level* kernel controllers are scanned for blocked requests:
a fabric re-asserts delivered requests at its banks every cycle under
the same client names, so scanning banks too would double-classify —
instead :meth:`repro.fabric.MemoryFabric.classify_wait` delegates to
the owning bank, keeping the bank-resolution in the site label.
"""

from __future__ import annotations

import csv
import io

from .attribution import (
    EXECUTING,
    IDLE,
    NO_SITE,
    WAIT_STATES,
    AttributionLedger,
    Segment,
)

#: Versioned schema tag of :func:`breakdown_dict` / ``--breakdown-json``.
PROFILE_SCHEMA = "repro.obs.profile/1"

#: Singleton classification tuples for the thread-local states: open
#: runs carry their classification tuple, so "same classification as
#: last cycle" is one identity check in the hot loop.
_EXEC_CLASS = (EXECUTING, NO_SITE, NO_SITE)
_IDLE_CLASS = (IDLE, NO_SITE, NO_SITE)

__all__ = [
    "CycleProfiler",
    "PROFILE_SCHEMA",
    "attach_profiler",
    "breakdown_csv",
    "breakdown_dict",
    "merge_profiles",
    "render_breakdown",
]


class CycleProfiler:
    """Exclusive per-thread cycle accounting over one simulation.

    The per-cycle path stays inside the telemetry overhead budget by
    buffering one *open run* per thread — ``[classification, start]`` —
    which extends *implicitly*: every attributed cycle advances the
    shared :attr:`_end` cursor, so an unchanged classification costs one
    identity check and nothing else.  The ledger is touched only when a
    thread's classification changes; reading :attr:`ledger` flushes the
    buffers first, so every report sees exact totals."""

    def __init__(self) -> None:
        self._ledger = AttributionLedger()
        self._executors: list = []
        self._controllers: list = []
        self._single = None
        #: per-thread hot-loop record: [name, stats, last_advances,
        #: open_run, classify_memo] where open_run is
        #: [classification, start] (the run implicitly extends to
        #: ``_end``) and classify_memo is (request, epoch,
        #: classification) — exact because stalled executors re-assert
        #: the same request object and every guard-state mutation bumps
        #: the controller's classify_epoch
        self._threads: list = []
        #: per-controller change signature: [controller, last
        #: blocked_by_client object, last classify_epoch].  Controllers
        #: keep the *same* view object across cycles with unchanged
        #: blocked membership, so identity + epoch equality over all
        #: controllers proves no stalled thread's classification moved.
        self._sigs: list = []
        #: one past the last cycle attributed so far — the shared end of
        #: every open run (both kernels attribute cycles in order, so
        #: all open runs end together)
        self._end = 0
        #: the cycle attribution started at (captured at bind)
        self._begin = 0

    @property
    def cycles_observed(self) -> int:
        """Cycles attributed so far — derived, so the per-cycle path
        keeps no separate counter."""
        return self._end - self._begin

    @property
    def ledger(self) -> AttributionLedger:
        """The attribution ledger, with all open runs flushed in."""
        self.flush()
        return self._ledger

    def flush(self) -> None:
        """Fold the open run buffers into the ledger (idempotent; safe
        mid-simulation — a continuing run re-merges into its segment)."""
        book = self._ledger.book
        end = self._end
        for record in self._threads:
            run = record[3]
            if run is not None:
                state, site, port = run[0]
                book(record[0], state, site, port, run[1], end - run[1])
                record[3] = None

    # -- wiring ---------------------------------------------------------------------

    def bind(self, kernel) -> "CycleProfiler":
        """Capture the kernel's executors and *top-level* controllers
        (sorted by name — the classification tie-break order)."""
        self._executors = [
            (name, kernel.executors[name]) for name in sorted(kernel.executors)
        ]
        self._controllers = [
            (name, kernel.controllers[name])
            for name in sorted(kernel.controllers)
        ]
        # Single-controller kernels (the common case) read the
        # controller's own client-indexed blocked view with no per-cycle
        # merge at all.
        self._single = (
            self._controllers[0][1] if len(self._controllers) == 1 else None
        )
        # stats objects live as long as their executor: hoist them (and
        # all per-thread mutable state) into one record per thread so
        # the per-cycle loop runs without dict lookups.
        self._threads = [
            [name, executor.stats, executor.stats.advances, None, None]
            for name, executor in self._executors
        ]
        self._sigs = [
            [controller, None, -1] for __, controller in self._controllers
        ]
        self._begin = self._end = kernel.cycle
        return self

    # -- per-cycle booking ------------------------------------------------------------

    def _blocked_map(self) -> dict:
        """client -> (controller, request), first occurrence winning in
        sorted-controller order (each controller's ``blocked_by_client``
        view is built from its sort_key-ordered blocked list)."""
        blocked: dict = {}
        for __, controller in self._controllers:
            for client, request in controller.blocked_by_client.items():
                if client not in blocked:
                    blocked[client] = (controller, request)
        return blocked

    def on_cycle(self, cycle: int, kernel) -> None:
        # Steady scan: if every controller kept the same blocked view
        # *object* (identity) and classify epoch since last cycle, then
        # no stalled thread's classification can have changed — each
        # such thread's open run extends implicitly for free.
        single = self._single
        if single is not None:
            sig = self._sigs[0]
            view = single.blocked_by_client
            epoch = single.classify_epoch
            steady = sig[1] is view and sig[2] == epoch
            if not steady:
                sig[1] = view
                sig[2] = epoch
        else:
            steady = True
            for sig in self._sigs:
                controller = sig[0]
                view = controller.blocked_by_client
                epoch = controller.classify_epoch
                if sig[1] is not view or sig[2] != epoch:
                    sig[1] = view
                    sig[2] = epoch
                    steady = False
        blocked = None
        for record in self._threads:
            advances = record[1].advances
            if advances != record[2]:
                record[2] = advances
                classification = _EXEC_CLASS
                run = record[3]
            else:
                run = record[3]
                if steady and run is not None and run[0] is not _EXEC_CLASS:
                    # Already stalled or idle last cycle, and nothing in
                    # any controller moved: same classification holds.
                    # (A thread that *was* executing needs a fresh look —
                    # it may have gone idle without touching any map.)
                    continue
                if blocked is None:
                    # Resolved lazily: cycles where every thread
                    # advanced never touch the controllers at all.  A
                    # single controller's own client-indexed view is
                    # used as-is; several get merged (first in
                    # sorted-controller order wins).
                    blocked = (
                        single.blocked_by_client
                        if single is not None
                        else self._blocked_map()
                    )
                entry = blocked.get(record[0])
                if entry is None:
                    classification = _IDLE_CLASS
                else:
                    if single is not None:
                        controller, request = single, entry
                    else:
                        controller, request = entry
                    # Stalled executors re-assert the *same* frozen
                    # request object cycle over cycle, so identity +
                    # classify_epoch is an exact memo key (a fresh
                    # equal-valued object just reclassifies).
                    cached = record[4]
                    if (
                        cached is not None
                        and cached[0] is request
                        and cached[1] == controller.classify_epoch
                    ):
                        classification = cached[2]
                    else:
                        classification = controller.classify_wait(request)
                        record[4] = (
                            request,
                            controller.classify_epoch,
                            classification,
                        )
            if run is not None:
                # Identity first (the memo hands back the same tuple
                # between epoch bumps); fall back to equality so an
                # epoch bump with an unchanged answer extends too.
                prev = run[0]
                if prev is classification:
                    continue
                if prev == classification:
                    run[0] = classification
                    continue
                state, site, port = prev
                self._ledger.book(
                    record[0], state, site, port, run[1], cycle - run[1]
                )
            record[3] = [classification, cycle]
        self._end = cycle + 1

    def on_idle_cycles(self, first_cycle: int, count: int, kernel) -> None:
        """Batch booking for a wheel-kernel skip: every executor is
        parked (advances frozen) and blocked sets cannot move, so the
        classification at ``first_cycle`` holds for all ``count``
        cycles."""
        blocked = self._blocked_map()
        ledger_book = self._ledger.book
        for record in self._threads:
            entry = blocked.get(record[0])
            if entry is not None:
                classification = entry[0].classify_wait(entry[1])
            else:
                classification = _IDLE_CLASS
            run = record[3]
            if run is not None:
                prev = run[0]
                if prev is classification or prev == classification:
                    continue
                state, site, port = prev
                ledger_book(
                    record[0], state, site, port, run[1],
                    first_cycle - run[1],
                )
            record[3] = [classification, first_cycle]
        self._end = first_cycle + count

    # -- reports --------------------------------------------------------------------

    def conservation_report(self) -> dict:
        """Per-thread attributed vs. simulated cycles (must be equal)."""
        totals = self.ledger.thread_totals()
        threads = {}
        ok = True
        for name, executor in self._executors:
            attributed = totals.get(name, 0)
            simulated = executor.stats.cycles
            if attributed != simulated:
                ok = False
            threads[name] = {"attributed": attributed, "simulated": simulated}
        return {"ok": ok, "threads": threads}

    def timeline(self, thread: str) -> list[Segment]:
        return list(self.ledger.timelines.get(thread, []))


def breakdown_dict(profiler: CycleProfiler) -> dict:
    """The versioned JSON breakdown (zero-filled state axes, sorted
    cells) — byte-deterministic once serialized with sorted keys."""
    per_thread = profiler.ledger.thread_state_totals()
    threads = {}
    for name, __ in profiler._executors:
        states = per_thread.get(name, {})
        threads[name] = {
            "total": sum(states.values()),
            "states": {state: states.get(state, 0) for state in WAIT_STATES},
        }
    state_totals = profiler.ledger.state_totals()
    sites: dict[str, dict[str, int]] = {}
    for (site, state), count in sorted(profiler.ledger.site_state_totals().items()):
        if site == NO_SITE:
            continue
        sites.setdefault(site, {})[state] = count
    return {
        "schema": PROFILE_SCHEMA,
        "cycles": profiler.cycles_observed,
        "threads": threads,
        "states": {state: state_totals.get(state, 0) for state in WAIT_STATES},
        "sites": sites,
        "cells": [
            {
                "thread": thread,
                "state": state,
                "site": site,
                "port": port,
                "cycles": count,
            }
            for (thread, state, site, port), count in profiler.ledger.sorted_cells()
        ],
        "conservation": profiler.conservation_report(),
    }


def breakdown_csv(profiler: CycleProfiler) -> str:
    """Flat CSV of the attribution cells (sorted, deterministic)."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["thread", "state", "site", "port", "cycles"])
    for (thread, state, site, port), count in profiler.ledger.sorted_cells():
        writer.writerow([thread, state, site, port, count])
    return out.getvalue()


def render_breakdown(profiler: CycleProfiler, top: int = 0) -> str:
    """Human-readable per-thread table plus the hottest wait cells."""
    lines = [f"cycle attribution over {profiler.cycles_observed} cycles"]
    per_thread = profiler.ledger.thread_state_totals()
    conservation = profiler.conservation_report()
    header = "thread".ljust(12) + "".join(
        state.rjust(18) for state in WAIT_STATES
    )
    lines.append(header)
    for name, __ in profiler._executors:
        states = per_thread.get(name, {})
        row = name.ljust(12) + "".join(
            str(states.get(state, 0)).rjust(18) for state in WAIT_STATES
        )
        lines.append(row)
    totals = profiler.ledger.state_totals()
    lines.append(
        "TOTAL".ljust(12)
        + "".join(str(totals.get(state, 0)).rjust(18) for state in WAIT_STATES)
    )
    status = "ok" if conservation["ok"] else "VIOLATED"
    lines.append(f"conservation: {status} (attributed == simulated per thread)")
    wait_cells = [
        (count, key)
        for key, count in profiler.ledger.sorted_cells()
        if key[1] not in (EXECUTING, IDLE)
    ]
    if top > 0 and wait_cells:
        wait_cells.sort(key=lambda item: (-item[0], item[1]))
        lines.append(f"top {min(top, len(wait_cells))} wait cells:")
        for count, (thread, state, site, port) in wait_cells[:top]:
            lines.append(
                f"  {thread}: {state} at {site}:{port} for {count} cycles"
            )
    return "\n".join(lines) + "\n"


def merge_profiles(profiles: list[dict]) -> dict:
    """Fold per-run breakdown dicts (or lighter ``states``/``sites``
    payloads) into one aggregate — pure commutative addition over sorted
    keys, so the merge is byte-identical for any arrival order once the
    inputs are index-sorted."""
    states: dict[str, int] = {state: 0 for state in WAIT_STATES}
    sites: dict[str, dict[str, int]] = {}
    cycles = 0
    for profile in profiles:
        cycles += profile.get("cycles", 0)
        for state, count in profile.get("states", {}).items():
            states[state] = states.get(state, 0) + count
        for site, per_state in profile.get("sites", {}).items():
            bucket = sites.setdefault(site, {})
            for state, count in per_state.items():
                bucket[state] = bucket.get(state, 0) + count
    return {
        "cycles": cycles,
        "runs": len(profiles),
        "states": states,
        "sites": {site: dict(sorted(per.items())) for site, per in sorted(sites.items())},
    }


def attach_profiler(target, **kwargs):
    """Attach telemetry with profiling enabled; returns the profiler.

    ``kwargs`` are forwarded to :class:`~repro.obs.tracer.Telemetry`
    (the telemetry object itself lands on ``target.telemetry``)."""
    from .tracer import Telemetry

    telemetry = Telemetry(profile=True, **kwargs).attach(target)
    return telemetry.profiler
