"""Structured trace events — the raw record the telemetry layer keeps.

Every event is a slotted dataclass stamped with the simulation cycle it
occurred in (slotted, not frozen: a frozen dataclass pays
``object.__setattr__`` per field on construction, which the traced hot
path cannot afford; treat events as immutable by convention).  Events are appended in kernel order by a deterministic
simulation, so two runs with the same seed produce identical event lists
— the property the byte-identical exporters rely on.

The event kinds follow the dependency lifecycle the paper's §3 describes:
a producer write arms the guard (``DEP_ARMED``), blocked consumers wait,
each granted consumer read decrements the outstanding counter
(``DEP_DECREMENT``), and the cycle closes when the counter reaches zero
(``DEP_COMPLETE``).  Watchdog detections and recoveries from
:mod:`repro.faults` ride the same stream so traces correlate faults with
their symptoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class EventKind:
    """Namespaced string constants for :attr:`TraceEvent.kind`."""

    SUBMIT = "submit"
    GRANT = "grant"
    DEP_ARMED = "dep-armed"
    DEP_DECREMENT = "dep-decrement"
    DEP_COMPLETE = "dep-complete"
    OVERRIDE = "override"
    CHAIN_EVENT = "chain-event"
    WATCHDOG = "watchdog"
    RECOVERY = "recovery"
    ROUND_COMPLETE = "round-complete"
    #: a cross-bank guarded request released into the fabric crossbar
    DEP_ROUTED = "dep-routed"
    #: a cross-bank arm notification applied at its home bank
    DEP_NOTIFIED = "dep-notified"

    #: every kind, in a stable order (docs + validation)
    ALL = (
        SUBMIT,
        GRANT,
        DEP_ARMED,
        DEP_DECREMENT,
        DEP_COMPLETE,
        OVERRIDE,
        CHAIN_EVENT,
        WATCHDOG,
        RECOVERY,
        ROUND_COMPLETE,
        DEP_ROUTED,
        DEP_NOTIFIED,
    )


@dataclass(slots=True)
class TraceEvent:
    """One structured cycle event.  Treat as immutable: events are
    shared between the tracer's views and the exporters.

    Attributes:
        cycle: Simulation cycle the event occurred in.
        kind: One of :class:`EventKind`.
        source: Originating component — a BRAM/controller name, a thread
            name (for ``round-complete``), or ``"system"``.
        client: Requesting thread, when the event concerns a request.
        port: Wrapper port (A/B/C/D/G) of the request, if any.
        address: BRAM word address of the request, if any.
        dep_id: Dependency identifier, for lifecycle events.
        value: Kind-specific integer payload — wait cycles for ``grant``,
            outstanding count for ``dep-armed``/``dep-decrement``,
            blocked cycles for ``watchdog``.
        detail: Free-form human-readable annotation.
    """

    cycle: int
    kind: str
    source: str
    client: Optional[str] = None
    port: Optional[str] = None
    address: Optional[int] = None
    dep_id: Optional[str] = None
    value: Optional[int] = None
    detail: Optional[str] = None

    def describe(self) -> str:
        parts = [f"cycle {self.cycle}: {self.kind} @ {self.source}"]
        if self.client:
            parts.append(f"client={self.client}")
        if self.port:
            parts.append(f"port={self.port}")
        if self.address is not None:
            parts.append(f"addr={self.address}")
        if self.dep_id:
            parts.append(f"dep={self.dep_id}")
        if self.value is not None:
            parts.append(f"value={self.value}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)
