"""Fabric-side inputs to the model: crossbar terms and the area bridge.

Performance-wise the fabric contributes two closed-form terms (both
folded into :mod:`~repro.model.organizations`): one link transit per
memory access on a thread's loop, and the bank-parallel serialization
bound ``grants / (banks x batch)``.  This module owns the **area**
coupling: a sweep point's third Pareto objective is real slice area, and
the model must not pay netlist-generation cost per evaluated
configuration (the evaluation budget is ~10 us/config).  Area only
depends on the *structural* axes — organization, consumer count,
dependency-list capacity, bank count — not on link latency, batch size,
or traffic, so the bridge compiles one design per unique structural key
through the ordinary flow (:func:`repro.flow.compile_design`, the same
netlists the paper's Tables 1-2 rows come from), memoizes the slice
count, and lets millions of sweep evaluations share a handful of
compiles.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.advisor import Organization
from .parameters import ModelParameters


def crossbar_transit(params: ModelParameters, accesses: int) -> float:
    """Link cycles a loop with ``accesses`` memory ops spends in transit."""
    if not params.fabric:
        return 0.0
    return float(accesses * params.link_latency)


def serialization_bound(params: ModelParameters) -> float:
    """Cycles per round the guarded-port grant capacity enforces."""
    grants = params.consumers * params.consumer_accesses + 1
    if not params.fabric:
        return float(grants)
    return grants / (params.banks * params.batch_size)


@lru_cache(maxsize=512)
def _area_slices(
    organization: str, consumers: int, deplist_entries: int, banks: int
) -> int:
    """Slice area of the synchronization wrapper(s) for one structural key.

    Compiles the forwarding family member with ``consumers`` consumers
    through the real flow and sums the wrapper area (plus the crossbar
    when a fabric is requested) — the synchronization cost the paper's
    area tables isolate, excluding the thread datapaths.
    """
    from ..flow import compile_design  # deferred: the flow imports us back
    from ..net import forwarding_source

    design = compile_design(
        forwarding_source(consumers),
        name=f"model_area_{organization}_{consumers}",
        organization=Organization(organization),
        deplist_entries=deplist_entries,
        num_banks=banks,
    )
    if design.fabric is not None:
        return design.fabric_area_report().total.slices
    return sum(
        design.area_report(bram).slices
        for bram in design.memory_map.bram_names
    )


def area_slices(params: ModelParameters) -> int:
    """Memoized wrapper/fabric slice area for a sweep point."""
    return _area_slices(
        params.organization.value,
        params.consumers,
        params.deplist_entries,
        params.banks,
    )
