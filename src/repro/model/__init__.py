"""Analytical performance model: closed-form prediction and instant DSE.

The paper's core claim is that memory-centric synchronization cost is
set by a small number of compile-time parameters — organization,
consumer count, loop shapes, fabric configuration, traffic.  This
package turns that claim into an executable artifact:

* :mod:`~repro.model.parameters` — :class:`ModelParameters` and its
  extraction from a compiled design (FSM loop analysis);
* :mod:`~repro.model.organizations` — per-organization saturated-round
  closed forms (period, per-thread wait-state booking);
* :mod:`~repro.model.fabric` — crossbar/serialization terms and the
  memoized bridge into the ``fpga`` area model;
* :mod:`~repro.model.predict` — end metrics (throughput, consumer
  wait, end-to-end latency, wait-state fractions) at a traffic rate;
* :mod:`~repro.model.validate` — replay against the simulator with
  signed per-metric errors under a stated bound;
* :mod:`~repro.model.pareto` — analytical grid sweeps, Pareto
  frontier, and predict-prune selection;
* :mod:`~repro.model.cli` — ``python -m repro predict``.

Accuracy envelope and derivations: docs/performance_model.md.
"""

from .fabric import area_slices, crossbar_transit, serialization_bound
from .organizations import RoundModel, saturated_round
from .parameters import ModelParameters, extract_parameters
from .pareto import (
    DEFAULT_MARGIN,
    SweepPoint,
    SweepResult,
    evaluate_grid,
    frontier_objectives,
    pareto_frontier,
    prune,
    prune_objectives,
    run_sweep,
    sweep_grid,
)
from .predict import PREDICTION_SCHEMA, Prediction, predict
from .validate import (
    ERROR_BOUND,
    VALIDATION_SCHEMA,
    MetricError,
    ValidationReport,
    validate,
)

__all__ = [
    "ModelParameters",
    "extract_parameters",
    "RoundModel",
    "saturated_round",
    "area_slices",
    "crossbar_transit",
    "serialization_bound",
    "Prediction",
    "predict",
    "PREDICTION_SCHEMA",
    "ValidationReport",
    "MetricError",
    "validate",
    "ERROR_BOUND",
    "VALIDATION_SCHEMA",
    "SweepPoint",
    "SweepResult",
    "sweep_grid",
    "evaluate_grid",
    "pareto_frontier",
    "frontier_objectives",
    "prune",
    "prune_objectives",
    "run_sweep",
    "DEFAULT_MARGIN",
]
