"""Assemble the closed-form round into end-metric predictions.

One evaluation is pure arithmetic over :class:`ModelParameters` — no
simulation, no netlists — which is what makes analytical design-space
exploration feasible at >1e5 configurations/second.

The traffic model is a seeded Bernoulli arrival per cycle at rate
``lambda`` (exactly what ``--traffic-rate`` drives in the simulator).
With the saturated round period ``T``:

* utilization      ``rho = min(1, lambda * T)``;
* **throughput**   ``X = min(lambda, 1/T)`` packets/cycle — arrival-bound
  below saturation, service-bound above;
* **consumer wait** ``w = 1/X - (consumer_loop - 1)``: one round
  completes every ``1/X`` cycles and a consumer re-posts its guarded
  read ``consumer_loop - 1`` cycles after the previous grant, so it
  waits out the rest of the inter-round gap.  A single identity covers
  both regimes — at saturation it reduces to the grant-to-grant form
  ``T - consumer_loop + 1`` — and it was verified against the
  simulator across organizations, bank counts, and rates.  (Note the
  direction: *sparser* traffic means *longer* consumer waits — the
  read is posted early and sits blocked until a packet arrives.  The
  monotone-increasing latency metric is the end-to-end one below.)
* **wait-state fractions**: each thread's booked cycles-per-round scale
  by the round rate ``X``; the unbooked residual is ``idle`` for the
  producer (no packet pending) and ``blocked-read`` for consumers.
  Fractions therefore conserve to 1 by construction in both regimes.
* **end-to-end latency** = queueing wait + service: a Geo/D/1-style
  waiting-time term ``rho * T / (2 * (1 - rho))`` plus the producer's
  service path; unbounded at saturation (reported as ``None``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from .organizations import (
    BLOCKED_READ,
    EXECUTING,
    IDLE,
    RoundModel,
    _saturated_round_validated,
)
from .parameters import ModelParameters

#: Schema tag of the canonical ``--summary-json`` document.
PREDICTION_SCHEMA = "repro.model.prediction/1"


@dataclass(frozen=True)
class Prediction:
    """All predicted metrics for one configuration."""

    params: ModelParameters
    #: saturated round period, cycles/packet
    period: float
    #: rho = offered load against the round period, clamped to [0, 1]
    utilization: float
    #: sustained packets/cycle
    throughput: float
    #: mean guarded-read wait of a consumer, cycles
    consumer_wait: float
    #: producer guard-stall cycles per round
    producer_guard_stall: float
    #: end-to-end packet latency (None when saturated: unbounded queue)
    e2e_latency: Optional[float]
    #: wait-state fractions over all threads' cycles (sums to 1)
    fractions: dict

    def summary_dict(self) -> dict:
        """Canonical JSON-ready document (byte-deterministic)."""
        p = self.params
        return {
            "schema": PREDICTION_SCHEMA,
            "config": {
                "organization": p.organization.value,
                "consumers": p.consumers,
                "producer_loop": p.producer_loop,
                "consumer_loop": p.consumer_loop,
                "producer_accesses": p.producer_accesses,
                "consumer_accesses": p.consumer_accesses,
                "banks": p.banks,
                "link_latency": p.link_latency,
                "batch_size": p.batch_size,
                "offchip_accesses": p.offchip_accesses,
                "offchip_latency": p.offchip_latency,
                "deplist_entries": p.deplist_entries,
                "traffic_rate": _round(p.traffic_rate),
            },
            "period_cycles": _round(self.period),
            "utilization": _round(self.utilization),
            "throughput_packets_per_cycle": _round(self.throughput),
            "consumer_wait_cycles": _round(self.consumer_wait),
            "producer_guard_stall_cycles": _round(
                self.producer_guard_stall
            ),
            "e2e_latency_cycles": _round(self.e2e_latency),
            "fractions": {
                state: _round(value)
                for state, value in sorted(self.fractions.items())
            },
        }

    def summary_json(self) -> str:
        """The canonical serialization: sorted keys, fixed rounding."""
        return json.dumps(
            self.summary_dict(), indent=2, sort_keys=True
        ) + "\n"


def _round(value):
    return None if value is None else round(float(value), 6)


def predict(params: ModelParameters) -> Prediction:
    """Evaluate the model for one configuration."""
    p = params.validate()
    model = _saturated_round_validated(p)
    period = model.period
    rate = p.traffic_rate

    if rate <= 0.0:
        # Degenerate no-traffic case: everything sits waiting forever.
        return Prediction(
            params=p,
            period=period,
            utilization=0.0,
            throughput=0.0,
            consumer_wait=0.0,
            producer_guard_stall=0.0,
            e2e_latency=None,
            fractions=_fractions(p, model, throughput=0.0),
        )

    rho = min(1.0, rate * period)
    throughput = min(rate, 1.0 / period)
    wait = 1.0 / throughput - (p.consumer_loop - 1)
    if rho >= 1.0:
        e2e = None  # saturated: the arrival queue grows without bound
    else:
        e2e = (rho * period) / (2.0 * (1.0 - rho)) + model.service
    return Prediction(
        params=p,
        period=period,
        utilization=rho,
        throughput=throughput,
        consumer_wait=wait,
        producer_guard_stall=model.producer.get("guard-stall", 0.0),
        e2e_latency=e2e,
        fractions=_fractions(p, model, throughput),
    )


def _fractions(
    params: ModelParameters, model: RoundModel, throughput: float
) -> dict:
    """Wait-state fractions over all threads, conserving to exactly 1."""
    threads = params.threads
    totals: dict = {}
    for booked, residual_state in (
        (model.producer, IDLE),
        *((consumer, BLOCKED_READ) for consumer in model.consumers),
    ):
        accounted = 0.0
        if throughput > 0.0:
            for state, cycles in booked.items():
                share = throughput * cycles
                if share > 0.0:
                    totals[state] = totals.get(state, 0.0) + share
                    accounted += share
        # Below saturation the rest of this thread's time is spent with
        # no round in flight.
        if accounted < 1.0:
            totals[residual_state] = (
                totals.get(residual_state, 0.0) + (1.0 - accounted)
            )
    fractions = {
        state: value / threads
        for state, value in totals.items()
        if value > 0.0
    }
    fractions.setdefault(EXECUTING, 0.0)
    return fractions
