"""Analytical design-space sweeps and Pareto pruning.

The point of a validated closed-form model is that a design-space grid
stops costing simulations: every point is ~10 microseconds of
arithmetic, so the sweep evaluates the *whole* grid analytically,
computes the Pareto frontier over (throughput up, consumer wait down,
slice area down), and — in predict-prune mode — hands only the frontier
plus a safety margin to the simulator for confirmation.  The margin
absorbs the model's stated error (docs/performance_model.md): a point
the model places within ``margin`` of non-dominated could be on the
true frontier, so it is simulated too.

Everything here is deterministic: the grid enumerates in sorted axis
order and ties break on the point index, so the selected prune set is
byte-stable across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..core.advisor import Organization
from .fabric import area_slices
from .parameters import ModelParameters
from .predict import Prediction, predict

#: Safety margin for predict-prune: a point whose objectives are within
#: this relative slack of escaping domination is treated as potentially
#: frontier and simulated.  Sized to the model's validated error bound.
DEFAULT_MARGIN = 0.15


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated grid configuration."""

    index: int
    params: ModelParameters
    prediction: Prediction
    area: int

    @property
    def objectives(self) -> tuple:
        """Minimization objectives: (-throughput, wait, area)."""
        return (
            -self.prediction.throughput,
            self.prediction.consumer_wait,
            float(self.area),
        )

    def row(self) -> dict:
        p = self.params
        return {
            "index": self.index,
            "organization": p.organization.value,
            "banks": p.banks,
            "link_latency": p.link_latency,
            "traffic_rate": round(p.traffic_rate, 6),
            "throughput": round(self.prediction.throughput, 6),
            "consumer_wait": round(self.prediction.consumer_wait, 6),
            "area_slices": self.area,
        }


@dataclass
class SweepResult:
    """The evaluated grid plus its predicted frontier."""

    points: list = field(default_factory=list)
    frontier: list = field(default_factory=list)  # indices into points
    pruned: list = field(default_factory=list)  # frontier + margin

    def to_dict(self) -> dict:
        return {
            "schema": "repro.model.sweep/1",
            "grid_size": len(self.points),
            "frontier": list(self.frontier),
            "pruned": list(self.pruned),
            "points": [point.row() for point in self.points],
        }


def sweep_grid(
    base: ModelParameters,
    *,
    organizations: Sequence[Organization] = tuple(Organization),
    banks: Sequence[int] = (1, 2, 4),
    link_latencies: Sequence[int] = (1, 2, 3),
    rates: Sequence[float] = (0.02, 0.9),
) -> list:
    """Enumerate the grid in sorted axis order (deterministic)."""
    grid = []
    for organization in sorted(organizations, key=lambda o: o.value):
        for bank_count in sorted(banks):
            for link in sorted(link_latencies):
                for rate in sorted(rates):
                    grid.append(
                        base.with_config(
                            organization=organization,
                            banks=bank_count,
                            link_latency=link,
                            traffic_rate=rate,
                        )
                    )
    return grid


def evaluate_grid(
    configs: Iterable[ModelParameters], *, with_area: bool = True
) -> list:
    """Predict every configuration (area memoized per structural key)."""
    points = []
    for index, params in enumerate(configs):
        points.append(
            SweepPoint(
                index=index,
                params=params,
                prediction=predict(params),
                area=area_slices(params) if with_area else 0,
            )
        )
    return points


def _dominates(a: tuple, b: tuple) -> bool:
    """Strict Pareto dominance on minimization tuples."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def frontier_objectives(objectives: Sequence[tuple]) -> list:
    """Indices of the non-dominated set over raw minimization tuples.

    The tuple-level primitive under :func:`pareto_frontier`, exported so
    other layers (:mod:`repro.campaign.prune`) can prune arbitrary
    matrices without adopting :class:`SweepPoint`.
    """
    frontier = []
    for i, point in enumerate(objectives):
        if not any(
            _dominates(other, point)
            for j, other in enumerate(objectives)
            if j != i
        ):
            frontier.append(i)
    return frontier


def pareto_frontier(points: Sequence[SweepPoint]) -> list:
    """Indices (into ``points``) of the non-dominated set, sorted."""
    return frontier_objectives([point.objectives for point in points])


def prune_objectives(
    objectives: Sequence[tuple],
    margin: float = DEFAULT_MARGIN,
    *,
    exact: Sequence[int] = (2,),
) -> list:
    """Indices worth simulating over raw minimization tuples: every
    point whose margin-relaxed objectives would be non-dominated.

    ``exact`` names the tuple positions that carry no model error (area,
    by default) and are therefore not relaxed.
    """
    exact_set = set(exact)
    keep = []
    for i, point in enumerate(objectives):
        relaxed = tuple(
            value if axis in exact_set else value - abs(value) * margin
            for axis, value in enumerate(point)
        )
        if not any(
            _dominates(other, relaxed)
            for j, other in enumerate(objectives)
            if j != i
        ):
            keep.append(i)
    return keep


def prune(
    points: Sequence[SweepPoint], margin: float = DEFAULT_MARGIN
) -> list:
    """Indices worth simulating: the predicted frontier plus every point
    whose error-relaxed objectives would be non-dominated."""
    return prune_objectives(
        [point.objectives for point in points], margin
    )


def run_sweep(
    base: ModelParameters,
    *,
    organizations: Sequence[Organization] = tuple(Organization),
    banks: Sequence[int] = (1, 2, 4),
    link_latencies: Sequence[int] = (1, 2, 3),
    rates: Sequence[float] = (0.02, 0.9),
    margin: float = DEFAULT_MARGIN,
    with_area: bool = True,
) -> SweepResult:
    """Evaluate the grid and mark its frontier and prune set."""
    configs = sweep_grid(
        base,
        organizations=organizations,
        banks=banks,
        link_latencies=link_latencies,
        rates=rates,
    )
    points = evaluate_grid(configs, with_area=with_area)
    return SweepResult(
        points=points,
        frontier=pareto_frontier(points),
        pruned=prune(points, margin),
    )
