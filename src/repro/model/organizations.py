"""Closed-form saturated-round models, one per memory organization.

The unit of prediction is the **steady-state round**: one producer loop
iteration that moves one packet through the guarded word and all of its
consumers.  At saturation (a packet always waiting) the system is
periodic, and the period ``T`` plus a per-thread booking of where each
thread's ``T`` cycles go — the same wait-state taxonomy the
cycle-attribution profiler uses — determines every macroscopic metric:

* sustained throughput  = 1 / T packets/cycle;
* mean consumer wait    = T - consumer_loop + 1  (a consumer re-posts its
  guarded read ``consumer_loop - 1`` cycles after the previous grant and
  is granted one cycle after the next produce, so it waits out the rest
  of the period plus the grant cycle — this identity holds for *all
  three* organizations and was verified cell-by-cell against the
  profiler's ledger);
* wait-state fractions  = booked cycles / T per thread.

**Arbitrated and event-driven** rounds are producer-paced: the period is
the producer's dominant loop plus one crossbar transit per memory access
when the wrapper sits behind a multi-bank fabric, saturating to the
port-1 serialization bound when consumers outnumber the cycles in the
loop.  The organizations differ only in how a consumer's stall is split
between arbitration loss (round-robin position ``k+1`` for the
arbitrated wrapper, a single schedule-slot miss for the event-driven
one) and blocked-read time.

**The lock baseline** adds the paper's §1 argument in numbers: every
guarded access costs an acquire/access/release transaction triple
through a single lock word, so the producer books a guard-stall that
grows with the consumer count and an arbitration-loss term for losing
the lock port to spinning consumers.  Past ``SPIN_STORM_THRESHOLD``
contenders the spin traffic itself saturates the lock port and the
period goes quadratic in the consumer count (the measured phase change:
three contenders pipeline through the three protocol steps, four do
not).  The quadratic regime is calibrated against the simulator and is
the least accurate part of the model — see docs/performance_model.md
for the validated envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.advisor import Organization
from .fabric import crossbar_transit, serialization_bound
from .parameters import ModelParameters

#: Lock-baseline protocol steps per guarded access (acquire, access,
#: release) — each is a lock-word transaction and, on a fabric, a
#: crossbar transit.
LOCK_PROTOCOL_STEPS = 3

#: Contenders past which the lock port saturates with spin probes and
#: the lock-baseline period goes quadratic (measured phase change).
SPIN_STORM_THRESHOLD = 4

#: Wait-state keys booked by the models (a subset of
#: ``repro.obs.attribution.WAIT_STATES``).
EXECUTING = "executing"
BLOCKED_READ = "blocked-read"
GUARD_STALL = "guard-stall"
ARBITRATION_LOSS = "arbitration-loss"
CROSSBAR_TRANSIT = "crossbar-transit"
OFFCHIP_LATENCY = "offchip-latency"
IDLE = "idle"


@dataclass(frozen=True)
class RoundModel:
    """One saturated steady-state round.

    ``producer`` and ``consumers[k]`` book each thread's cycles per round
    by wait state; both sum to ``period`` (the residual — idle for the
    producer, blocked-read for a consumer — is included), which is what
    makes the downstream fraction predictions conserve cycles by
    construction.
    """

    period: float
    producer: dict
    consumers: tuple
    #: mean guarded-read wait of one consumer (grant-to-grant identity)
    consumer_wait: float
    #: producer service path: receive-to-transmit cycles through the loop
    service: float


def _finish(period: float, booked: dict, residual_state: str) -> dict:
    """Book the round residual so the thread's cycles sum to ``period``."""
    residual = period - sum(booked.values())
    if residual > 1e-9:
        booked[residual_state] = booked.get(residual_state, 0.0) + residual
    return booked


#: Round models keyed by the rate-independent parameter tuple.  The
#: saturated round does not depend on ``traffic_rate``, so a sweep with
#: a dense rate axis recomputes nothing per rate — this is what keeps
#: ``predict`` above 1e5 evaluations/second.  Entries are frozen
#: :class:`RoundModel` instances, safe to share between callers.
_ROUND_CACHE: dict = {}


def saturated_round(params: ModelParameters) -> RoundModel:
    """The closed-form saturated round for ``params``."""
    p = params.validate()
    return _saturated_round_validated(p)


def _saturated_round_validated(p: ModelParameters) -> RoundModel:
    """The round for already-validated parameters (the hot path)."""
    key = (
        p.organization, p.consumers, p.producer_loop, p.consumer_loop,
        p.producer_accesses, p.consumer_accesses, p.banks,
        p.link_latency, p.batch_size, p.offchip_accesses,
        p.offchip_latency,
    )
    model = _ROUND_CACHE.get(key)
    if model is None:
        if len(_ROUND_CACHE) >= 65536:
            _ROUND_CACHE.clear()
        model = _ROUND_CACHE[key] = _compute_round(p)
    return model


def _compute_round(p: ModelParameters) -> RoundModel:
    link = p.link_latency if p.fabric else 0
    offchip = p.offchip_accesses * p.offchip_latency

    if p.organization is Organization.LOCK_BASELINE:
        return _lock_round(p, link, offchip)

    # -- arbitrated / event-driven -------------------------------------------
    xbar_p = crossbar_transit(p, p.producer_accesses)
    xbar_c = crossbar_transit(p, p.consumer_accesses)
    producer_path = p.producer_loop + xbar_p + offchip
    consumer_path = p.consumer_loop + xbar_c
    period = max(
        producer_path, consumer_path + 1, serialization_bound(p)
    )

    producer = _finish(
        period,
        {
            EXECUTING: float(p.producer_loop),
            CROSSBAR_TRANSIT: float(xbar_p),
            OFFCHIP_LATENCY: float(offchip),
            # Whatever the producer's own path does not cover it spends
            # stalled at the guarded write waiting for consumers (or for
            # its port grant behind their reads).
            GUARD_STALL: max(0.0, period - producer_path),
        },
        IDLE,
    )
    consumers = []
    for k in range(p.consumers):
        if p.organization is Organization.ARBITRATED:
            # Round-robin position: consumer k is granted k+1 cycles
            # after posting against the burst of simultaneous reads.
            arb = float(k + 1)
        else:
            # Modulo schedule: exactly one slot miss, any rank.
            arb = 1.0
        # A consumer cannot lose more cycles than the round leaves it
        # stalled — cap so the booking always conserves the period.
        stall_budget = max(0.0, period - consumer_path)
        consumers.append(
            _finish(
                period,
                {
                    EXECUTING: float(p.consumer_loop),
                    CROSSBAR_TRANSIT: float(xbar_c),
                    ARBITRATION_LOSS: min(arb, stall_budget),
                },
                BLOCKED_READ,
            )
        )

    return RoundModel(
        period=period,
        producer=producer,
        consumers=tuple(consumers),
        consumer_wait=period - p.consumer_loop + 1,
        service=producer_path,
    )


def _lock_round(
    p: ModelParameters, link: int, offchip: float
) -> RoundModel:
    """The lock-baseline round (see module docstring for the regimes)."""
    # Every producer access plus the lock word itself crosses the fabric.
    xbar_p = (p.producer_accesses + 1) * link
    # The producer's guarded write waits for every consumer's release
    # plus its own acquire to clear the lock word.
    guard = float(p.consumers + 1)
    # Lock-port round-robin losses: the fixed protocol pipeline depth
    # plus one loss per spinning contender (and the crossbar doubles the
    # in-flight window on a fabric).
    arb = 5.0 + p.consumers + (5.0 if p.fabric else 0.0)
    linear = p.producer_loop + guard + arb + xbar_p + offchip

    # Only the data access itself transits as a crossbar hop per read;
    # the acquire/release probes contend at the lock word and book as
    # arbitration loss (verified against the profiler's ledger cells).
    xbar_c = float(p.consumer_accesses * link)
    # A consumer whose own loop outlasts the lock protocol paces the
    # round instead (same consumer-path floor as the other
    # organizations) — without it the per-thread bookings would overrun
    # the period and the fractions would stop conserving.
    period = max(linear, p.consumer_loop + xbar_c + 1.0)
    if p.consumers >= SPIN_STORM_THRESHOLD:
        # Spin storm: with the 3-step protocol pipeline full, each extra
        # contender burns whole probe loops of everyone else's port
        # bandwidth — quadratic in the contender count (calibrated).
        storm = (
            (p.producer_loop - 1)
            + LOCK_PROTOCOL_STEPS * p.consumers
            + 2.5 * p.consumers * (p.consumers - 1)
            + xbar_p
            + offchip
        )
        if storm > period:
            guard += storm - period  # the excess is spent at the guard
            period = storm

    producer = _finish(
        period,
        {
            EXECUTING: float(p.producer_loop),
            CROSSBAR_TRANSIT: float(xbar_p),
            OFFCHIP_LATENCY: float(offchip),
            GUARD_STALL: guard,
            ARBITRATION_LOSS: arb,
        },
        IDLE,
    )
    consumers = []
    for k in range(p.consumers):
        # Spin losses while contending: one protocol pipeline per other
        # contender plus the round-robin offset of rank k (calibrated
        # against the profiler ledger at the validated operating points).
        arb_c = float(
            LOCK_PROTOCOL_STEPS * (p.consumers + k) + 2 - k
        )
        arb_c = min(
            arb_c, max(0.0, period - p.consumer_loop - xbar_c)
        )
        consumers.append(
            _finish(
                period,
                {
                    EXECUTING: float(p.consumer_loop),
                    CROSSBAR_TRANSIT: float(xbar_c),
                    ARBITRATION_LOSS: arb_c,
                },
                BLOCKED_READ,
            )
        )
    return RoundModel(
        period=period,
        producer=producer,
        consumers=tuple(consumers),
        consumer_wait=period - p.consumer_loop + 1,
        service=p.producer_loop + xbar_p + offchip + guard + arb,
    )
