"""``python -m repro predict`` — the analytical model's command line.

Three modes, mirroring the subsystem's three consumers:

* **single prediction** (default): compile a hic source, extract the
  model parameters, print the predicted metrics; ``--summary-json``
  writes the canonical byte-deterministic document;
* **``--sweep``**: evaluate a parameter grid analytically (organization
  x banks x link latency x traffic rate), print the Pareto frontier
  over throughput/wait/area, and optionally dump the whole grid;
* **``--validate``**: replay the model against the cycle-accurate
  simulator on the committed Figure-1 grid and fail (exit 1) if any
  enforced metric error exceeds the bound.

Out-of-range inputs die with the structured
:class:`~repro.core.errors.ParameterError` (exit 2), not a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..core.advisor import Organization
from ..core.errors import ControllerError
from ..hic.errors import HicError
from .parameters import extract_parameters
from .pareto import DEFAULT_MARGIN, run_sweep
from .predict import predict
from .validate import ERROR_BOUND, validate


def _predict_parser() -> argparse.ArgumentParser:
    from ..flow import DEFAULT_KERNEL, SIMULATION_KERNELS

    parser = argparse.ArgumentParser(
        prog="python -m repro predict",
        description=(
            "Closed-form performance prediction from compile-time "
            "parameters (no simulation); see docs/performance_model.md."
        ),
    )
    parser.add_argument(
        "source",
        nargs="?",
        help=(
            "hic source file (optional with --validate, which defaults "
            "to the Figure-1 forwarding design)"
        ),
    )
    parser.add_argument(
        "--organization",
        choices=[org.value for org in Organization],
        default=Organization.ARBITRATED.value,
        help="memory organization to predict (default: arbitrated)",
    )
    parser.add_argument(
        "--banks",
        type=int,
        default=1,
        metavar="N",
        help="fabric bank count (>= 1; default: 1)",
    )
    parser.add_argument(
        "--link-latency", type=int, default=1, metavar="CYCLES",
        help="crossbar link latency (default: 1)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=1, metavar="N",
        help="requests a bank accepts per cycle (default: 1)",
    )
    parser.add_argument(
        "--offchip-latency", type=int, default=0, metavar="CYCLES",
        help="extra cycles per off-chip access (default: 0)",
    )
    parser.add_argument(
        "--rate", type=float, default=1.0, metavar="P",
        help=(
            "Bernoulli traffic rate in [0, 1]; 1.0 = back-to-back "
            "(default: 1.0)"
        ),
    )
    parser.add_argument(
        "--deplist-entries", type=int, default=4,
        help="dependency-list capacity (area model input)",
    )
    parser.add_argument(
        "--summary-json", metavar="FILE",
        help="write the canonical prediction/sweep/validation JSON",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="evaluate the parameter grid and print the Pareto frontier",
    )
    parser.add_argument(
        "--sweep-banks", type=int, nargs="+", default=[1, 2, 4],
        metavar="N", help="bank counts for --sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--sweep-links", type=int, nargs="+", default=[1, 2, 3],
        metavar="L", help="link latencies for --sweep (default: 1 2 3)",
    )
    parser.add_argument(
        "--sweep-rates", type=float, nargs="+", default=[0.02, 0.9],
        metavar="P", help="traffic rates for --sweep (default: 0.02 0.9)",
    )
    parser.add_argument(
        "--margin", type=float, default=DEFAULT_MARGIN,
        help=(
            "predict-prune safety margin around the frontier "
            f"(default: {DEFAULT_MARGIN})"
        ),
    )
    parser.add_argument(
        "--validate", action="store_true",
        help=(
            "replay the model against the simulator on the Figure-1 "
            "grid; exit 1 if any enforced error exceeds --bound"
        ),
    )
    parser.add_argument(
        "--bound", type=float, default=ERROR_BOUND,
        help=f"validation error bound (default: {ERROR_BOUND})",
    )
    parser.add_argument(
        "--kernel", choices=list(SIMULATION_KERNELS), default=DEFAULT_KERNEL,
        help=f"simulation backend for --validate (default: {DEFAULT_KERNEL})",
    )
    return parser


def _write(path: Optional[str], payload: str, label: str) -> None:
    if path:
        with open(path, "w") as handle:
            handle.write(payload)
        print(f"wrote {label} to {path}")


def predict_main(argv: Optional[list] = None) -> int:
    args = _predict_parser().parse_args(argv)
    try:
        if args.validate:
            return _run_validate(args)
        if args.source is None:
            print(
                "error: a hic source file is required unless --validate "
                "is given",
                file=sys.stderr,
            )
            return 2
        return _run_predict(args)
    except ControllerError as error:
        # Structured parameter/controller failure: name the field, keep
        # the exit code distinct from compile errors.
        print(f"error: {error.describe()}", file=sys.stderr)
        return 2
    except HicError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _compile(args):
    from ..flow import compile_design

    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as error:
        print(
            f"error: cannot read {args.source}: {error}", file=sys.stderr
        )
        raise SystemExit(2)
    return compile_design(
        source,
        name=args.source.rsplit("/", 1)[-1].split(".")[0],
        organization=Organization(args.organization),
        deplist_entries=args.deplist_entries,
        num_banks=args.banks if args.banks > 0 else 0,
    )


def _params(args, design):
    # CLI-level hardening: the predict surface models fabric deployments,
    # so banks <= 0 (like any negative latency or out-of-range rate) is
    # rejected with a structured error before any arithmetic runs.
    from ..core.errors import ParameterError

    if args.banks <= 0:
        raise ParameterError(
            "the predict CLI models fabric deployments: banks must be "
            ">= 1 (the API accepts banks=0 for the single-address-space "
            "flow)",
            parameter="banks",
            value=args.banks,
        )
    return extract_parameters(
        design,
        traffic_rate=args.rate,
        offchip_latency=args.offchip_latency,
        deplist_entries=args.deplist_entries,
    ).with_config(
        banks=args.banks,
        link_latency=args.link_latency,
        batch_size=args.batch_size,
    )


def _run_predict(args) -> int:
    design = _compile(args)
    params = _params(args, design)
    if args.sweep:
        result = run_sweep(
            params,
            banks=tuple(args.sweep_banks),
            link_latencies=tuple(args.sweep_links),
            rates=tuple(args.sweep_rates),
            margin=args.margin,
        )
        print(
            f"sweep: {len(result.points)} configurations, "
            f"{len(result.frontier)} on the predicted Pareto frontier, "
            f"{len(result.pruned)} kept at margin {args.margin}"
        )
        header = (
            f"{'org':<13} {'banks':>5} {'link':>4} {'rate':>5} "
            f"{'thr':>8} {'wait':>8} {'area':>6}"
        )
        print("predicted Pareto frontier (throughput, wait, area):")
        print("  " + header)
        for index in result.frontier:
            row = result.points[index].row()
            print(
                f"  {row['organization']:<13} {row['banks']:>5} "
                f"{row['link_latency']:>4} {row['traffic_rate']:>5} "
                f"{row['throughput']:>8.4f} {row['consumer_wait']:>8.2f} "
                f"{row['area_slices']:>6}"
            )
        if args.summary_json:
            import json

            _write(
                args.summary_json,
                json.dumps(result.to_dict(), indent=2, sort_keys=True)
                + "\n",
                "sweep summary",
            )
        return 0

    prediction = predict(params)
    p = prediction.params
    print(
        f"predicted ({p.organization.value}, {p.consumers} consumers, "
        f"{p.banks} banks, link {p.link_latency}, rate {p.traffic_rate}):"
    )
    print(
        f"  round period      {prediction.period:.2f} cycles "
        f"(producer loop {p.producer_loop}, consumer loop "
        f"{p.consumer_loop}, {p.producer_accesses} accesses)"
    )
    print(
        f"  throughput        {prediction.throughput:.4f} packets/cycle "
        f"(utilization {prediction.utilization:.0%})"
    )
    print(f"  consumer wait     {prediction.consumer_wait:.2f} cycles")
    e2e = (
        "unbounded (saturated)"
        if prediction.e2e_latency is None
        else f"{prediction.e2e_latency:.2f} cycles"
    )
    print(f"  end-to-end        {e2e}")
    print("  wait-state fractions:")
    for state, value in sorted(prediction.fractions.items()):
        print(f"    {state:<18} {value:.4f}")
    _write(
        args.summary_json, prediction.summary_json(), "prediction summary"
    )
    return 0


def _run_validate(args) -> int:
    source = None
    if args.source:
        with open(args.source) as handle:
            source = handle.read()
    report = validate(source, bound=args.bound, kernel=args.kernel)
    print(report.render())
    _write(args.summary_json, report.to_json(), "validation report")
    return 0 if report.within_bound else 1
