"""Replay the model against the simulator and report signed errors.

This is the harness that keeps the closed forms honest: for every
configuration in a validation grid it runs the real cycle-accurate
simulator — profiler attached, seeded Bernoulli traffic — and compares
three enforced metrics against the prediction:

* **consumer wait** (mean guarded-read wait over all consumers, from the
  :class:`~repro.sim.probes.ConsumerLatencyProbe`) — signed *relative*
  error;
* **throughput** (producer rounds completed per cycle) — signed
  *relative* error;
* **wait-state fractions** (the PR-6 profiler's
  :meth:`AttributionLedger.state_fractions` cells) — signed *absolute*
  error in fraction points, reported for the worst state.

Relative error for the scalar metrics, absolute points for the
fractions: a 0.1 %-of-cycles state with a 0.2-point error is not a
"200 % miss" in any sense a designer cares about, while wait and
throughput are exactly the quantities read off ratio-style.

The default grid is the committed envelope from the acceptance
criteria: the Figure-1 forwarding design, all three organizations,
{1, 4} fabric banks, sparse (0.02) and dense (0.9) traffic.  Sparse
runs are long (30 000 cycles) so the realized Bernoulli arrival count
converges near its rate; everything is seeded and the grid is evaluated
in sorted order, so the validation document is byte-deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..core.advisor import Organization
from .parameters import extract_parameters
from .predict import Prediction, predict

#: Schema tag of the validation JSON document.
VALIDATION_SCHEMA = "repro.model.validation/1"

#: The documented accuracy bound (docs/performance_model.md): every
#: enforced metric must land within 15 % (relative for wait/throughput,
#: absolute fraction points for the wait-state cells).
ERROR_BOUND = 0.15

#: Committed validation grid (the acceptance envelope).
GRID_ORGANIZATIONS = (
    Organization.ARBITRATED,
    Organization.EVENT_DRIVEN,
    Organization.LOCK_BASELINE,
)
GRID_BANKS = (1, 4)
SPARSE_RATE = 0.02
DENSE_RATE = 0.9
GRID_RATES = (SPARSE_RATE, DENSE_RATE)

#: Simulation horizons: dense saturates within a few hundred cycles;
#: sparse needs enough arrivals (30000 x 0.02 = 600) for the realized
#: Bernoulli rate to sit well inside the error bound.
DENSE_CYCLES = 4_000
SPARSE_CYCLES = 30_000

#: Wait-state fractions below this share of all cycles are reported but
#: not enforced: a state booking under 2 % of the run carries more
#: sampling noise than signal.
MIN_ENFORCED_FRACTION = 0.02


@dataclass(frozen=True)
class MetricError:
    """One compared metric: predicted vs observed with a signed error."""

    metric: str
    predicted: float
    observed: float
    #: signed error (relative, or absolute points for fractions)
    error: float
    #: whether this metric counts against the bound
    enforced: bool = True

    def row(self) -> dict:
        return {
            "metric": self.metric,
            "predicted": round(self.predicted, 6),
            "observed": round(self.observed, 6),
            "error": round(self.error, 6),
            "enforced": self.enforced,
        }


@dataclass
class ConfigValidation:
    """All compared metrics for one grid configuration."""

    organization: str
    banks: int
    rate: float
    cycles: int
    metrics: list = field(default_factory=list)

    @property
    def worst_enforced(self) -> float:
        enforced = [abs(m.error) for m in self.metrics if m.enforced]
        return max(enforced) if enforced else 0.0

    def to_dict(self) -> dict:
        return {
            "organization": self.organization,
            "banks": self.banks,
            "traffic_rate": self.rate,
            "cycles": self.cycles,
            "worst_enforced_error": round(self.worst_enforced, 6),
            "metrics": [m.row() for m in self.metrics],
        }


@dataclass
class ValidationReport:
    """The full grid's comparison plus the pass/fail verdict."""

    bound: float
    configs: list = field(default_factory=list)

    @property
    def worst_error(self) -> float:
        return max(
            (config.worst_enforced for config in self.configs), default=0.0
        )

    @property
    def within_bound(self) -> bool:
        return self.worst_error <= self.bound

    def to_dict(self) -> dict:
        return {
            "schema": VALIDATION_SCHEMA,
            "bound": self.bound,
            "within_bound": self.within_bound,
            "worst_enforced_error": round(self.worst_error, 6),
            "configs": [config.to_dict() for config in self.configs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        lines = [
            f"model validation (bound {self.bound:.0%}, "
            f"{len(self.configs)} configs):"
        ]
        for config in self.configs:
            lines.append(
                f"  {config.organization:<13} banks={config.banks} "
                f"rate={config.rate:<4} worst error "
                f"{config.worst_enforced:+.1%}"
                .replace("+", "")
            )
            for m in config.metrics:
                tag = "" if m.enforced else "  (not enforced)"
                lines.append(
                    f"    {m.metric:<28} predicted={m.predicted:<10.4f}"
                    f" observed={m.observed:<10.4f} "
                    f"error={m.error:+.3f}{tag}"
                )
        verdict = "PASS" if self.within_bound else "FAIL"
        lines.append(
            f"worst enforced error {self.worst_error:.1%} -> {verdict}"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Observation
# ---------------------------------------------------------------------------


def simulate_config(
    source: str,
    organization: Organization,
    banks: int,
    rate: float,
    cycles: int,
    *,
    link_latency: int = 1,
    batch_size: int = 1,
    traffic_seed: int = 1,
    kernel: Optional[str] = None,
) -> tuple:
    """Run one configuration; return (prediction, observed dict).

    Observed metrics come from the same instruments the rest of the repo
    trusts: the consumer-latency probe, executor round counters, and the
    cycle-attribution ledger.
    """
    from ..flow import DEFAULT_KERNEL, build_simulation, compile_design
    from ..net import BernoulliTraffic
    from ..sim import ConsumerLatencyProbe

    if kernel is None:
        kernel = DEFAULT_KERNEL

    design = compile_design(
        source,
        name=f"validate_{organization.value}_{banks}",
        organization=organization,
        num_banks=banks,
        link_latency=link_latency,
        batch_size=batch_size,
    )
    params = extract_parameters(design, traffic_rate=rate)
    prediction = predict(params)

    sim = build_simulation(design, kernel=kernel)
    profiler = sim.attach_profiler()
    for index, rx in enumerate(sim.rx.values()):
        generator = BernoulliTraffic(rate=rate, seed=traffic_seed + index)
        sim.kernel.add_pre_cycle_hook(generator.attach(rx))
    probes = [
        ConsumerLatencyProbe(controller, guarded_ports=("C", "B", "G"))
        for controller in sim.controllers.values()
    ]
    sim.run(cycles)

    # Consumer waits only: the event-driven and lock organizations remap
    # guarded *writes* onto the sampled ports (D->B, D->G), so the probe
    # also carries producer write-wait summaries — a different metric.
    producers = {
        dep.producer_thread for dep in design.checked.dependencies
    }
    waits = [
        summary.mean_wait
        for probe in probes
        for summary in probe.summaries()
        if summary.observed and summary.thread not in producers
    ]
    rounds = sum(
        sim.executors[name].stats.rounds_completed for name in producers
    )
    observed = {
        "consumer_wait": sum(waits) / len(waits) if waits else 0.0,
        "throughput": rounds / cycles,
        "fractions": profiler.ledger.state_fractions(),
    }
    return prediction, observed


def compare(
    prediction: Prediction, observed: dict
) -> list:
    """Signed per-metric errors for one configuration."""
    metrics = []
    for name, key in (
        ("consumer_wait_cycles", "consumer_wait"),
        ("throughput_packets_per_cycle", "throughput"),
    ):
        pred = getattr(
            prediction,
            "consumer_wait" if key == "consumer_wait" else "throughput",
        )
        obs = observed[key]
        error = (pred - obs) / obs if obs else (1.0 if pred else 0.0)
        metrics.append(
            MetricError(
                metric=name, predicted=pred, observed=obs, error=error
            )
        )
    observed_fractions = observed["fractions"]
    states = sorted(
        set(prediction.fractions) | set(observed_fractions)
    )
    for state in states:
        pred = prediction.fractions.get(state, 0.0)
        obs = observed_fractions.get(state, 0.0)
        metrics.append(
            MetricError(
                metric=f"fraction:{state}",
                predicted=pred,
                observed=obs,
                error=pred - obs,
                enforced=max(pred, obs) >= MIN_ENFORCED_FRACTION,
            )
        )
    return metrics


def validate(
    source: Optional[str] = None,
    *,
    organizations=GRID_ORGANIZATIONS,
    banks_grid=GRID_BANKS,
    rates=GRID_RATES,
    bound: float = ERROR_BOUND,
    kernel: Optional[str] = None,
) -> ValidationReport:
    """Run the validation grid and collect the report.

    ``source`` defaults to the Figure-1 forwarding design (one producer,
    two consumers through one guarded word) — the paper's running
    example and the family the stated error bound is calibrated on.
    """
    if source is None:
        from ..net import forwarding_source

        source = forwarding_source(2)
    report = ValidationReport(bound=bound)
    for organization in organizations:
        for banks in banks_grid:
            for rate in rates:
                cycles = (
                    SPARSE_CYCLES if rate < 0.5 else DENSE_CYCLES
                )
                prediction, observed = simulate_config(
                    source, organization, banks, rate, cycles,
                    kernel=kernel,
                )
                config = ConfigValidation(
                    organization=organization.value,
                    banks=banks,
                    rate=rate,
                    cycles=cycles,
                    metrics=compare(prediction, observed),
                )
                report.configs.append(config)
    return report
