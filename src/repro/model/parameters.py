"""Compile-time parameters of the analytical performance model.

The model's whole premise (paper §1, §5) is that synchronization cost is
determined by a handful of numbers fixed at compile time: the memory
organization, the consumer count, the shape of the producer and consumer
FSM loops, and the fabric the wrapper sits behind.  This module defines
the :class:`ModelParameters` record those numbers live in, and extracts
them from a :class:`~repro.flow.CompiledDesign` by walking the
synthesized thread FSMs:

* the **producer loop** is the *longest* simple cycle through the
  guarded-write state — the back-to-back service period of the producing
  thread (the steady-state round is paced by its slowest path, because a
  packet that classifies "interesting" takes the long branch);
* the **consumer loop** is the *shortest* simple cycle through the
  guarded-read state — a consumer re-arms its read as fast as its
  shortest path allows, so that is the path that bounds how early the
  next blocked read is posted;
* **accesses per loop** count the memory micro-ops on those cycles;
  each one is a crossbar transaction when the design compiles to a
  multi-bank fabric.

Parameter validation raises the structured
:class:`~repro.core.errors.ParameterError` so CLI callers and CI logs
get the offending field by name.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.advisor import Organization
from ..core.errors import ParameterError
from ..synth.fsm import MemReadOp, MemWriteOp, ThreadFsm

#: Safety valve for the simple-cycle enumeration: synthesized thread FSMs
#: are tiny (tens of states), but a pathological branch lattice could
#: blow up the path count; past this many explored paths extraction fails
#: loudly rather than hanging.
_MAX_PATHS = 100_000


@dataclass(frozen=True)
class ModelParameters:
    """Everything the closed-form predictors need about one configuration.

    The first block is extracted from the compiled design; the second is
    the deployment configuration (fabric and traffic) that the predictors
    sweep without recompiling.
    """

    organization: Organization
    #: guarded consumer endpoints (the paper's dependency number, dn)
    consumers: int
    #: states on the producer's dominant (longest) loop
    producer_loop: int
    #: states on the consumer's fastest (shortest) loop
    consumer_loop: int
    #: memory accesses on the producer loop (crossbar transactions each)
    producer_accesses: int
    #: guarded memory accesses on the consumer loop
    consumer_accesses: int = 1

    # -- deployment configuration ------------------------------------------------
    #: fabric banks; 0 = the paper's single-address-space flow
    banks: int = 0
    link_latency: int = 1
    batch_size: int = 1
    #: memory accesses on the producer loop that spill off-chip
    offchip_accesses: int = 0
    #: extra cycles per off-chip access
    offchip_latency: int = 0
    deplist_entries: int = 4
    #: Bernoulli arrival probability per cycle; 1.0 = back-to-back
    traffic_rate: float = 1.0

    def validate(self) -> "ModelParameters":
        """Range-check every field; raise :class:`ParameterError` on the
        first violation.  Returns ``self`` so call sites can chain.

        Straight-line comparisons, not a table: this runs on every
        ``predict()`` call and the no-allocation fast path is part of
        keeping evaluation above 1e5 configurations/second.
        """
        if (
            self.consumers >= 1
            and self.producer_loop >= 1
            and self.consumer_loop >= 1
            and self.producer_accesses >= 1
            and self.consumer_accesses >= 1
            and self.banks >= 0
            and self.link_latency >= 0
            and self.batch_size >= 1
            and self.offchip_accesses >= 0
            and self.offchip_latency >= 0
            and self.deplist_entries >= 1
            and 0.0 <= self.traffic_rate <= 1.0
        ):
            return self
        return self._raise_out_of_range()

    def _raise_out_of_range(self) -> "ModelParameters":
        """The slow path of :meth:`validate`: name the offending field."""
        checks = (
            ("consumers", self.consumers, self.consumers >= 1,
             "at least one consumer is required"),
            ("producer_loop", self.producer_loop, self.producer_loop >= 1,
             "the producer loop must have at least one state"),
            ("consumer_loop", self.consumer_loop, self.consumer_loop >= 1,
             "the consumer loop must have at least one state"),
            ("producer_accesses", self.producer_accesses,
             self.producer_accesses >= 1,
             "the producer loop must access memory at least once"),
            ("consumer_accesses", self.consumer_accesses,
             self.consumer_accesses >= 1,
             "the consumer loop must access memory at least once"),
            ("banks", self.banks, self.banks >= 0,
             "bank count cannot be negative"),
            ("link_latency", self.link_latency, self.link_latency >= 0,
             "link latency cannot be negative"),
            ("batch_size", self.batch_size, self.batch_size >= 1,
             "the crossbar must accept at least one request per cycle"),
            ("offchip_accesses", self.offchip_accesses,
             self.offchip_accesses >= 0,
             "off-chip access count cannot be negative"),
            ("offchip_latency", self.offchip_latency,
             self.offchip_latency >= 0,
             "off-chip latency cannot be negative"),
            ("deplist_entries", self.deplist_entries,
             self.deplist_entries >= 1,
             "the dependency list needs at least one entry"),
            ("traffic_rate", self.traffic_rate,
             0.0 <= self.traffic_rate <= 1.0,
             "traffic rate is a per-cycle probability in [0, 1]"),
        )
        for name, value, ok, why in checks:
            if not ok:
                raise ParameterError(why, parameter=name, value=value)
        raise AssertionError("validate() fast and slow paths disagree")

    def with_config(self, **overrides) -> "ModelParameters":
        """A copy with deployment fields replaced (sweep helper)."""
        return replace(self, **overrides).validate()

    @property
    def fabric(self) -> bool:
        return self.banks >= 1

    @property
    def threads(self) -> int:
        """Threads the wait-state fractions are normalized over."""
        return 1 + self.consumers


# ---------------------------------------------------------------------------
# Extraction from a compiled design
# ---------------------------------------------------------------------------


def _loops_through(
    fsm: ThreadFsm, via: str
) -> list[tuple[int, int]]:
    """All simple cycles through state ``via``: (length, memory_accesses).

    Lengths count states (one cycle each when nothing blocks); accesses
    count memory micro-ops on the cycle, including multiple ops in one
    state (each is a separate controller transaction).
    """
    loops: list[tuple[int, int]] = []
    explored = 0

    def accesses(state_name: str) -> int:
        return sum(
            1
            for op in fsm.states[state_name].ops
            if isinstance(op, (MemReadOp, MemWriteOp))
        )

    # Iterative DFS over simple paths starting at ``via``.
    stack = [(via, [via], accesses(via))]
    while stack:
        explored += 1
        if explored > _MAX_PATHS:
            raise ParameterError(
                f"FSM of thread {fsm.thread!r} has too many simple paths "
                f"to enumerate (> {_MAX_PATHS})",
                parameter="fsm", value=fsm.thread,
            )
        name, path, acc = stack.pop()
        for transition in fsm.states[name].transitions:
            target = transition.target
            if target == via:
                loops.append((len(path), acc))
            elif target not in path:
                stack.append(
                    (target, path + [target], acc + accesses(target))
                )
    return loops


def _guarded_states(
    fsm: ThreadFsm, kind: type
) -> list[str]:
    return [
        name
        for name, state in fsm.states.items()
        if any(
            isinstance(op, kind) and op.guarded for op in state.ops
        )
    ]


def extract_parameters(
    design,
    *,
    traffic_rate: float = 1.0,
    offchip_latency: int = 0,
    deplist_entries: Optional[int] = None,
) -> ModelParameters:
    """Derive :class:`ModelParameters` from a compiled design.

    ``design`` is a :class:`repro.flow.CompiledDesign` (duck-typed to
    avoid an import cycle: the flow calls back into this module).
    Producer metrics take the bottleneck (max) over producing threads;
    consumer metrics take the fastest (min) over consuming threads.
    """
    producer_loops: list[tuple[int, int]] = []
    consumer_loops: list[tuple[int, int]] = []
    offchip_names = set(design.memory_map.offchip_names)
    offchip_accesses = 0

    for fsm in design.fsms.values():
        for via in _guarded_states(fsm, MemWriteOp):
            loops = _loops_through(fsm, via)
            if loops:
                producer_loops.append(max(loops))
            offchip_accesses = max(
                offchip_accesses,
                sum(
                    1
                    for state in fsm.states.values()
                    for op in state.ops
                    if isinstance(op, (MemReadOp, MemWriteOp))
                    and op.bram in offchip_names
                ),
            )
        for via in _guarded_states(fsm, MemReadOp):
            loops = _loops_through(fsm, via)
            if loops:
                consumer_loops.append(min(loops))

    if not producer_loops or not consumer_loops:
        raise ParameterError(
            "the design has no producer/consumer dependency to model "
            "(no guarded accesses found)",
            parameter="design", value=design.name,
        )

    producer_loop, producer_accesses = max(producer_loops)
    consumer_loop, consumer_accesses = min(consumer_loops)
    consumers = sum(
        dep.dependency_number for dep in design.checked.dependencies
    )
    fabric = design.fabric
    return ModelParameters(
        organization=design.organization,
        consumers=max(1, consumers),
        producer_loop=producer_loop,
        consumer_loop=consumer_loop,
        producer_accesses=max(1, producer_accesses),
        consumer_accesses=max(1, consumer_accesses),
        banks=0 if fabric is None else fabric.config.num_banks,
        link_latency=1 if fabric is None else fabric.config.link_latency,
        batch_size=1 if fabric is None else fabric.config.batch_size,
        offchip_accesses=offchip_accesses,
        offchip_latency=offchip_latency,
        deplist_entries=(
            deplist_entries
            if deplist_entries is not None
            else max(
                (len(lst.entries) for lst in design.deplists.values()),
                default=4,
            )
        ),
        traffic_rate=traffic_rate,
    ).validate()
