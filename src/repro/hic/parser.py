"""Recursive-descent parser for hic.

Grammar (EBNF, terminals quoted)::

    program      = { type_decl | top_pragma | thread } ;
    type_decl    = "type" IDENT ":" INT ";"
                 | "type" IDENT "=" "union" "(" type_name { "," type_name } ")" ";" ;
    top_pragma   = "#" "interface" "{" IDENT "," IDENT "}"
                 | "#" "constant"  "{" IDENT "," INT "}" ;
    thread       = "thread" IDENT "(" [ IDENT { "," IDENT } ] ")" block ;
    block        = "{" { statement } "}" ;
    statement    = var_decl | dep_pragma | assign | if | case | while | for
                 | receive | transmit | return | break | continue
                 | expr ";" | block ;
    var_decl     = type_name declarator { "," declarator } ";" ;
    declarator   = IDENT [ "[" INT "]" ] ;
    dep_pragma   = "#" ("producer"|"consumer")
                   "{" IDENT { "," "[" IDENT "," IDENT "]" } "}" ;
    assign       = lvalue ("=" | "+=" | ... ) expr ";" ;
    case         = "case" "(" expr ")" "{" { arm } [ "default" ":" block ] "}" ;
    arm          = "of" expr { "," expr } ":" block ;

Dependency pragmas bind to the next assignment statement, per Figure 1 of
the paper.  User type declarations must precede their first use (the parser
needs the set of type names to disambiguate declarations from assignments).
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .errors import HicSyntaxError, SourceLocation
from .lexer import Token, TokenKind, tokenize
from .types import BitsType, HicType, TypeTable, UnionType

#: Binary operator precedence, loosest first (C-like).
_PRECEDENCE: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")


class Parser:
    """Parses a token stream into a :class:`repro.hic.ast.Program`."""

    def __init__(self, source: str, filename: str = "<hic>"):
        self._tokens = tokenize(source, filename)
        self._pos = 0
        self.types = TypeTable()

    # -- token-stream helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, text: str) -> bool:
        token = self._peek()
        return token.kind in (TokenKind.PUNCT, TokenKind.KEYWORD) and token.text == text

    def _accept(self, text: str) -> Optional[Token]:
        if self._check(text):
            return self._advance()
        return None

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise HicSyntaxError(
                f"expected {text!r}, found {self._peek()}", self._peek().location
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise HicSyntaxError(
                f"expected identifier, found {token}", token.location
            )
        return self._advance()

    def _expect_int(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.INT:
            raise HicSyntaxError(
                f"expected integer literal, found {token}", token.location
            )
        return self._advance()

    def _at_type_name(self) -> bool:
        """Whether the next token starts a variable declaration."""
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.text in ("int", "char", "message"):
            return True
        return token.kind is TokenKind.IDENT and token.text in self.types

    def _parse_type_name(self) -> HicType:
        token = self._advance()
        if token.kind not in (TokenKind.KEYWORD, TokenKind.IDENT):
            raise HicSyntaxError(f"expected type name, found {token}", token.location)
        try:
            return self.types.lookup(token.text)
        except KeyError:
            raise HicSyntaxError(f"unknown type {token.text!r}", token.location)

    # -- top level ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program(location=self._peek().location)
        while self._peek().kind is not TokenKind.EOF:
            if self._check("type"):
                self._parse_type_decl()
            elif self._check("thread"):
                program.threads.append(self._parse_thread())
            elif self._peek().kind is TokenKind.HASH:
                self._parse_top_pragma(program)
            else:
                raise HicSyntaxError(
                    f"expected 'thread', 'type', or pragma at top level, "
                    f"found {self._peek()}",
                    self._peek().location,
                )
        return program

    def _parse_type_decl(self) -> None:
        self._expect("type")
        name = self._expect_ident()
        if self._accept(":"):
            width = self._expect_int()
            declared: HicType = BitsType(name.text, width.int_value)
        else:
            self._expect("=")
            self._expect("union")
            self._expect("(")
            members = [self._parse_type_name()]
            while self._accept(","):
                members.append(self._parse_type_name())
            self._expect(")")
            declared = UnionType(name.text, tuple(members))
        self._expect(";")
        try:
            self.types.declare(declared)
        except KeyError as exc:
            raise HicSyntaxError(str(exc), name.location)

    def _parse_top_pragma(self, program: ast.Program) -> None:
        hash_token = self._expect("#") if self._check("#") else self._advance()
        keyword = self._expect_ident()
        if keyword.text == "interface":
            self._expect("{")
            name = self._expect_ident()
            self._expect(",")
            kind = self._expect_ident()
            self._expect("}")
            program.interfaces.append(
                ast.InterfacePragma(name.text, kind.text, hash_token.location)
            )
        elif keyword.text == "constant":
            self._expect("{")
            name = self._expect_ident()
            self._expect(",")
            negative = bool(self._accept("-"))
            value = self._expect_int().int_value
            if negative:
                value = -value
            self._expect("}")
            program.constants.append(
                ast.ConstantPragma(name.text, value, hash_token.location)
            )
        else:
            raise HicSyntaxError(
                f"pragma #{keyword.text} is not allowed at top level "
                "(only #interface and #constant)",
                keyword.location,
            )

    def _parse_thread(self) -> ast.Thread:
        start = self._expect("thread")
        name = self._expect_ident()
        self._expect("(")
        params: list[str] = []
        if not self._check(")"):
            params.append(self._expect_ident().text)
            while self._accept(","):
                params.append(self._expect_ident().text)
        self._expect(")")
        body = self._parse_block()
        return ast.Thread(name.text, params, body, start.location)

    # -- statements -------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect("{")
        block = ast.Block(location=start.location)
        pending_pragmas: list[ast.DependencyPragma] = []
        while not self._check("}"):
            if self._peek().kind is TokenKind.EOF:
                raise HicSyntaxError("unterminated block", start.location)
            if self._peek().kind is TokenKind.HASH:
                pending_pragmas.append(self._parse_dep_pragma())
                continue
            stmt = self._parse_statement()
            if pending_pragmas:
                if not isinstance(stmt, ast.Assign):
                    raise HicSyntaxError(
                        "producer/consumer pragma must immediately precede an "
                        "assignment statement",
                        pending_pragmas[0].location,
                    )
                stmt.pragmas.extend(pending_pragmas)
                pending_pragmas = []
            block.statements.append(stmt)
        if pending_pragmas:
            raise HicSyntaxError(
                "dangling pragma at end of block", pending_pragmas[0].location
            )
        self._expect("}")
        return block

    def _parse_dep_pragma(self) -> ast.DependencyPragma:
        hash_token = self._advance()  # the HASH
        keyword = self._expect_ident()
        if keyword.text not in ("producer", "consumer"):
            raise HicSyntaxError(
                f"unknown statement pragma #{keyword.text}", keyword.location
            )
        self._expect("{")
        dep_id = self._expect_ident().text
        links: list[ast.DependencyLink] = []
        while self._accept(","):
            self._expect("[")
            thread = self._expect_ident().text
            self._expect(",")
            variable = self._expect_ident().text
            self._expect("]")
            links.append(ast.DependencyLink(thread, variable))
        self._expect("}")
        if not links:
            raise HicSyntaxError(
                f"pragma #{keyword.text} needs at least one [thread, var] link",
                keyword.location,
            )
        if keyword.text == "producer":
            return ast.ProducerPragma(dep_id, links, hash_token.location)
        return ast.ConsumerPragma(dep_id, links, hash_token.location)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if self._check("{"):
            return self._parse_block()
        if self._at_type_name():
            return self._parse_var_decl()
        if self._check("if"):
            return self._parse_if()
        if self._check("case"):
            return self._parse_case()
        if self._check("while"):
            return self._parse_while()
        if self._check("for"):
            return self._parse_for()
        if self._check("receive"):
            return self._parse_receive()
        if self._check("transmit"):
            return self._parse_transmit()
        if self._check("return"):
            self._advance()
            value = None if self._check(";") else self._parse_expr()
            self._expect(";")
            return ast.Return(value, token.location)
        if self._check("break"):
            self._advance()
            self._expect(";")
            return ast.Break(token.location)
        if self._check("continue"):
            self._advance()
            self._expect(";")
            return ast.Continue(token.location)
        return self._parse_assign_or_expr()

    def _parse_var_decl(self) -> ast.VarDecl:
        start = self._peek()
        var_type = self._parse_type_name()
        names: list[str] = []
        sizes: list[int] = []
        while True:
            names.append(self._expect_ident().text)
            if self._accept("["):
                size = self._expect_int().int_value
                if size <= 0:
                    raise HicSyntaxError(
                        "array size must be positive", start.location
                    )
                sizes.append(size)
                self._expect("]")
            else:
                sizes.append(0)
            if not self._accept(","):
                break
        self._expect(";")
        return ast.VarDecl(names, var_type, sizes, start.location)

    def _parse_if(self) -> ast.If:
        start = self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then_body = self._parse_block()
        else_body: Optional[ast.Block] = None
        if self._accept("else"):
            if self._check("if"):
                nested = self._parse_if()
                else_body = ast.Block([nested], nested.location)
            else:
                else_body = self._parse_block()
        return ast.If(cond, then_body, else_body, start.location)

    def _parse_case(self) -> ast.Case:
        start = self._expect("case")
        self._expect("(")
        selector = self._parse_expr()
        self._expect(")")
        self._expect("{")
        arms: list[ast.CaseArm] = []
        default: Optional[ast.Block] = None
        while not self._check("}"):
            if self._accept("default"):
                self._expect(":")
                if default is not None:
                    raise HicSyntaxError(
                        "case statement has more than one default arm",
                        start.location,
                    )
                default = self._parse_block()
            else:
                arm_start = self._expect("of")
                values = [self._parse_expr()]
                while self._accept(","):
                    values.append(self._parse_expr())
                self._expect(":")
                body = self._parse_block()
                arms.append(ast.CaseArm(values, body, arm_start.location))
        self._expect("}")
        if not arms and default is None:
            raise HicSyntaxError("empty case statement", start.location)
        return ast.Case(selector, arms, default, start.location)

    def _parse_while(self) -> ast.While:
        start = self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._parse_block()
        return ast.While(cond, body, start.location)

    def _parse_for(self) -> ast.For:
        start = self._expect("for")
        self._expect("(")
        init: Optional[ast.Assign] = None
        if not self._check(";"):
            init = self._parse_bare_assign()
        self._expect(";")
        cond: Optional[ast.Expr] = None
        if not self._check(";"):
            cond = self._parse_expr()
        self._expect(";")
        step: Optional[ast.Assign] = None
        if not self._check(")"):
            step = self._parse_bare_assign()
        self._expect(")")
        body = self._parse_block()
        return ast.For(init, cond, step, body, start.location)

    def _parse_receive(self) -> ast.Receive:
        start = self._expect("receive")
        self._expect("(")
        target_token = self._expect_ident()
        target = ast.Name(target_token.text, target_token.location)
        self._expect(",")
        interface = self._expect_ident().text
        self._expect(")")
        self._expect(";")
        return ast.Receive(target, interface, start.location)

    def _parse_transmit(self) -> ast.Transmit:
        start = self._expect("transmit")
        self._expect("(")
        source = self._parse_expr()
        self._expect(",")
        interface = self._expect_ident().text
        self._expect(")")
        self._expect(";")
        return ast.Transmit(source, interface, start.location)

    def _parse_bare_assign(self) -> ast.Assign:
        """An assignment without the trailing semicolon (for-loop headers)."""
        target = self._parse_primary()
        if not isinstance(target, (ast.Name, ast.FieldAccess, ast.Index)):
            raise HicSyntaxError(
                "assignment target must be a variable, field, or element",
                target.location,
            )
        op_token = self._peek()
        if op_token.text not in _ASSIGN_OPS:
            raise HicSyntaxError(
                f"expected assignment operator, found {op_token}",
                op_token.location,
            )
        self._advance()
        value = self._parse_expr()
        return ast.Assign(target, value, op_token.text, location=target.location)

    def _parse_assign_or_expr(self) -> ast.Stmt:
        expr = self._parse_expr()
        op_token = self._peek()
        if op_token.text in _ASSIGN_OPS and op_token.kind is TokenKind.PUNCT:
            if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
                raise HicSyntaxError(
                    "assignment target must be a variable, field, or element",
                    expr.location,
                )
            self._advance()
            value = self._parse_expr()
            self._expect(";")
            return ast.Assign(expr, value, op_token.text, location=expr.location)
        self._expect(";")
        return ast.ExprStmt(expr, expr.location)

    # -- expressions --------------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_conditional()

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("?"):
            then_value = self._parse_expr()
            self._expect(":")
            else_value = self._parse_conditional()
            return ast.Conditional(cond, then_value, else_value, cond.location)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _PRECEDENCE[level]
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in ops:
            op = self._advance().text
            right = self._parse_binary(level + 1)
            left = ast.Binary(op, left, right, left.location)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in ("-", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.text, operand, token.location)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLiteral(token.int_value, token.location)
        if token.kind is TokenKind.CHAR:
            self._advance()
            return ast.CharLiteral(token.char_value, token.location)
        if self._check("true") or self._check("false"):
            self._advance()
            return ast.BoolLiteral(token.text == "true", token.location)
        if self._accept("("):
            expr = self._parse_expr()
            self._expect(")")
            return self._parse_postfix(expr)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._check("("):
                return self._parse_postfix(self._parse_call(token))
            return self._parse_postfix(ast.Name(token.text, token.location))
        raise HicSyntaxError(f"expected expression, found {token}", token.location)

    def _parse_call(self, callee: Token) -> ast.Call:
        self._expect("(")
        args: list[ast.Expr] = []
        if not self._check(")"):
            args.append(self._parse_expr())
            while self._accept(","):
                args.append(self._parse_expr())
        self._expect(")")
        return ast.Call(callee.text, args, callee.location)

    def _parse_postfix(self, expr: ast.Expr) -> ast.Expr:
        while True:
            if self._accept("."):
                field_name = self._expect_ident()
                expr = ast.FieldAccess(expr, field_name.text, field_name.location)
            elif self._accept("["):
                index = self._parse_expr()
                self._expect("]")
                expr = ast.Index(expr, index, expr.location)
            else:
                return expr


def parse(source: str, filename: str = "<hic>") -> ast.Program:
    """Parse hic source text into an AST program."""
    return Parser(source, filename).parse_program()


def parse_with_types(source: str, filename: str = "<hic>") -> tuple[ast.Program, TypeTable]:
    """Parse and also return the type table (built-ins + user declarations)."""
    parser = Parser(source, filename)
    program = parser.parse_program()
    return program, parser.types
