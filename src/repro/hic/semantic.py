"""Semantic analysis for hic programs.

Performs name resolution, type checking, and the hic-specific structural
rules from section 2 of the paper:

* network I/O (``receive``/``transmit``) must target ``message`` variables
  and reference declared ``#interface`` pragmas;
* a computation thread has *at most one message in flight*, so at most one
  ``message`` variable may be live per thread;
* ``break``/``continue`` appear only inside loops;
* assignment and expression operands must be type compatible.

The result is a :class:`CheckedProgram` carrying the per-thread symbol
tables, the constant/interface environments, and the resolved inter-thread
dependencies — everything the synthesis and analysis passes consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from . import ast
from .errors import HicNameError, HicSemanticError, HicTypeError
from .parser import parse_with_types
from .pragmas import Dependency, resolve_dependencies
from .types import (
    BOOL,
    INT,
    BitsType,
    HicType,
    IntType,
    MessageType,
    TypeTable,
    common_type,
    is_numeric,
)


class SymbolKind(enum.Enum):
    VARIABLE = "variable"
    PARAMETER = "parameter"
    CONSTANT = "constant"
    #: A variable owned by another thread, visible here through the logical
    #: global shared memory because a #producer pragma names it (Figure 1's
    #: ``x1`` as read inside threads t2/t3).
    SHARED = "shared"


@dataclass(frozen=True)
class Symbol:
    """A named entity visible inside a thread."""

    name: str
    hic_type: HicType
    kind: SymbolKind = SymbolKind.VARIABLE
    array_size: int = 0

    @property
    def is_array(self) -> bool:
        return self.array_size > 0

    @property
    def storage_bits(self) -> int:
        """Total storage footprint of the symbol in bits."""
        elements = self.array_size if self.is_array else 1
        return elements * self.hic_type.bit_width


@dataclass
class ThreadScope:
    """Symbol table of one thread."""

    thread_name: str
    symbols: dict[str, Symbol] = field(default_factory=dict)

    def declare(self, symbol: Symbol, location) -> None:
        if symbol.name in self.symbols:
            raise HicNameError(
                f"{symbol.name!r} already declared in thread "
                f"{self.thread_name!r}",
                location,
            )
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str, location) -> Symbol:
        if name not in self.symbols:
            raise HicNameError(
                f"{name!r} is not declared in thread {self.thread_name!r}",
                location,
            )
        return self.symbols[name]

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    def message_variables(self) -> list[Symbol]:
        return [
            sym
            for sym in self.symbols.values()
            if isinstance(sym.hic_type, MessageType)
        ]


@dataclass
class CheckedProgram:
    """The output of semantic analysis: a validated program plus all the
    side tables downstream passes need."""

    program: ast.Program
    types: TypeTable
    scopes: dict[str, ThreadScope]
    constants: dict[str, int]
    interfaces: dict[str, str]
    dependencies: list[Dependency]

    def scope(self, thread_name: str) -> ThreadScope:
        if thread_name not in self.scopes:
            raise KeyError(f"no thread named {thread_name!r}")
        return self.scopes[thread_name]

    def symbol(self, thread_name: str, var_name: str) -> Symbol:
        return self.scope(thread_name).symbols[var_name]

    def shared_variables(self) -> set[tuple[str, str]]:
        """All ``(thread, variable)`` endpoints touched by dependencies."""
        endpoints: set[tuple[str, str]] = set()
        for dep in self.dependencies:
            endpoints.add((dep.producer_thread, dep.producer_var))
            for ref in dep.consumers:
                endpoints.add((ref.thread, ref.variable))
        return endpoints


class _ThreadChecker:
    """Type checker/scoper for a single thread body."""

    def __init__(
        self,
        thread: ast.Thread,
        types: TypeTable,
        scope: ThreadScope,
        interfaces: dict[str, str],
    ):
        self.thread = thread
        self.types = types
        self.interfaces = interfaces
        self.scope = scope
        self._loop_depth = 0

    # -- statements ---------------------------------------------------------------

    def check(self) -> ThreadScope:
        self._check_block(self.thread.body)
        messages = [
            sym
            for sym in self.scope.message_variables()
            if sym.kind is not SymbolKind.SHARED
        ]
        if len(messages) > 1:
            names = ", ".join(sym.name for sym in messages)
            raise HicSemanticError(
                f"thread {self.thread.name!r} declares {len(messages)} message "
                f"variables ({names}); hic threads have at most one message "
                "in flight",
                self.thread.location,
            )
        return self.scope

    def _check_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            pass  # declarations were collected in the scope-building pass
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._type_of(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.If):
            self._require_numeric(stmt.cond, "if condition")
            self._check_block(stmt.then_body)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body)
        elif isinstance(stmt, ast.Case):
            self._require_numeric(stmt.selector, "case selector")
            for arm in stmt.arms:
                for value in arm.values:
                    self._require_numeric(value, "case arm value")
                self._check_block(arm.body)
            if stmt.default is not None:
                self._check_block(stmt.default)
        elif isinstance(stmt, ast.While):
            self._require_numeric(stmt.cond, "while condition")
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._check_assign(stmt.init)
            if stmt.cond is not None:
                self._require_numeric(stmt.cond, "for condition")
            if stmt.step is not None:
                self._check_assign(stmt.step)
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Receive):
            self._check_io(stmt.target, stmt.interface, stmt, "receive")
        elif isinstance(stmt, ast.Transmit):
            if not isinstance(stmt.source, ast.Name):
                raise HicSemanticError(
                    "transmit source must be a message variable", stmt.location
                )
            self._check_io(stmt.source, stmt.interface, stmt, "transmit")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._type_of(stmt.value)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                raise HicSemanticError(
                    f"{kind} outside of a loop", stmt.location
                )
        else:  # pragma: no cover - parser produces no other statement kinds
            raise HicSemanticError(
                f"unsupported statement {type(stmt).__name__}", stmt.location
            )

    def _check_io(self, var: ast.Name, interface: str, stmt, verb: str) -> None:
        symbol = self.scope.lookup(var.ident, var.location)
        if not isinstance(symbol.hic_type, MessageType):
            raise HicTypeError(
                f"{verb} requires a message variable, {var.ident!r} is "
                f"{symbol.hic_type}",
                stmt.location,
            )
        if interface not in self.interfaces:
            raise HicNameError(
                f"{verb} references undeclared interface {interface!r} "
                "(declare it with #interface{name, kind})",
                stmt.location,
            )

    def _check_assign(self, stmt: ast.Assign) -> None:
        target_type = self._lvalue_type(stmt.target)
        value_type = self._type_of(stmt.value)
        if isinstance(target_type, MessageType):
            if not isinstance(value_type, MessageType):
                raise HicTypeError(
                    "cannot assign a non-message value to a message variable",
                    stmt.location,
                )
            if stmt.op != "=":
                raise HicTypeError(
                    f"operator {stmt.op!r} is not defined on messages",
                    stmt.location,
                )
            return
        if isinstance(value_type, MessageType):
            raise HicTypeError(
                "cannot assign a whole message to a scalar variable "
                "(use field access)",
                stmt.location,
            )
        if stmt.op != "=" and not is_numeric(target_type):
            raise HicTypeError(
                f"operator {stmt.op!r} requires a numeric target", stmt.location
            )

    def _lvalue_type(self, target: ast.LValue) -> HicType:
        if isinstance(target, ast.Name):
            symbol = self.scope.lookup(target.ident, target.location)
            if symbol.kind is SymbolKind.CONSTANT:
                raise HicSemanticError(
                    f"cannot assign to constant {target.ident!r}", target.location
                )
            if symbol.kind is SymbolKind.SHARED:
                raise HicSemanticError(
                    f"{target.ident!r} is a shared variable produced by another "
                    "thread; only its producer may write it",
                    target.location,
                )
            if symbol.is_array:
                raise HicTypeError(
                    f"cannot assign to whole array {target.ident!r}",
                    target.location,
                )
            return symbol.hic_type
        if isinstance(target, ast.FieldAccess):
            return self._field_type(target)
        if isinstance(target, ast.Index):
            return self._index_type(target)
        raise HicTypeError("invalid assignment target", target.location)

    # -- expressions --------------------------------------------------------------

    def _require_numeric(self, expr: ast.Expr, what: str) -> HicType:
        expr_type = self._type_of(expr)
        if not is_numeric(expr_type):
            raise HicTypeError(f"{what} must be numeric, got {expr_type}", expr.location)
        return expr_type

    def _type_of(self, expr: ast.Expr) -> HicType:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.CharLiteral):
            return self.types.lookup("char")
        if isinstance(expr, ast.BoolLiteral):
            return BOOL
        if isinstance(expr, ast.Name):
            symbol = self.scope.lookup(expr.ident, expr.location)
            if symbol.is_array:
                raise HicTypeError(
                    f"array {expr.ident!r} used without an index", expr.location
                )
            return symbol.hic_type
        if isinstance(expr, ast.FieldAccess):
            return self._field_type(expr)
        if isinstance(expr, ast.Index):
            return self._index_type(expr)
        if isinstance(expr, ast.Unary):
            operand = self._require_numeric(expr.operand, f"operand of {expr.op!r}")
            if expr.op == "!":
                return BOOL
            return operand
        if isinstance(expr, ast.Binary):
            left = self._require_numeric(expr.left, f"operand of {expr.op!r}")
            right = self._require_numeric(expr.right, f"operand of {expr.op!r}")
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return BOOL
            try:
                return common_type(left, right)
            except TypeError as exc:
                raise HicTypeError(str(exc), expr.location)
        if isinstance(expr, ast.Conditional):
            self._require_numeric(expr.cond, "conditional test")
            then_type = self._type_of(expr.then_value)
            else_type = self._type_of(expr.else_value)
            if isinstance(then_type, MessageType) or isinstance(else_type, MessageType):
                raise HicTypeError(
                    "conditional expressions cannot produce messages",
                    expr.location,
                )
            return common_type(then_type, else_type)
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                arg_type = self._type_of(arg)
                if isinstance(arg_type, MessageType):
                    raise HicTypeError(
                        f"function {expr.callee!r} cannot take a whole message "
                        "argument (pass fields)",
                        expr.location,
                    )
            return INT
        raise HicTypeError(
            f"unsupported expression {type(expr).__name__}", expr.location
        )

    def _field_type(self, expr: ast.FieldAccess) -> HicType:
        base_type = self._type_of_base(expr.base)
        if not isinstance(base_type, MessageType):
            raise HicTypeError(
                f"field access requires a message value, got {base_type}",
                expr.location,
            )
        try:
            __, width = MessageType.field_slice(expr.field_name)
        except KeyError as exc:
            raise HicTypeError(str(exc), expr.location)
        return BitsType(f"message.{expr.field_name}", width)

    def _index_type(self, expr: ast.Index) -> HicType:
        if not isinstance(expr.base, ast.Name):
            raise HicTypeError(
                "only named arrays can be indexed", expr.location
            )
        symbol = self.scope.lookup(expr.base.ident, expr.base.location)
        if not symbol.is_array:
            raise HicTypeError(
                f"{expr.base.ident!r} is not an array", expr.location
            )
        self._require_numeric(expr.index, "array index")
        return symbol.hic_type

    def _type_of_base(self, expr: ast.Expr) -> HicType:
        """Type of a field-access base without the no-bare-array restriction."""
        if isinstance(expr, ast.Name):
            symbol = self.scope.lookup(expr.ident, expr.location)
            return symbol.hic_type
        return self._type_of(expr)


def check_program(program: ast.Program, types: TypeTable) -> CheckedProgram:
    """Run semantic analysis over a parsed program."""
    seen_threads: set[str] = set()
    for thread in program.threads:
        if thread.name in seen_threads:
            raise HicNameError(
                f"duplicate thread name {thread.name!r}", thread.location
            )
        seen_threads.add(thread.name)

    constants: dict[str, int] = {}
    for pragma in program.constants:
        if pragma.name in constants:
            raise HicNameError(
                f"duplicate constant {pragma.name!r}", pragma.location
            )
        constants[pragma.name] = pragma.value

    interfaces: dict[str, str] = {}
    for pragma in program.interfaces:
        if pragma.name in interfaces:
            raise HicNameError(
                f"duplicate interface {pragma.name!r}", pragma.location
            )
        interfaces[pragma.name] = pragma.kind

    # Pass 1: build every thread's scope from its declarations, parameters,
    # and the program-level constants.
    scopes: dict[str, ThreadScope] = {}
    for thread in program.threads:
        scope = ThreadScope(thread.name)
        for param in thread.params:
            scope.declare(Symbol(param, INT, SymbolKind.PARAMETER), thread.location)
        for decl in thread.declarations():
            for name, size in decl.declarators():
                scope.declare(
                    Symbol(name, decl.var_type, SymbolKind.VARIABLE, size),
                    decl.location,
                )
        for name in constants:
            if name not in scope:
                scope.symbols[name] = Symbol(name, INT, SymbolKind.CONSTANT)
        scopes[thread.name] = scope

    # Pass 2: import shared variables.  A #producer{id, [t, v]} pragma inside
    # a consumer thread makes the producer's variable ``v`` readable here via
    # the logical global shared memory (Figure 1 reads ``x1`` inside t2/t3).
    for thread in program.threads:
        scope = scopes[thread.name]
        for node in ast.walk(thread.body):
            if not isinstance(node, ast.Assign):
                continue
            for pragma in node.pragmas:
                if not isinstance(pragma, ast.ProducerPragma):
                    continue
                for link in pragma.links:
                    if link.thread not in scopes:
                        raise HicNameError(
                            f"#producer pragma references unknown thread "
                            f"{link.thread!r}",
                            pragma.location,
                        )
                    producer_scope = scopes[link.thread]
                    if link.variable not in producer_scope:
                        raise HicNameError(
                            f"#producer pragma references {link.variable!r}, "
                            f"which thread {link.thread!r} does not declare",
                            pragma.location,
                        )
                    produced = producer_scope.symbols[link.variable]
                    if link.variable in scope:
                        existing = scope.symbols[link.variable]
                        if existing.kind is not SymbolKind.SHARED:
                            raise HicNameError(
                                f"{link.variable!r} is declared locally in "
                                f"thread {thread.name!r} but also imported as "
                                f"a shared variable from {link.thread!r}",
                                pragma.location,
                            )
                    else:
                        scope.symbols[link.variable] = Symbol(
                            produced.name,
                            produced.hic_type,
                            SymbolKind.SHARED,
                            produced.array_size,
                        )

    # Pass 3: type-check thread bodies against the finished scopes.
    for thread in program.threads:
        checker = _ThreadChecker(thread, types, scopes[thread.name], interfaces)
        checker.check()

    dependencies = resolve_dependencies(program)
    for dep in dependencies:
        producer_scope = scopes[dep.producer_thread]
        if dep.producer_var not in producer_scope:
            raise HicNameError(
                f"dependency {dep.dep_id!r} producer variable "
                f"{dep.producer_var!r} is not declared in thread "
                f"{dep.producer_thread!r}"
            )
        for ref in dep.consumers:
            if ref.variable not in scopes[ref.thread]:
                raise HicNameError(
                    f"dependency {dep.dep_id!r} consumer variable "
                    f"{ref.variable!r} is not declared in thread {ref.thread!r}"
                )

    return CheckedProgram(
        program=program,
        types=types,
        scopes=scopes,
        constants=constants,
        interfaces=interfaces,
        dependencies=dependencies,
    )


def analyze(
    source: str, filename: str = "<hic>", infer_pragmas: bool = False
) -> CheckedProgram:
    """Parse and semantically check hic source in one call.

    With ``infer_pragmas=True``, producer/consumer pragmas are derived
    from cross-thread use-def analysis before checking (the paper's §2
    alternative to explicit annotation); explicit pragmas take precedence.
    """
    program, types = parse_with_types(source, filename)
    if infer_pragmas:
        from .autopragma import apply_inferred_pragmas

        apply_inferred_pragmas(program)
    return check_program(program, types)
