"""Resolution of producer/consumer pragmas into dependency records.

Per the paper (section 2), the user marks inter-thread memory dependencies
with paired pragmas:

* In the **producer** thread, ``#consumer{mt1, [t2,y1], [t3,z1]}`` annotates
  the assignment that *writes* the shared value and lists where it will be
  consumed.
* In each **consumer** thread, ``#producer{mt1, [t1,x1]}`` annotates the
  assignment that *reads* the shared value and names the producer.

The identifier (``mt1``) ties the two sides together and distinguishes
multiple dependencies on the same variable.  This module cross-validates the
two sides and produces :class:`Dependency` records, the input to memory
allocation and controller generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast
from .errors import HicPragmaError


@dataclass(frozen=True)
class ConsumerRef:
    """One consumer endpoint of a dependency: the consuming thread and the
    local variable that receives the value."""

    thread: str
    variable: str


@dataclass(frozen=True)
class Dependency:
    """A fully resolved inter-thread memory dependency.

    Attributes:
        dep_id: The pragma identifier (``mt1`` in Figure 1).
        producer_thread: Name of the thread performing the guarded write.
        producer_var: The shared variable written by the producer; its BRAM
            address is the one guarded by the memory controller.
        consumers: Consumer endpoints, in source order.  ``len(consumers)``
            is the paper's *dependency number* ``dn`` — the count of consumer
            reads that must follow each producer write.
    """

    dep_id: str
    producer_thread: str
    producer_var: str
    consumers: tuple[ConsumerRef, ...]

    @property
    def dependency_number(self) -> int:
        """The paper's ``dn``: consumers outstanding after each write."""
        return len(self.consumers)

    def consumer_threads(self) -> tuple[str, ...]:
        return tuple(ref.thread for ref in self.consumers)


def _expression_reads(expr: ast.Expr) -> set[str]:
    """All variable names read within an expression."""
    names: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.add(node.ident)
        elif isinstance(node, ast.FieldAccess) and isinstance(node.base, ast.Name):
            names.add(node.base.ident)
    return names


def _target_name(target: ast.LValue) -> str:
    """The root variable name of an assignment target."""
    node: ast.Expr = target
    while isinstance(node, (ast.FieldAccess, ast.Index)):
        node = node.base
    if not isinstance(node, ast.Name):
        raise HicPragmaError("unsupported assignment target", target.location)
    return node.ident


def resolve_dependencies(program: ast.Program) -> list[Dependency]:
    """Cross-validate all producer/consumer pragmas and return dependencies.

    Raises:
        HicPragmaError: on any inconsistency — missing counterpart pragma,
            mismatched thread/variable links, duplicate producers for a
            dep_id, or references to unknown threads.
    """
    annotated = ast.dependency_pragmas(program)
    thread_names = set(program.thread_names())

    producers: dict[str, tuple[ast.Thread, ast.Assign, ast.ConsumerPragma]] = {}
    consumer_sides: dict[str, list[tuple[ast.Thread, ast.Assign, ast.ProducerPragma]]] = {}

    for thread, stmt, pragma in annotated:
        for link in pragma.links:
            if link.thread not in thread_names:
                raise HicPragmaError(
                    f"pragma for dependency {pragma.dep_id!r} references "
                    f"unknown thread {link.thread!r}",
                    pragma.location,
                )
        if isinstance(pragma, ast.ConsumerPragma):
            if pragma.dep_id in producers:
                raise HicPragmaError(
                    f"dependency {pragma.dep_id!r} has more than one producing "
                    "statement; use distinct dependency identifiers per producer",
                    pragma.location,
                )
            producers[pragma.dep_id] = (thread, stmt, pragma)
        else:
            consumer_sides.setdefault(pragma.dep_id, []).append(
                (thread, stmt, pragma)
            )

    dependencies: list[Dependency] = []
    for dep_id, (prod_thread, prod_stmt, consumer_pragma) in sorted(
        producers.items()
    ):
        produced_var = _target_name(prod_stmt.target)
        declared_consumers = [
            ConsumerRef(link.thread, link.variable)
            for link in consumer_pragma.links
        ]

        consuming = consumer_sides.pop(dep_id, [])
        if not consuming:
            raise HicPragmaError(
                f"dependency {dep_id!r} declares consumers but no consuming "
                "statement carries a matching #producer pragma",
                consumer_pragma.location,
            )

        seen: dict[ConsumerRef, bool] = {ref: False for ref in declared_consumers}
        for cons_thread, cons_stmt, producer_pragma in consuming:
            link = producer_pragma.links[0]
            if len(producer_pragma.links) != 1:
                raise HicPragmaError(
                    f"#producer pragma for {dep_id!r} must name exactly one "
                    "producer [thread, var]",
                    producer_pragma.location,
                )
            if (link.thread, link.variable) != (prod_thread.name, produced_var):
                raise HicPragmaError(
                    f"#producer pragma for {dep_id!r} names "
                    f"[{link.thread},{link.variable}] but the producing "
                    f"statement is [{prod_thread.name},{produced_var}]",
                    producer_pragma.location,
                )
            if produced_var not in _expression_reads(cons_stmt.value):
                raise HicPragmaError(
                    f"consuming statement for {dep_id!r} in thread "
                    f"{cons_thread.name!r} does not read {produced_var!r}",
                    producer_pragma.location,
                )
            ref = ConsumerRef(cons_thread.name, _target_name(cons_stmt.target))
            if ref not in seen:
                raise HicPragmaError(
                    f"thread {cons_thread.name!r} consumes dependency "
                    f"{dep_id!r} into {ref.variable!r}, which the producer's "
                    "#consumer pragma does not declare",
                    producer_pragma.location,
                )
            if seen[ref]:
                raise HicPragmaError(
                    f"duplicate consuming statement for dependency {dep_id!r} "
                    f"endpoint [{ref.thread},{ref.variable}]",
                    producer_pragma.location,
                )
            seen[ref] = True

        missing = [ref for ref, found in seen.items() if not found]
        if missing:
            detail = ", ".join(f"[{ref.thread},{ref.variable}]" for ref in missing)
            raise HicPragmaError(
                f"dependency {dep_id!r} declares consumers with no matching "
                f"#producer-annotated statement: {detail}",
                consumer_pragma.location,
            )

        dependencies.append(
            Dependency(
                dep_id=dep_id,
                producer_thread=prod_thread.name,
                producer_var=produced_var,
                consumers=tuple(declared_consumers),
            )
        )

    if consumer_sides:
        stray = sorted(consumer_sides)
        first = consumer_sides[stray[0]][0][2]
        raise HicPragmaError(
            f"#producer pragma(s) reference dependency id(s) with no producing "
            f"statement: {', '.join(stray)}",
            first.location,
        )

    return dependencies
