"""The hic type system.

Section 2 of the paper lists the supported variable types: ``integer``,
``character``, and user-defined types ("eg: with fixed bit width or a union
of existing types"), plus the pre-defined ``message`` type that models the
logical global shared memory ("a tub of packets (or cells)").

All types have a fixed bit width, because every variable ultimately maps to
bits of an on-chip BRAM or to fabric registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class HicType:
    """Abstract base for all hic types."""

    name: str

    @property
    def bit_width(self) -> int:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntType(HicType):
    """The built-in ``int`` type (32-bit two's complement by default)."""

    width: int = 32
    name: str = "int"

    @property
    def bit_width(self) -> int:
        return self.width


@dataclass(frozen=True)
class CharType(HicType):
    """The built-in ``char`` type (8-bit)."""

    name: str = "char"

    @property
    def bit_width(self) -> int:
        return 8


@dataclass(frozen=True)
class BoolType(HicType):
    """Result type of comparisons and logical operators (1 bit)."""

    name: str = "bool"

    @property
    def bit_width(self) -> int:
        return 1


@dataclass(frozen=True)
class BitsType(HicType):
    """A user-defined fixed-bit-width type, declared ``type name : N;``."""

    name: str
    width: int

    @property
    def bit_width(self) -> int:
        if self.width <= 0:
            raise ValueError(f"type {self.name} has non-positive width")
        return self.width


@dataclass(frozen=True)
class UnionType(HicType):
    """A user-defined union of existing types, declared
    ``type name = union(a, b, ...);``.

    Its storage width is the maximum member width, as in a C union.
    """

    name: str
    members: tuple[HicType, ...]

    @property
    def bit_width(self) -> int:
        return max(member.bit_width for member in self.members)


#: Named fields of the pre-defined ``message`` type.  The paper does not give
#: the field layout; we use a minimal IPv4-oriented layout sufficient for the
#: IP-forwarding evaluation application: a handful of header words plus an
#: opaque payload handle.  Offsets are in bits from the start of the message.
MESSAGE_FIELDS: dict[str, tuple[int, int]] = {
    "length": (0, 16),
    "port_in": (16, 8),
    "port_out": (24, 8),
    "src_addr": (32, 32),
    "dst_addr": (64, 32),
    "ttl": (96, 8),
    "protocol": (104, 8),
    "checksum": (112, 16),
    "payload": (128, 32),
}


@dataclass(frozen=True)
class MessageType(HicType):
    """The pre-defined ``message`` type: one network packet/cell in the tub.

    Threads at the network interface receive and transmit messages one at a
    time; computation threads have at most one message in flight.
    """

    name: str = "message"

    @property
    def bit_width(self) -> int:
        offset, width = max(MESSAGE_FIELDS.values())
        return offset + width

    @staticmethod
    def field_slice(field_name: str) -> tuple[int, int]:
        """Return ``(bit_offset, bit_width)`` of a message field."""
        if field_name not in MESSAGE_FIELDS:
            raise KeyError(f"message has no field {field_name!r}")
        return MESSAGE_FIELDS[field_name]

    @staticmethod
    def field_names() -> tuple[str, ...]:
        return tuple(MESSAGE_FIELDS)


#: Singleton instances for the built-ins, shared by parser and checker.
INT = IntType()
CHAR = CharType()
BOOL = BoolType()
MESSAGE = MessageType()


@dataclass
class TypeTable:
    """Registry of the named types visible to a hic program."""

    _types: dict[str, HicType] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for builtin in (INT, CHAR, BOOL, MESSAGE):
            self._types.setdefault(builtin.name, builtin)

    def declare(self, hic_type: HicType) -> HicType:
        """Register a user-defined type; duplicate names are an error."""
        if hic_type.name in self._types:
            raise KeyError(f"type {hic_type.name!r} already declared")
        self._types[hic_type.name] = hic_type
        return hic_type

    def lookup(self, name: str) -> HicType:
        if name not in self._types:
            raise KeyError(f"unknown type {name!r}")
        return self._types[name]

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def names(self) -> tuple[str, ...]:
        return tuple(self._types)


def is_numeric(hic_type: HicType) -> bool:
    """Whether a type participates in arithmetic (ints, chars, bit vectors,
    and unions whose members are all numeric)."""
    if isinstance(hic_type, UnionType):
        return all(is_numeric(member) for member in hic_type.members)
    return isinstance(hic_type, (IntType, CharType, BitsType, BoolType))


def common_type(left: HicType, right: HicType) -> HicType:
    """The usual-arithmetic-conversion result of a binary operation.

    The wider operand's type wins; equal widths prefer the left operand.
    Raises ``TypeError`` for non-numeric operands (e.g. whole messages).
    """
    if not is_numeric(left) or not is_numeric(right):
        raise TypeError(f"no common type between {left} and {right}")
    if right.bit_width > left.bit_width:
        return right
    return left
