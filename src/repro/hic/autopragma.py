"""Pragma inference: derive producer/consumer annotations automatically.

Section 2 of the paper notes the explicit pragmas are a front-end
convenience: "In practice, one can use standard compiler use-def analysis
[7] and other lifetime analysis methods [9] to extract producers and
consumers from a given specification."

:func:`apply_inferred_pragmas` implements that path: it runs cross-thread
use-def analysis over a parsed (pragma-free) program and *injects* the
equivalent ``#consumer``/``#producer`` pragmas into the AST, after which
the normal resolution, checking, and controller generation apply
unchanged.  A variable qualifies when it is:

* written by exactly **one** statement in exactly **one** thread (a unique
  producer — the paper's dependency-list model stores one producer per
  entry), and
* read by at least one **other** thread, with each reading thread
  consuming it in exactly one assignment (so the consumer endpoint —
  thread plus target variable — is unambiguous).

Variables that do not qualify are left untouched; explicit pragmas on a
variable suppress inference for it (the user's annotation wins).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast


@dataclass(frozen=True)
class InferredDependency:
    """One injected dependency, for reporting."""

    dep_id: str
    variable: str
    producer_thread: str
    consumer_threads: tuple[str, ...]


def _assignments_of(thread: ast.Thread) -> list[ast.Assign]:
    return [
        node for node in ast.walk(thread.body) if isinstance(node, ast.Assign)
    ]


def _target_root(target: ast.LValue) -> str:
    node: ast.Expr = target
    while isinstance(node, (ast.FieldAccess, ast.Index)):
        node = node.base
    assert isinstance(node, ast.Name)
    return node.ident


def _reads_of(stmt: ast.Assign) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(stmt.value):
        if isinstance(node, ast.Name):
            names.add(node.ident)
    return names


def _pragma_covered_variables(program: ast.Program) -> set[str]:
    covered: set[str] = set()
    for thread in program.threads:
        for stmt in _assignments_of(thread):
            for pragma in stmt.pragmas:
                if isinstance(pragma, ast.ConsumerPragma):
                    covered.add(_target_root(stmt.target))
                else:
                    covered.add(pragma.links[0].variable)
    return covered


def apply_inferred_pragmas(program: ast.Program) -> list[InferredDependency]:
    """Inject inferred pragmas into ``program`` (in place).

    Returns the list of injected dependencies.  Safe to call on programs
    that already carry pragmas: explicitly annotated variables are skipped.
    """
    declared: dict[str, set[str]] = {}
    for thread in program.threads:
        names: set[str] = set()
        for decl in thread.declarations():
            names.update(decl.names)
        names.update(thread.params)
        declared[thread.name] = names

    # Writers/readers at statement granularity.
    writing_stmts: dict[str, list[tuple[ast.Thread, ast.Assign]]] = {}
    reading_stmts: dict[str, dict[str, list[ast.Assign]]] = {}
    for thread in program.threads:
        for stmt in _assignments_of(thread):
            root = _target_root(stmt.target)
            writing_stmts.setdefault(root, []).append((thread, stmt))
            for name in _reads_of(stmt):
                reading_stmts.setdefault(name, {}).setdefault(
                    thread.name, []
                ).append(stmt)

    covered = _pragma_covered_variables(program)
    inferred: list[InferredDependency] = []

    for variable in sorted(writing_stmts):
        if variable in covered:
            continue
        writers = writing_stmts[variable]
        if len(writers) != 1:
            continue  # needs a unique producing statement
        producer_thread, producing_stmt = writers[0]
        if variable not in declared.get(producer_thread.name, set()):
            continue  # parameters/constants are not storage

        readers = {
            thread_name: stmts
            for thread_name, stmts in reading_stmts.get(variable, {}).items()
            if thread_name != producer_thread.name
        }
        if not readers:
            continue
        if any(len(stmts) != 1 for stmts in readers.values()):
            continue  # ambiguous consumer endpoint
        # The consumer must not declare the name itself (that would be a
        # private variable that merely shadows the producer's).
        if any(
            variable in declared.get(thread_name, set())
            for thread_name in readers
        ):
            continue

        dep_id = f"auto_{variable}"
        links = []
        for thread_name in sorted(readers):
            consuming_stmt = readers[thread_name][0]
            links.append(
                ast.DependencyLink(
                    thread_name, _target_root(consuming_stmt.target)
                )
            )
            consuming_stmt.pragmas.append(
                ast.ProducerPragma(
                    dep_id,
                    [ast.DependencyLink(producer_thread.name, variable)],
                    consuming_stmt.location,
                )
            )
        producing_stmt.pragmas.append(
            ast.ConsumerPragma(dep_id, links, producing_stmt.location)
        )
        inferred.append(
            InferredDependency(
                dep_id=dep_id,
                variable=variable,
                producer_thread=producer_thread.name,
                consumer_threads=tuple(sorted(readers)),
            )
        )
    return inferred
