"""The hic concurrent language front-end.

hic (section 2 of the paper) is a concurrent asynchronous language for
networking applications: concurrency is expressed as hardware threads, and
cooperation happens through a logical global shared memory of ``message``
values.  This package provides the lexer, parser, AST, type system, pragma
resolution, and semantic analysis.

Typical use::

    from repro.hic import analyze

    checked = analyze(source_text)
    checked.dependencies     # resolved producer/consumer dependencies
    checked.scopes["t1"]     # per-thread symbol tables
"""

from . import ast
from .autopragma import InferredDependency, apply_inferred_pragmas
from .errors import (
    HicError,
    HicNameError,
    HicPragmaError,
    HicSemanticError,
    HicSyntaxError,
    HicTypeError,
    SourceLocation,
)
from .lexer import Lexer, Token, TokenKind, tokenize
from .parser import Parser, parse, parse_with_types
from .pragmas import ConsumerRef, Dependency, resolve_dependencies
from .semantic import (
    CheckedProgram,
    Symbol,
    SymbolKind,
    ThreadScope,
    analyze,
    check_program,
)
from .types import (
    BOOL,
    CHAR,
    INT,
    MESSAGE,
    BitsType,
    BoolType,
    CharType,
    HicType,
    IntType,
    MessageType,
    TypeTable,
    UnionType,
)

__all__ = [
    "ast",
    "analyze",
    "apply_inferred_pragmas",
    "InferredDependency",
    "check_program",
    "parse",
    "parse_with_types",
    "tokenize",
    "resolve_dependencies",
    "Lexer",
    "Parser",
    "Token",
    "TokenKind",
    "CheckedProgram",
    "Symbol",
    "SymbolKind",
    "ThreadScope",
    "Dependency",
    "ConsumerRef",
    "HicError",
    "HicSyntaxError",
    "HicTypeError",
    "HicNameError",
    "HicPragmaError",
    "HicSemanticError",
    "SourceLocation",
    "HicType",
    "IntType",
    "CharType",
    "BoolType",
    "BitsType",
    "UnionType",
    "MessageType",
    "TypeTable",
    "INT",
    "CHAR",
    "BOOL",
    "MESSAGE",
]
