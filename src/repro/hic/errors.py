"""Error types and source locations for the hic front-end.

Every diagnostic raised by the lexer, parser, or semantic analyzer carries a
:class:`SourceLocation` so that callers (and tests) can pinpoint the offending
construct in the original hic text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in a hic source text.

    Attributes:
        line: 1-based line number.
        column: 1-based column number.
        filename: Name used in diagnostics (defaults to ``"<hic>"``).
    """

    line: int = 1
    column: int = 1
    filename: str = "<hic>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class HicError(Exception):
    """Base class for all diagnostics produced by the hic front-end."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class HicSyntaxError(HicError):
    """Raised by the lexer or parser on malformed input."""


class HicTypeError(HicError):
    """Raised by the semantic analyzer on type violations."""


class HicNameError(HicError):
    """Raised on references to undeclared identifiers or duplicate declarations."""


class HicPragmaError(HicError):
    """Raised on malformed or inconsistent pragma usage."""


class HicSemanticError(HicError):
    """Raised on non-type semantic violations (e.g. message-in-flight rules)."""
