"""Tokenizer for the hic concurrent language.

The paper (section 2) describes hic as a concurrent asynchronous language for
networking applications: threads, a logical global shared memory of
``message`` values, integer/character/user-defined variable types, the usual
structured statements (if, case, for, while), and four pragmas
(``#interface``, ``#constant``, ``#producer``, ``#consumer``).

The lexer is a straightforward longest-match scanner.  Pragmas are tokenized
as ordinary punctuation (``#`` HASH followed by an identifier and a braced
argument list) so that the parser can treat them uniformly with statements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from .errors import HicSyntaxError, SourceLocation


class TokenKind(enum.Enum):
    """Lexical categories of hic tokens."""

    IDENT = "ident"
    INT = "int-literal"
    CHAR = "char-literal"
    STRING = "string-literal"
    KEYWORD = "keyword"
    PUNCT = "punct"
    HASH = "hash"
    EOF = "eof"


#: Reserved words of the language.  ``message`` is the pre-defined shared
#: memory data type of section 2; ``receive``/``transmit`` are the network
#: interface operations performed by I/O threads.
KEYWORDS = frozenset(
    {
        "thread",
        "int",
        "char",
        "message",
        "type",
        "union",
        "if",
        "else",
        "case",
        "of",
        "default",
        "for",
        "while",
        "return",
        "break",
        "continue",
        "receive",
        "transmit",
        "true",
        "false",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_PUNCT3 = ("<<=", ">>=")
_PUNCT2 = (
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "->",
)
_PUNCT1 = "+-*/%<>=!&|^~(){}[],;:.?"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source location."""

    kind: TokenKind
    text: str
    location: SourceLocation

    @property
    def int_value(self) -> int:
        """Integer value of an INT token (supports 0x/0b/0o prefixes)."""
        if self.kind is not TokenKind.INT:
            raise ValueError(f"not an integer token: {self!r}")
        return int(self.text, 0)

    @property
    def char_value(self) -> int:
        """Ordinal value of a CHAR token."""
        if self.kind is not TokenKind.CHAR:
            raise ValueError(f"not a char token: {self!r}")
        body = self.text[1:-1]
        if body.startswith("\\"):
            return ord(_ESCAPES[body[1]])
        return ord(body)

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"'}


class Lexer:
    """Scans hic source text into a token stream.

    Usage::

        tokens = list(Lexer(source).tokens())
    """

    def __init__(self, source: str, filename: str = "<hic>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    # -- low-level cursor helpers -------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos : self._pos + count]
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return text

    # -- skipping -----------------------------------------------------------------

    def _skip_trivia(self) -> None:
        """Consume whitespace and ``//`` / ``/* */`` comments."""
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise HicSyntaxError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    # -- scanning -----------------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, ending with a single EOF token."""
        while True:
            self._skip_trivia()
            location = self._location()
            ch = self._peek()
            if not ch:
                yield Token(TokenKind.EOF, "", location)
                return
            if ch.isalpha() or ch == "_":
                yield self._scan_word(location)
            elif ch.isdigit():
                yield self._scan_number(location)
            elif ch == "'":
                yield self._scan_char(location)
            elif ch == '"':
                yield self._scan_string(location)
            elif ch == "#":
                self._advance()
                yield Token(TokenKind.HASH, "#", location)
            else:
                yield self._scan_punct(location)

    def _scan_word(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, location)

    def _scan_number(self, location: SourceLocation) -> Token:
        start = self._pos
        if self._peek() == "0" and self._peek(1) in "xXbBoO":
            self._advance(2)
            while self._peek().isalnum():
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
        text = self._source[start : self._pos]
        try:
            int(text, 0)
        except ValueError:
            raise HicSyntaxError(f"malformed integer literal {text!r}", location)
        return Token(TokenKind.INT, text, location)

    def _scan_char(self, location: SourceLocation) -> Token:
        start = self._pos
        self._advance()  # opening quote
        if self._peek() == "\\":
            self._advance()
            if self._peek() not in _ESCAPES:
                raise HicSyntaxError(
                    f"unknown escape sequence '\\{self._peek()}'", location
                )
            self._advance()
        elif self._peek() and self._peek() != "'":
            self._advance()
        else:
            raise HicSyntaxError("empty character literal", location)
        if self._peek() != "'":
            raise HicSyntaxError("unterminated character literal", location)
        self._advance()
        return Token(TokenKind.CHAR, self._source[start : self._pos], location)

    def _scan_string(self, location: SourceLocation) -> Token:
        start = self._pos
        self._advance()  # opening quote
        while self._peek() and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self._peek() != '"':
            raise HicSyntaxError("unterminated string literal", location)
        self._advance()
        return Token(TokenKind.STRING, self._source[start : self._pos], location)

    def _scan_punct(self, location: SourceLocation) -> Token:
        for group in (_PUNCT3, _PUNCT2):
            for op in group:
                if self._source.startswith(op, self._pos):
                    self._advance(len(op))
                    return Token(TokenKind.PUNCT, op, location)
        ch = self._peek()
        if ch in _PUNCT1:
            self._advance()
            return Token(TokenKind.PUNCT, ch, location)
        raise HicSyntaxError(f"unexpected character {ch!r}", location)


def tokenize(source: str, filename: str = "<hic>") -> list[Token]:
    """Convenience wrapper returning the full token list (including EOF)."""
    return list(Lexer(source, filename).tokens())
