"""Abstract syntax tree for hic programs.

The AST mirrors the language sketch in section 2 of the paper: a program is a
set of ``thread`` definitions plus top-level type declarations and pragmas.
Each thread body contains variable declarations and structured statements
(assignments, ``if``, ``case`` state machines, ``for``/``while`` loops).

Producer/consumer pragmas attach to the assignment that immediately follows
them, exactly as in the Figure 1 example of the paper, where
``#consumer{mt1,[t2,y1],[t3,z1]}`` annotates the write ``x1 = f(xtmp, x2);``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from .errors import SourceLocation
from .types import HicType


class Node:
    """Base class for all AST nodes."""

    location: SourceLocation

    def children(self) -> Iterator["Node"]:
        """Iterate direct child nodes (used by generic walkers)."""
        return iter(())


def walk(node: Node) -> Iterator[Node]:
    """Depth-first pre-order traversal of an AST subtree."""
    yield node
    for child in node.children():
        yield from walk(child)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expr):
    value: int
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class CharLiteral(Expr):
    value: int
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class BoolLiteral(Expr):
    value: bool
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class Name(Expr):
    """Reference to a declared variable or constant."""

    ident: str
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class FieldAccess(Expr):
    """``base.field`` — access to a field of a ``message`` value."""

    base: Expr
    field_name: str
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.base


@dataclass
class Index(Expr):
    """``base[index]`` — element access into an array variable."""

    base: Expr
    index: Expr
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.base
        yield self.index


@dataclass
class Unary(Expr):
    """Unary operation: one of ``- ! ~``."""

    op: str
    operand: Expr
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Binary(Expr):
    """Binary operation (arithmetic, comparison, logic, shifts)."""

    op: str
    left: Expr
    right: Expr
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Expr
    then_value: Expr
    else_value: Expr
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then_value
        yield self.else_value


@dataclass
class Call(Expr):
    """A call to a combinational function, e.g. ``f(xtmp, x2)``.

    hic functions denote combinational logic blocks (the paper's ``f``, ``g``,
    ``h``); they have no side effects on memory.
    """

    callee: str
    args: list[Expr]
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield from self.args


#: Valid assignment targets.
LValue = Union[Name, FieldAccess, Index]


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DependencyLink:
    """One ``[thread, variable]`` pair inside a producer/consumer pragma."""

    thread: str
    variable: str


@dataclass
class ProducerPragma(Node):
    """``#producer{dep_id, [thread, var], ...}`` — names the *producer(s)* of
    the value consumed by the annotated statement (placed in consumer threads).
    """

    dep_id: str
    links: list[DependencyLink]
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class ConsumerPragma(Node):
    """``#consumer{dep_id, [thread, var], ...}`` — names the *consumer(s)* of
    the value produced by the annotated statement (placed in producer threads).
    """

    dep_id: str
    links: list[DependencyLink]
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class InterfacePragma(Node):
    """``#interface{name, kind}`` — declares a network interface
    (e.g. ``#interface{eth0, gige}``)."""

    name: str
    kind: str
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class ConstantPragma(Node):
    """``#constant{name, value}`` — a design-time constant (e.g. host address)."""

    name: str
    value: int
    location: SourceLocation = field(default_factory=SourceLocation)


DependencyPragma = Union[ProducerPragma, ConsumerPragma]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""


@dataclass
class VarDecl(Stmt):
    """``int x1, xtmp, table[8];`` — declaration of one or more variables.

    ``sizes`` parallels ``names``: entry > 0 declares an array of that many
    elements (arrays are what actually occupy BRAM space); 0 is a scalar.
    """

    names: list[str]
    var_type: HicType
    sizes: list[int] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation)

    def __post_init__(self) -> None:
        if not self.sizes:
            self.sizes = [0] * len(self.names)
        if len(self.sizes) != len(self.names):
            raise ValueError("VarDecl sizes must parallel names")

    def declarators(self) -> list[tuple[str, int]]:
        """``(name, array_size)`` pairs, array_size 0 for scalars."""
        return list(zip(self.names, self.sizes))


@dataclass
class Assign(Stmt):
    """``target op= value;`` with optional attached dependency pragmas."""

    target: LValue
    value: Expr
    op: str = "="
    pragmas: list[DependencyPragma] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (a bare call)."""

    expr: Expr
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.expr


@dataclass
class Block(Stmt):
    """``{ ... }`` — a statement sequence."""

    statements: list[Stmt] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield from self.statements


@dataclass
class If(Stmt):
    cond: Expr
    then_body: Block
    else_body: Optional[Block] = None
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then_body
        if self.else_body is not None:
            yield self.else_body


@dataclass
class CaseArm(Node):
    """One arm of a ``case`` statement: ``of <values>: { ... }``."""

    values: list[Expr]
    body: Block
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield from self.values
        yield self.body


@dataclass
class Case(Stmt):
    """``case (selector) { of v: {...} ... default: {...} }``.

    The paper calls these "state machines (case statements)"; a case over a
    state variable inside a loop is the idiomatic hic FSM.
    """

    selector: Expr
    arms: list[CaseArm]
    default: Optional[Block] = None
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.selector
        yield from self.arms
        if self.default is not None:
            yield self.default


@dataclass
class While(Stmt):
    cond: Expr
    body: Block
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


@dataclass
class For(Stmt):
    """``for (init; cond; step) { ... }`` with assignment init/step."""

    init: Optional[Assign]
    cond: Optional[Expr]
    step: Optional[Assign]
    body: Block = field(default_factory=Block)
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.cond is not None:
            yield self.cond
        if self.step is not None:
            yield self.step
        yield self.body


@dataclass
class Receive(Stmt):
    """``receive(msg, interface);`` — blocking read of the next message."""

    target: Name
    interface: str
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.target


@dataclass
class Transmit(Stmt):
    """``transmit(msg, interface);`` — emit a message on an interface."""

    source: Expr
    interface: str
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.source


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


@dataclass
class Break(Stmt):
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class Continue(Stmt):
    location: SourceLocation = field(default_factory=SourceLocation)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Thread(Node):
    """A hic thread: synthesized into a hardware FSM ("thread means a
    hardware thread, that is, each thread is synthesized into logic")."""

    name: str
    params: list[str]
    body: Block
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield self.body

    def declarations(self) -> list[VarDecl]:
        """All variable declarations anywhere in the thread body."""
        return [node for node in walk(self.body) if isinstance(node, VarDecl)]

    def statements(self) -> list[Stmt]:
        """Top-level statements of the thread body (excluding declarations)."""
        return [
            stmt for stmt in self.body.statements if not isinstance(stmt, VarDecl)
        ]


@dataclass
class Program(Node):
    """A complete hic program."""

    threads: list[Thread] = field(default_factory=list)
    interfaces: list[InterfacePragma] = field(default_factory=list)
    constants: list[ConstantPragma] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation)

    def children(self) -> Iterator[Node]:
        yield from self.threads

    def thread(self, name: str) -> Thread:
        """Look up a thread by name."""
        for thread in self.threads:
            if thread.name == name:
                return thread
        raise KeyError(f"no thread named {name!r}")

    def thread_names(self) -> list[str]:
        return [thread.name for thread in self.threads]


def dependency_pragmas(program: Program) -> list[tuple[Thread, Assign, DependencyPragma]]:
    """Collect every producer/consumer pragma with its thread and statement."""
    found: list[tuple[Thread, Assign, DependencyPragma]] = []
    for thread in program.threads:
        for node in walk(thread.body):
            if isinstance(node, Assign):
                for pragma in node.pragmas:
                    found.append((thread, node, pragma))
    return found
