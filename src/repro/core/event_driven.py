"""The event-driven statically scheduled memory organization (paper §3.2).

Port A stays generic; port B sits behind a multiplexer/de-multiplexer
network whose selection logic modulo-schedules producers, and — once the
current producer has written — chains an event through that producer's
consumers in a compile-time-fixed order.  Consumer reads are "initiated
only when the selection logic generates the corresponding slot number",
which makes the post-write latency of every consumer deterministic: the
k-th consumer in the chain reads exactly k cycles after the write.

The price is flexibility: adding a consumer requires regenerating both the
mux network and the producer/consumer FSMs' event handlers (the paper notes
FPGA reconfigurability is what makes this practical).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hic.pragmas import Dependency
from ..memory.bram import BlockRam
from .controller import MemRequest, MemResult, MemoryController
from .errors import ProtocolError
from .modulo import ModuloSchedule, SelectionLogic, SlotKind


@dataclass
class EventDrivenConfig:
    """Structural parameters of one event-driven wrapper."""

    schedule: ModuloSchedule
    address_bits: int = 9
    data_bits: int = 36

    @property
    def mux_leaves(self) -> int:
        """Leaves of the port-B mux/demux network (one per slot client)."""
        return len(self.schedule)

    @property
    def select_bits(self) -> int:
        return self.schedule.select_bits


class EventDrivenController(MemoryController):
    """Behavioural model of the event-driven statically scheduled wrapper."""

    def __init__(
        self,
        bram: BlockRam,
        dependencies: list[Dependency],
        address_bits: int = 9,
    ):
        super().__init__(bram)
        self.schedule = ModuloSchedule.build(dependencies)
        self.selection = SelectionLogic(self.schedule)
        self.config = EventDrivenConfig(
            schedule=self.schedule, address_bits=address_bits
        )
        #: events delivered to consumers: (cycle, dep_id, thread)
        self.events: list[tuple[int, str, str]] = []

    def _arbitrate_cycle(
        self, requests: list[MemRequest], cycle: int
    ) -> dict[str, MemResult]:
        results: dict[str, MemResult] = {}

        port_a = [r for r in requests if r.port == "A"]
        guarded = [r for r in requests if r.port in ("B", "C", "D")]

        # Physical port 0: direct generic access.
        if port_a:
            chosen = min(port_a, key=lambda r: r.client)
            results[chosen.client] = self._perform(chosen)

        # Physical port 1: only the thread holding the current slot may
        # access; everyone else blocks (static schedule).
        slot = self.selection.current
        if slot is not None:
            for request in guarded:
                if request.dep_id is None:
                    raise ProtocolError(
                        "event-driven wrapper port B requires a dep_id",
                        bram=self.bram.name,
                        client=request.client,
                        cycle=cycle,
                    )
                is_producer = request.write
                if self.selection.enabled(
                    request.client, request.dep_id, is_producer
                ):
                    results[request.client] = self._perform(request)
                    next_slot = self.selection.advance(cycle)
                    self.classify_epoch += 1
                    if (
                        is_producer
                        and next_slot is not None
                        and next_slot.kind is SlotKind.CONSUMER
                    ):
                        # The write is the event into the first consumer.
                        self.events.append(
                            (cycle, next_slot.dep_id, next_slot.thread)
                        )
                        if self.observer is not None:
                            self.observer.on_chain_event(
                                self.bram.name,
                                next_slot.dep_id,
                                next_slot.thread,
                                cycle,
                            )
                    elif not is_producer and next_slot is not None:
                        if next_slot.kind is SlotKind.CONSUMER:
                            # Chain the event into the next consumer.
                            self.events.append(
                                (cycle, next_slot.dep_id, next_slot.thread)
                            )
                            if self.observer is not None:
                                self.observer.on_chain_event(
                                    self.bram.name,
                                    next_slot.dep_id,
                                    next_slot.thread,
                                    cycle,
                                )
                    break  # one access per cycle on physical port 1

        return results

    def consumer_latency(self, dep_id: str, thread: str) -> int:
        """The deterministic post-write read latency of a consumer: its
        1-based rank in the dependency's consumer chain."""
        return self.schedule.consumer_rank(dep_id, thread) + 1

    # -- quiescence (fast-kernel wake contract) ---------------------------------------

    def next_wake(self, cycle: int):
        """Quiescent unless a re-asserted blocked request can be served.

        The selection logic advances only when the slot-holding thread's
        access is granted — a blocked schedule does not tick on its own
        — so the wrapper is quiescent exactly when no blocked port-A
        request exists and no blocked guarded request matches the
        current slot.
        """
        slot = self.selection.current
        for blocked in self.blocked:
            request = blocked.request
            if request.port == "A":
                return cycle + 1
            if slot is not None and request.dep_id is not None:
                if self.selection.enabled(
                    request.client, request.dep_id, request.write
                ):
                    return cycle + 1
        return None

    # -- wait attribution (profiler seam) ----------------------------------------------

    def classify_wait(self, request: MemRequest) -> tuple[str, str, str]:
        """Mirror of the §3.2 slot rules: a guarded request whose slot
        is *not* selected waits on the static schedule — for a producer
        that is the guard pacing it (``guard-stall``), for a consumer it
        is the not-yet-signalled event (``blocked-read``).  A request
        whose slot *is* enabled (or any port-A request) merely lost the
        one-access-per-cycle arbitration."""
        site = self.bram.name
        if request.port != "A" and request.dep_id is not None:
            slot = self.selection.current
            if slot is None or not self.selection.enabled(
                request.client, request.dep_id, request.write
            ):
                state = "guard-stall" if request.write else "blocked-read"
                return (state, site, request.port)
        return ("arbitration-loss", site, request.port)

    # -- watchdog recovery tap --------------------------------------------------------

    def force_unblock(self, request: MemRequest, cycle: int) -> bool:
        """Break-dependency recovery: skip the stuck slot.

        The static schedule has exactly one slot enabled; if its thread is
        dead the whole chain hangs.  Advancing the selection logic past the
        slot lets the rest of the chain proceed — the skipped access simply
        never happens, which the watchdog records as a degradation.
        """
        if self.selection.current is None:
            return False
        self.classify_epoch += 1
        self.selection.advance(cycle)
        return True

    def reset(self) -> None:
        super().reset()
        self.selection.reset()
        self.events.clear()
