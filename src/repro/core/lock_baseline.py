"""Lock-based synchronization baseline.

The paper motivates its memory-centric controllers against the
state-of-practice alternatives: "current shared memory abstractions based
on locks and mutual exclusions are difficult to use, scale, and generally
result in a tedious and error-prone design process" (§1).  To make that
comparison measurable, this controller implements what a designer would
hand-build without the paper's wrappers: a test-and-set lock plus a valid
flag per shared variable, with consumers spinning until data is ready.

Protocol per access (each step costs one cycle, as each is a separate
lock-word/flag/data memory transaction):

* producer write: acquire lock → (spin while consumers outstanding) →
  write data + set valid/count → release;
* consumer read: acquire lock → check valid → if not valid: release and
  spin (re-acquire later); if valid: read data + decrement count → release.

The recorded statistics separate useful transfer cycles from lock/spin
overhead — the quantity the paper's one-cycle guarded ports eliminate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..memory.bram import BlockRam
from ..memory.deplist import DependencyList
from .arbiter import RoundRobinArbiter
from .controller import MemRequest, MemResult, MemoryController


class _JobPhase(enum.Enum):
    ACQUIRE = "acquire"
    ACCESS = "access"
    RELEASE = "release"
    BACKOFF = "backoff"


@dataclass
class _Job:
    """Progress of one client's lock-protocol sequence."""

    request: MemRequest
    phase: _JobPhase = _JobPhase.ACQUIRE
    holds_lock: bool = False
    result_data: int = 0
    spin_cycles: int = 0
    protocol_cycles: int = 0


@dataclass
class LockStats:
    """Overhead accounting for the lock baseline."""

    useful_accesses: int = 0
    protocol_cycles: int = 0
    spin_cycles: int = 0
    failed_probes: int = 0

    @property
    def overhead_per_access(self) -> float:
        if self.useful_accesses == 0:
            return 0.0
        return (self.protocol_cycles + self.spin_cycles) / self.useful_accesses


class LockBaselineController(MemoryController):
    """Behavioural model of hand-built lock-based synchronization.

    Uses the same :class:`DependencyList` configuration as the arbitrated
    wrapper (base addresses + dependency numbers), but enforces it in
    "software" — lock words and flags — instead of guarded ports.
    """

    def __init__(
        self,
        bram: BlockRam,
        deplist: DependencyList,
        clients: list[str],
    ):
        super().__init__(bram)
        self.deplist = deplist
        self._arbiter = RoundRobinArbiter(list(clients) or ["-"])
        self._jobs: dict[str, _Job] = {}
        #: dep base address -> lock holder (None = free)
        self._locks: dict[int, str | None] = {
            entry.base_address: None for entry in deplist.entries
        }
        self.stats = LockStats()

    def _arbitrate_cycle(
        self, requests: list[MemRequest], cycle: int
    ) -> dict[str, MemResult]:
        results: dict[str, MemResult] = {}

        # Port A traffic bypasses the lock protocol entirely.
        port_a = [r for r in requests if r.port == "A"]
        if port_a:
            chosen = min(port_a, key=lambda r: r.client)
            results[chosen.client] = self._perform(chosen)

        # Adopt new guarded requests into jobs.
        guarded = [r for r in requests if r.port != "A"]
        for request in guarded:
            if request.address not in self._locks:
                raise KeyError(
                    f"no lock guards address {request.address} "
                    f"(client {request.client})"
                )
            if request.client not in self._jobs:
                self._jobs[request.client] = _Job(request=request)

        active_clients = {r.client for r in guarded}

        # One lock-word transaction per cycle (single lock memory port):
        # arbitrate among clients that need to touch their lock this cycle.
        contenders = {
            client
            for client, job in self._jobs.items()
            if client in active_clients
        }
        if contenders:
            winner = self._arbiter.grant(contenders)
            for client in contenders:
                job = self._jobs[client]
                if client == winner:
                    done = self._step(job, cycle)
                    if done is not None:
                        results[client] = done
                        del self._jobs[client]
                else:
                    job.spin_cycles += 1
                    self.stats.spin_cycles += 1
        return results

    def _step(self, job: _Job, cycle: int) -> MemResult | None:
        """Advance one job by one protocol cycle; a MemResult means done."""
        address = job.request.address
        entry = self.deplist.match(address)
        assert entry is not None
        job.protocol_cycles += 1
        self.stats.protocol_cycles += 1

        if job.phase is _JobPhase.ACQUIRE:
            holder = self._locks[address]
            if holder is None:
                self._locks[address] = job.request.client
                job.holds_lock = True
                job.phase = _JobPhase.ACCESS
            else:
                job.spin_cycles += 1
                self.stats.spin_cycles += 1
            return None

        if job.phase is _JobPhase.ACCESS:
            if job.request.write:
                # Producer: wait until the previous round is fully consumed.
                if entry.outstanding == 0:
                    self.bram.write(address, job.request.data, cycle, "L")
                    entry.outstanding = entry.dependency_number
                    self.classify_epoch += 1
                    job.phase = _JobPhase.RELEASE
                    if self.observer is not None:
                        self.observer.on_dep_armed(
                            self.bram.name,
                            entry.dep_id,
                            job.request.client,
                            address,
                            cycle,
                            entry.outstanding,
                        )
                else:
                    self.stats.failed_probes += 1
                    job.phase = _JobPhase.BACKOFF
            else:
                if entry.outstanding > 0:
                    job.result_data = self.bram.read(address, cycle, "L")
                    entry.outstanding -= 1
                    if entry.outstanding == 0:
                        # Guard predicates only see the 1 -> 0 boundary.
                        self.classify_epoch += 1
                    job.phase = _JobPhase.RELEASE
                    if self.observer is not None:
                        self.observer.on_dep_decrement(
                            self.bram.name,
                            entry.dep_id,
                            job.request.client,
                            address,
                            cycle,
                            entry.outstanding,
                        )
                else:
                    self.stats.failed_probes += 1
                    job.phase = _JobPhase.BACKOFF
            return None

        if job.phase is _JobPhase.BACKOFF:
            # Release the lock and go back to spinning on acquire.
            self._locks[address] = None
            job.holds_lock = False
            job.spin_cycles += 1
            self.stats.spin_cycles += 1
            job.phase = _JobPhase.ACQUIRE
            return None

        # RELEASE
        self._locks[address] = None
        job.holds_lock = False
        self.stats.useful_accesses += 1
        return MemResult(granted=True, data=job.result_data)

    # -- wait attribution (profiler seam) ----------------------------------------------

    def classify_wait(self, request: MemRequest) -> tuple[str, str, str]:
        """Lock-protocol semantics: a guarded access whose *data* guard
        would fail (producer with unconsumed data outstanding, consumer
        with nothing produced) is a true dependency wait even while the
        client is still churning through lock words; any other blocked
        cycle is lock/protocol contention — the overhead the paper's
        one-cycle guarded ports eliminate."""
        site = self.bram.name
        if request.port != "A":
            entry = self.deplist.match(request.address)
            if request.write:
                if entry is not None and entry.outstanding > 0:
                    return ("guard-stall", site, request.port)
            else:
                if entry is None or entry.outstanding == 0:
                    return ("blocked-read", site, request.port)
        return ("arbitration-loss", site, request.port)

    # -- quiescence (fast-kernel wake contract) ---------------------------------------

    def next_wake(self, cycle: int):
        """Never quiescent while anything is blocked: every contended
        cycle burns spin counters and advances job phases even when no
        access completes, so the fast kernel must execute lock-baseline
        contention cycle by cycle.  With no blocked requests, parked
        jobs cannot progress (a job only steps while its client
        re-asserts a request) and the controller is quiescent.
        """
        return cycle + 1 if self.blocked else None

    def reset(self) -> None:
        super().reset()
        self.deplist.reset()
        self._arbiter.reset()
        self._jobs.clear()
        for address in self._locks:
            self._locks[address] = None
        self.stats = LockStats()
