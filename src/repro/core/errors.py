"""Structured runtime errors raised by the memory controllers.

The paper's pitch is *safe by construction*: deadlocks are rejected
statically and guarded accesses block until legal.  When that construction
is violated at runtime — a protocol bug, an injected fault, a watchdog
firing — the failure must surface as a structured, attributable error
rather than a bare ``ValueError`` or a silently hung simulation.  Every
error carries the coordinates a report needs: the BRAM, the client thread,
the cycle, and (where applicable) the dependency involved.

``ControllerError`` derives from ``RuntimeError`` so pre-existing callers
that caught broad runtime failures keep working; the protocol-shape
subclasses additionally derive from ``ValueError`` for the same reason.
"""

from __future__ import annotations

from typing import Optional


class ControllerError(RuntimeError):
    """Base class: a runtime failure inside a memory organization.

    Attributes mirror the constructor keywords; any may be ``None`` when
    the coordinate does not apply (e.g. a system-wide deadlock has no
    single client).
    """

    kind = "controller-error"

    def __init__(
        self,
        message: str,
        *,
        bram: Optional[str] = None,
        client: Optional[str] = None,
        cycle: Optional[int] = None,
        dep_id: Optional[str] = None,
    ):
        super().__init__(message)
        self.message = message
        self.bram = bram
        self.client = client
        self.cycle = cycle
        self.dep_id = dep_id

    def describe(self) -> str:
        """One-line structured rendering for reports and logs."""
        coords = [
            f"{name}={value}"
            for name, value in (
                ("bram", self.bram),
                ("client", self.client),
                ("cycle", self.cycle),
                ("dep", self.dep_id),
            )
            if value is not None
        ]
        suffix = f" [{', '.join(coords)}]" if coords else ""
        return f"{self.kind}: {self.message}{suffix}"


class ProtocolError(ControllerError, ValueError):
    """A request violated the wrapper's port protocol (malformed traffic)."""

    kind = "protocol-error"


class UnknownPortError(ProtocolError):
    """A request named a port the wrapper does not expose."""

    kind = "unknown-port"


class AllocationError(ControllerError, ValueError):
    """The memory allocator could not place a variable or message.

    Derives from ``ValueError`` because the allocator historically raised
    bare ``ValueError``\\ s — callers catching those keep working.  The
    payload names the item and the sizes involved, so a report can say
    *what* did not fit *where* without parsing the message text.
    """

    kind = "allocation-error"

    def __init__(
        self,
        message: str,
        *,
        variable: Optional[str] = None,
        thread: Optional[str] = None,
        words_needed: Optional[int] = None,
        words_available: Optional[int] = None,
        **coords,
    ):
        super().__init__(message, **coords)
        self.variable = variable
        self.thread = thread
        self.words_needed = words_needed
        self.words_available = words_available

    def describe(self) -> str:
        base = super().describe()
        sizes = [
            f"{name}={value}"
            for name, value in (
                ("variable", self.variable),
                ("thread", self.thread),
                ("words_needed", self.words_needed),
                ("words_available", self.words_available),
            )
            if value is not None
        ]
        return f"{base} ({', '.join(sizes)})" if sizes else base


class GuardViolationError(ControllerError):
    """The dependency-list guard protocol was broken (e.g. a consumer read
    with no outstanding produce-consume cycle) — the runtime signature of a
    corrupted dependency list or a duplicated request."""

    kind = "guard-violation"


class ChannelProtocolError(ControllerError, ValueError):
    """An access violated a FIFO channel's proven shape — a write from a
    thread other than the classified producer, a read from a thread other
    than the classified consumer, or an untagged access.  This is the
    runtime assertion harness behind the channel classifier
    (:mod:`repro.analysis.channels`): the static single-writer in-order
    proof is re-checked at every access."""

    kind = "channel-protocol"


class WatchdogTimeout(ControllerError):
    """A guarded request stayed blocked past the watchdog threshold."""

    kind = "watchdog-timeout"

    def __init__(self, message: str, *, blocked_cycles: int = 0, **coords):
        super().__init__(message, **coords)
        self.blocked_cycles = blocked_cycles


class SimulationTimeout(ControllerError):
    """The simulation exceeded its wall-clock budget (``max_wall_seconds``).

    The in-process complement of the campaign engine's worker-kill
    timeout: a livelocked run — cycles keep executing but the workload
    never finishes — is catchable *inside* the process too, carrying
    the cycle it reached and the budget it blew.
    """

    kind = "simulation-timeout"

    def __init__(self, message: str, *, wall_seconds: float = 0.0, **coords):
        super().__init__(message, **coords)
        self.wall_seconds = wall_seconds


class ParameterError(ControllerError, ValueError):
    """A model or configuration parameter is out of its legal range.

    Raised by the analytical performance model (:mod:`repro.model`) and
    the ``predict`` CLI when an input is structurally impossible — a
    non-positive bank count, a negative latency, a traffic rate outside
    [0, 1].  Carries the offending parameter name and value so callers
    (and CI logs) can point at the exact field instead of re-parsing a
    message string.
    """

    kind = "parameter-error"

    def __init__(self, message: str, *, parameter=None, value=None, **coords):
        super().__init__(message, **coords)
        self.parameter = parameter
        self.value = value

    def describe(self) -> str:
        base = super().describe()
        if self.parameter is None:
            return base
        return f"{base} (parameter={self.parameter}, value={self.value!r})"


class RuntimeDeadlockError(ControllerError):
    """The system-level watchdog saw no executor progress while guarded
    requests stayed blocked — the dynamic complement of the static check in
    :mod:`repro.analysis.deadlock`."""

    kind = "runtime-deadlock"

    def __init__(self, message: str, *, stalled_cycles: int = 0, **coords):
        super().__init__(message, **coords)
        self.stalled_cycles = stalled_cycles
