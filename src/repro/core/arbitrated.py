"""The arbitrated memory organization (paper §3.1).

The wrapper adds two ports to a BRAM's native dual ports:

* **port A** — direct access to physical port 0 for "all single cycle
  non-dependent accesses";
* **port B** — remaining standard port, lowest priority on physical port 1;
* **port C** — guarded *consumer read* port: a read is granted only when
  the address's dependency-list entry has outstanding produced data,
  otherwise it blocks ("treated as a waiting request");
* **port D** — *producer write* port, highest priority.

Ports B, C, D share physical port 1 with fixed priority D > C > B, and
multiple thread clients on C (or D) are arbitrated round-robin.  The
dependency list — CAM-matched {dependency number, base address} entries —
implements the guard; each producer write arms the entry with ``dn``
outstanding reads, and the entry disarms when the last consumer has read.

Adding a consumer thread only widens the port-C arbiter and multiplexer
(no FSM changes) — the scalability property the paper credits to this
organization, bought with non-deterministic consumer-read latency.

Semantic note (surfaced by property testing, see
``tests/property/test_prop_controllers.py``): the dependency list counts
*reads*, not readers, so under skewed consumer timing one consumer can
legally take two of the ``dn`` read grants of a produce-consume cycle.
This is faithful to the paper's mechanism; balance relies on the
consumers' run-to-completion loop structure.  The event-driven
organization's slot table rules this out structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.bram import BlockRam
from ..memory.deplist import DependencyList
from .arbiter import PriorityArbiter, RoundRobinArbiter
from .cam import ContentAddressableMemory
from .controller import MemRequest, MemResult, MemoryController
from .errors import UnknownPortError


@dataclass
class ArbitratedConfig:
    """Structural parameters of one arbitrated wrapper (sized at design
    time; the RTL generator and area model consume this)."""

    consumer_clients: list[str]
    producer_clients: list[str]
    address_bits: int = 9
    data_bits: int = 36

    @property
    def pseudo_ports(self) -> int:
        """Pseudo-ports multiplexed onto port C (the paper's scaling knob)."""
        return len(self.consumer_clients)


class ArbitratedController(MemoryController):
    """Behavioural model of the arbitrated wrapper around one BRAM."""

    def __init__(
        self,
        bram: BlockRam,
        deplist: DependencyList,
        consumer_clients: list[str],
        producer_clients: list[str],
        port_a_clients: list[str] | None = None,
    ):
        super().__init__(bram)
        self.deplist = deplist
        self.config = ArbitratedConfig(
            consumer_clients=list(consumer_clients),
            producer_clients=list(producer_clients),
            address_bits=deplist.address_bits,
        )
        self._arb_c = RoundRobinArbiter(list(consumer_clients) or ["-"])
        self._arb_d = RoundRobinArbiter(list(producer_clients) or ["-"])
        self._arb_a = RoundRobinArbiter(
            list(port_a_clients) if port_a_clients else ["*any*"]
        )
        self._priority = PriorityArbiter()
        # The CAM mirrors the dependency list's guarded addresses.
        self.cam = ContentAddressableMemory(
            entries=max(1, len(deplist)), key_bits=deplist.address_bits
        )
        for row, entry in enumerate(deplist.entries):
            self.cam.write(row, entry.base_address, entry.dependency_number)
        #: cycles in which a blocked port-C read was overridden by port D
        self.override_count = 0
        #: entry-resolution cache for ``classify_wait``: CAM matches are
        #: static per deplist configuration, so a tagged request's entry
        #: (and its address's sibling set) resolve once per config
        self._wait_cache: dict = {}
        self._wait_cache_version = -1

    # -- policy ---------------------------------------------------------------------

    def _arbitrate_cycle(
        self, requests: list[MemRequest], cycle: int
    ) -> dict[str, MemResult]:
        results: dict[str, MemResult] = {}

        by_port: dict[str, list[MemRequest]] = {"A": [], "B": [], "C": [], "D": []}
        for request in requests:
            if request.port not in by_port:
                raise UnknownPortError(
                    f"unknown wrapper port {request.port!r}",
                    bram=self.bram.name,
                    client=request.client,
                    cycle=cycle,
                )
            by_port[request.port].append(request)

        # Physical port 0: direct port-A access.  The design-time schedule
        # should not double-book it; if it does, serve one per cycle,
        # round-robin so no client is starved by a lexicographic tie-break.
        if by_port["A"]:
            requesting = {r.client for r in by_port["A"]}
            for client in sorted(requesting - set(self._arb_a.clients)):
                self._arb_a.clients.append(client)
            winner = self._arb_a.grant(requesting)
            chosen = next(r for r in by_port["A"] if r.client == winner)
            results[chosen.client] = self._perform(chosen)

        # Physical port 1: priority D > C > B among *grantable* requests.
        d_allowed = [
            r
            for r in by_port["D"]
            if self.deplist.producer_write_allowed(r.address, r.client, r.dep_id)
        ]
        c_allowed = [
            r
            for r in by_port["C"]
            if self.deplist.consumer_read_allowed(r.address, r.client, r.dep_id)
        ]
        # Port B is only served when ports C and D are idle (no requests at
        # all, granted or blocked): "as long as there are no current
        # requests on port C or D".
        b_allowed = (
            by_port["B"] if not by_port["C"] and not by_port["D"] else []
        )

        port_classes: set[str] = set()
        if d_allowed:
            port_classes.add("D")
        if c_allowed:
            port_classes.add("C")
        if b_allowed:
            port_classes.add("B")
        selected = self._priority.select(port_classes)

        if selected == "D":
            winner = self._arb_d.grant({r.client for r in d_allowed})
            request = next(r for r in d_allowed if r.client == winner)
            results[request.client] = self._perform(request)
            self.deplist.note_producer_write(request.address, request.client, request.dep_id)
            # Arming flips guard predicates (outstanding 0 -> dn), so
            # cached wait classifications may be stale.
            self.classify_epoch += 1
            if self.observer is not None:
                entry = self.deplist.match_for_write(
                    request.address, request.client, request.dep_id
                )
                self.observer.on_dep_armed(
                    self.bram.name,
                    entry.dep_id if entry is not None else request.dep_id,
                    request.client,
                    request.address,
                    cycle,
                    entry.outstanding if entry is not None else 0,
                )
            if by_port["C"]:
                # A waiting (blocked) port-C read was overridden (§3.1).
                self.override_count += 1
                if self.observer is not None:
                    self.observer.on_override(self.bram.name, cycle)
        elif selected == "C":
            winner = self._arb_c.grant({r.client for r in c_allowed})
            request = next(r for r in c_allowed if r.client == winner)
            results[request.client] = self._perform(request)
            # A read whose address no longer matches any entry (possible
            # only if the list's configuration was upset at runtime) is a
            # plain read of whatever the BRAM holds: nothing to decrement.
            entry = self.deplist.match_for_read(
                request.address, request.client, request.dep_id
            )
            if entry is not None:
                self.deplist.note_consumer_read(
                    request.address, request.client, request.dep_id
                )
                if entry.outstanding == 0:
                    # Only the boundary transition (1 -> 0) can change a
                    # guard predicate — ``outstanding > 0`` and
                    # ``all(== 0)`` are blind to mid-range decrements —
                    # so only it invalidates cached classifications.
                    self.classify_epoch += 1
                if self.observer is not None:
                    self.observer.on_dep_decrement(
                        self.bram.name,
                        entry.dep_id,
                        request.client,
                        request.address,
                        cycle,
                        entry.outstanding,
                    )
        elif selected == "B":
            chosen = min(b_allowed, key=lambda r: r.client)
            results[chosen.client] = self._perform(chosen)

        return results

    # -- quiescence (fast-kernel wake contract) ---------------------------------------

    def next_wake(self, cycle: int):
        """Quiescent unless some re-asserted blocked request is grantable.

        Every piece of mutable wrapper state (deplist counters, CAM
        mirror, round-robin pointers, override count) moves only when a
        request is *granted*; arbitration itself is combinational.  So
        with only the current blocked set re-asserted, re-running
        ``_arbitrate_cycle`` is a no-op exactly when no blocked request
        passes its guard — the same grantability rules as the policy:

        * port A always grants one requester per cycle;
        * port D grants when the producer write is allowed;
        * port C grants when the consumer read is allowed;
        * port B grants only while ports C and D have no requests at all.
        """
        ports = {"A": [], "B": [], "C": [], "D": []}
        for blocked in self.blocked:
            ports[blocked.request.port].append(blocked.request)
        if ports["A"]:
            return cycle + 1
        for request in ports["D"]:
            if self.deplist.producer_write_allowed(
                request.address, request.client, request.dep_id
            ):
                return cycle + 1
        for request in ports["C"]:
            if self.deplist.consumer_read_allowed(
                request.address, request.client, request.dep_id
            ):
                return cycle + 1
        if ports["B"] and not ports["C"] and not ports["D"]:
            return cycle + 1
        return None

    # -- wait attribution (profiler seam) ----------------------------------------------

    def classify_wait(self, request: MemRequest) -> tuple[str, str, str]:
        """Mirror of the §3.1 grantability rules (see ``next_wake``):

        * a blocked port-D write whose guard *disallows* it is waiting
          for the previous round to drain → ``guard-stall``;
        * a blocked port-C read whose guard disallows it is waiting for
          the producer's data → ``blocked-read``;
        * everything else (port A mux loss, allowed-but-unserved C/D,
          port B yielding to C/D traffic) lost arbitration.

        Entry resolution goes through :attr:`_wait_cache` — matches
        depend only on the deplist *configuration*, so they are
        re-derived only when ``config_version`` moves (a corruption
        fault); the per-call work is just the counter predicates.
        Untagged port-C reads prefer an armed entry, which makes their
        resolution state-dependent — they take the uncached path.
        """
        site = self.bram.name
        port = request.port
        if port == "D" or (port == "C" and request.dep_id is not None):
            version = self.deplist.config_version
            if version != self._wait_cache_version:
                self._wait_cache_version = version
                self._wait_cache.clear()
            key = (request.client, port, request.address, request.dep_id)
            cached = self._wait_cache.get(key)
            if cached is None:
                if port == "D":
                    cached = (
                        self.deplist.match_for_write(
                            request.address, request.client, request.dep_id
                        ),
                        tuple(self.deplist.matches(request.address)),
                    )
                else:
                    cached = (
                        self.deplist.match_for_read(
                            request.address, request.client, request.dep_id
                        ),
                        (),
                    )
                self._wait_cache[key] = cached
            entry, siblings = cached
            if port == "D":
                # producer_write_allowed: a matching entry must exist
                # and every sibling on the address must be drained.
                if entry is None or any(e.outstanding for e in siblings):
                    return ("guard-stall", site, port)
            elif entry is not None and entry.outstanding == 0:
                # consumer_read_allowed: unguarded reads grant
                # defensively; a guarded one needs outstanding data.
                return ("blocked-read", site, port)
            return ("arbitration-loss", site, port)
        if port == "C" and not self.deplist.consumer_read_allowed(
            request.address, request.client, request.dep_id
        ):
            return ("blocked-read", site, port)
        return ("arbitration-loss", site, port)

    # -- watchdog recovery tap --------------------------------------------------------

    def force_unblock(self, request: MemRequest, cycle: int) -> bool:
        """Break-dependency recovery: force the stuck deplist entry into a
        state that lets ``request`` proceed next cycle.

        * a blocked consumer read is unstuck by force-arming its entry with
          one outstanding read (the data is whatever the BRAM holds);
        * a blocked producer write is unstuck by draining every armed
          sibling entry on the address (the unconsumed data is dropped).

        Both are *degradations*: legal traffic may now observe stale or
        skipped values — the watchdog records that alongside the recovery.
        """
        self.classify_epoch += 1
        if request.write:
            armed = [
                e for e in self.deplist.matches(request.address) if e.outstanding
            ]
            for entry in armed:
                entry.outstanding = 0
            return bool(armed)
        entry = self.deplist.match_for_read(
            request.address, request.client, request.dep_id
        )
        if entry is None or entry.outstanding > 0:
            return False
        entry.outstanding = 1
        return True

    def reset(self) -> None:
        super().reset()
        self.deplist.reset()
        self._arb_c.reset()
        self._arb_d.reset()
        self._arb_a.reset()
        self.override_count = 0
