"""Content-addressable memory used by the arbitrated wrapper.

Section 3.1: "A content addressable memory (CAM) like structure is used for
performing comparisons on all the addresses in the dependency list."  This
is a small fully-parallel CAM: every valid entry's key is compared against
the search key in one cycle.

The behavioural model below backs the simulator; its dimensions (entries ×
key width) also size the comparator tree the area model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CamEntry:
    key: int = 0
    value: int = 0
    valid: bool = False


@dataclass
class ContentAddressableMemory:
    """A fully parallel CAM with ``entries`` rows of ``key_bits`` keys."""

    entries: int
    key_bits: int
    rows: list[CamEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("CAM needs at least one entry")
        if self.key_bits <= 0:
            raise ValueError("CAM key width must be positive")
        if not self.rows:
            self.rows = [CamEntry() for __ in range(self.entries)]

    @property
    def key_mask(self) -> int:
        return (1 << self.key_bits) - 1

    def write(self, row: int, key: int, value: int = 0) -> None:
        """Program one row (configuration-time for the dependency list)."""
        if not 0 <= row < self.entries:
            raise IndexError(f"CAM row {row} out of range")
        self.rows[row] = CamEntry(key=key & self.key_mask, value=value, valid=True)

    def invalidate(self, row: int) -> None:
        if not 0 <= row < self.entries:
            raise IndexError(f"CAM row {row} out of range")
        self.rows[row].valid = False

    def search(self, key: int) -> int | None:
        """Parallel match: the index of the first valid row whose key
        equals ``key``, or None (single-cycle in hardware)."""
        key &= self.key_mask
        for index, row in enumerate(self.rows):
            if row.valid and row.key == key:
                return index
        return None

    def value_at(self, row: int) -> int:
        entry = self.rows[row]
        if not entry.valid:
            raise ValueError(f"CAM row {row} is not valid")
        return entry.value

    def occupancy(self) -> int:
        return sum(1 for row in self.rows if row.valid)

    # -- hardware sizing -----------------------------------------------------------

    @property
    def comparator_bits(self) -> int:
        """Total comparator bits (entries × key width): the dominant LUT
        cost of the CAM."""
        return self.entries * self.key_bits

    @property
    def storage_bits(self) -> int:
        """Flip-flop bits: keys plus valid flags."""
        return self.entries * (self.key_bits + 1)
