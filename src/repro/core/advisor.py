"""Controller-selection advisor.

Section 4 of the paper closes with a design guideline: "for designs where
there is enough slack in timing and a need to scale up in the future, the
arbitrated memory organization is useful.  For designs where timing is
critical and needs more optimization, the event-driven memory organization
is useful.  In our design methodology we envisage providing the user with
access to either of these implementations based on design time
implementation constraints and parameters."

This module is that envisaged selector: given the user's constraints, it
recommends an organization and explains why.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Organization(enum.Enum):
    """The selectable memory organizations."""

    ARBITRATED = "arbitrated"
    EVENT_DRIVEN = "event_driven"
    LOCK_BASELINE = "lock_baseline"


@dataclass
class DesignConstraints:
    """Design-time constraints and parameters driving the selection."""

    #: Achievable slack: target period as a fraction of the estimated
    #: critical path (>1.0 means timing has margin).
    timing_slack: float = 1.0
    #: Will consumers be added after initial deployment?
    expect_new_consumers: bool = False
    #: Must the post-write consumer latency be deterministic?
    need_deterministic_latency: bool = False
    #: Is reuse of existing bus-style client code desired?
    reuse_bus_style_clients: bool = False


@dataclass
class Recommendation:
    organization: Organization
    reasons: list[str] = field(default_factory=list)

    def explain(self) -> str:
        lines = [f"recommended organization: {self.organization.value}"]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


def recommend(constraints: DesignConstraints) -> Recommendation:
    """Pick an organization per the paper's §4 guidance.

    Determinism and tight timing pull toward the event-driven organization;
    scalability and bus-style reuse pull toward the arbitrated one.  On a
    tie, the arbitrated organization wins because its base architecture is
    fixed ("simpler to implement").
    """
    event_score = 0
    arb_score = 0
    reasons: list[str] = []

    if constraints.need_deterministic_latency:
        event_score += 2
        reasons.append(
            "deterministic post-write latency requires the statically "
            "scheduled event chain (§3.2)"
        )
    if constraints.timing_slack < 1.0:
        event_score += 2
        reasons.append(
            "timing is critical: the event-driven organization achieved the "
            "higher post-P&R frequencies in the paper's evaluation (§4)"
        )
    elif constraints.timing_slack >= 1.2:
        arb_score += 1
        reasons.append(
            "ample timing slack tolerates the arbitration logic on the "
            "consumer read path"
        )
    if constraints.expect_new_consumers:
        arb_score += 2
        reasons.append(
            "new consumers only require extra multiplexing in the arbitrated "
            "organization; the event-driven one needs the thread FSMs "
            "regenerated (§3.2)"
        )
    if constraints.reuse_bus_style_clients:
        arb_score += 1
        reasons.append(
            "arbitrated port C behaves like a bus, easing reuse of existing "
            "bus-style client code (§6)"
        )

    if event_score > arb_score:
        organization = Organization.EVENT_DRIVEN
    else:
        organization = Organization.ARBITRATED
        if not reasons:
            reasons.append(
                "no constraint discriminates; the arbitrated organization's "
                "fixed base architecture is simpler to implement (§4)"
            )
    return Recommendation(organization=organization, reasons=reasons)
