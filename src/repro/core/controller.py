"""Common interface of the generated memory controllers.

Each BRAM gets a wrapper ("memory organization") that mediates thread
accesses.  The cycle protocol, shared by all three implementations
(arbitrated, event-driven, lock baseline):

1. during a cycle, every stalled/issuing thread **submits** its request;
2. the kernel calls :meth:`MemoryController.arbitrate` once per cycle; the
   controller applies its policy, performs granted BRAM accesses, and
   returns per-client results;
3. threads whose request was granted advance; the rest re-submit next
   cycle (the hardware equivalent: the request lines stay asserted).

Controllers also record a latency sample per completed request — the raw
data behind the paper's determinism discussion (§3.1 vs §3.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..memory.bram import BlockRam


@dataclass(frozen=True)
class MemRequest:
    """One thread's pending access for the current cycle."""

    client: str
    port: str
    address: int
    write: bool
    data: int = 0
    dep_id: Optional[str] = None

    @property
    def key(self) -> tuple:
        return (self.client, self.port, self.address, self.write)

    @property
    def sort_key(self) -> tuple:
        """Total order over requests — blocked-request diagnostics and
        multi-bank routing iterate in this order so reports render
        identically run to run."""
        return (
            self.client,
            self.port,
            self.address,
            int(self.write),
            self.dep_id or "",
        )

    def __repr__(self) -> str:
        kind = "write" if self.write else "read"
        dep = f" dep={self.dep_id}" if self.dep_id is not None else ""
        return (
            f"MemRequest({self.client}: {kind} @{self.address} "
            f"port {self.port}{dep})"
        )

    def __lt__(self, other: "MemRequest") -> bool:
        if not isinstance(other, MemRequest):
            return NotImplemented
        return self.sort_key < other.sort_key


@dataclass(frozen=True)
class MemResult:
    """Outcome of arbitration for one client."""

    granted: bool
    data: int = 0


@dataclass(frozen=True)
class LatencySample:
    """Completed request with its observed wait."""

    client: str
    port: str
    dep_id: Optional[str]
    issue_cycle: int
    grant_cycle: int

    @property
    def wait_cycles(self) -> int:
        return self.grant_cycle - self.issue_cycle


@dataclass(frozen=True)
class BlockedRequest:
    """A request submitted this cycle that arbitration did not grant —
    the per-controller tap the runtime watchdog reads."""

    request: MemRequest
    issue_cycle: int
    blocked_cycles: int


#: An injection seam over ``submit``: each tap may pass a request through
#: (possibly rewritten) or return ``None`` to drop it at the port.
RequestTap = Callable[[MemRequest], Optional[MemRequest]]


class MemoryController(abc.ABC):
    """Base class for the per-BRAM memory organizations."""

    def __init__(self, bram: BlockRam):
        self.bram = bram
        self._pending: dict[tuple, MemRequest] = {}
        self._issue_cycle: dict[tuple, int] = {}
        self.latency_samples: list[LatencySample] = []
        self.cycle: int = 0
        #: fault-injection seams applied to every submitted request
        self.request_taps: list[RequestTap] = []
        #: requests left ungranted by the most recent ``arbitrate`` call
        self.blocked: list[BlockedRequest] = []
        #: the same requests indexed by client (first in sort order wins
        #: for a client with several) — the profiler's per-cycle view.
        #: When the blocked membership is unchanged from the previous
        #: cycle (no grants, same pending keys) the *same dict object*
        #: is kept, so observers can use identity as a cheap "nothing
        #: moved" signal; its requests may then be the equal-keyed
        #: objects of an earlier cycle.
        self.blocked_by_client: dict[str, MemRequest] = {}
        self._blocked_keys: set = set()
        #: telemetry seam (:class:`repro.obs.Telemetry`); every call site
        #: is guarded by ``is not None`` so the disabled path costs one
        #: attribute check
        self.observer = None
        #: separate seam for per-submission notifications — only set for
        #: "full"-level tracing, because submits are the hottest call
        #: site and "deps"-level telemetry derives submission counts
        #: from grants instead (see ``unfinished_request_counts``)
        self.submit_observer = None
        #: classification-cache token (profiler seam): each organization
        #: bumps it exactly where state that its ``classify_wait`` reads
        #: mutates — deplist arm/decrement, slot advance, watchdog
        #: recovery, fault corruption.  A blocked request's
        #: classification is invariant between bumps, so the profiler
        #: may reuse it without re-deriving.
        self.classify_epoch = 0

    # -- cycle protocol ------------------------------------------------------------

    def submit(self, request: MemRequest) -> None:
        """Register a request for this cycle; idempotent across stalls."""
        for tap in self.request_taps:
            tapped = tap(request)
            if tapped is None:
                return  # dropped at the port
            request = tapped
        key = request.key
        self._pending[key] = request
        if key not in self._issue_cycle:
            self._issue_cycle[key] = self.cycle
            # Notify only on the first submission: re-submissions while
            # blocked model the request lines staying asserted, not new
            # requests.
            if self.submit_observer is not None:
                self.submit_observer.on_submit(self.bram.name, request)

    def arbitrate(self, cycle: int) -> dict[str, MemResult]:
        """Apply the organization's policy for one cycle."""
        self.cycle = cycle
        results = self._arbitrate_cycle(list(self._pending.values()), cycle)
        for key in list(self._pending):
            request = self._pending[key]
            result = results.get(request.client)
            if result is not None and result.granted:
                sample = LatencySample(
                    client=request.client,
                    port=request.port,
                    dep_id=request.dep_id,
                    issue_cycle=self._issue_cycle.pop(key),
                    grant_cycle=cycle,
                )
                self.latency_samples.append(sample)
                if self.observer is not None:
                    self.observer.on_grant(self.bram.name, request, sample)
                del self._pending[key]
        self.blocked = sorted(
            (
                BlockedRequest(
                    request=request,
                    issue_cycle=self._issue_cycle[key],
                    blocked_cycles=cycle - self._issue_cycle[key],
                )
                for key, request in self._pending.items()
            ),
            key=lambda b: b.request.sort_key,
        )
        # A request key fixes every classification-relevant field, and a
        # client can only change the request behind a key after a grant
        # empties its old key out of this set — so an unchanged ungranted
        # key set means the per-client view from last cycle is still
        # equivalent.  Keep the same object: identity is the observers'
        # "nothing moved" signal (grants of never-blocked requests don't
        # disturb it).
        if self._pending.keys() != self._blocked_keys:
            by_client: dict[str, MemRequest] = {}
            for item in self.blocked:
                client = item.request.client
                if client not in by_client:
                    by_client[client] = item.request
            self.blocked_by_client = by_client
            self._blocked_keys = set(self._pending)
        # Requests not granted remain pending; threads re-submit anyway.
        self._pending = {}
        return results

    @abc.abstractmethod
    def _arbitrate_cycle(
        self, requests: list[MemRequest], cycle: int
    ) -> dict[str, MemResult]:
        """Policy hook: grant a subset of ``requests`` and perform their
        BRAM accesses."""

    # -- common helpers ------------------------------------------------------------

    def _perform(self, request: MemRequest) -> MemResult:
        """Execute a granted access against the BRAM."""
        if request.write:
            self.bram.write(request.address, request.data, self.cycle, request.port)
            return MemResult(granted=True)
        value = self.bram.read(request.address, self.cycle, request.port)
        return MemResult(granted=True, data=value)

    def force_unblock(self, request: MemRequest, cycle: int) -> bool:
        """Watchdog recovery seam: clear whatever state is holding
        ``request`` back, recording nothing.  Returns True if the
        organization could do anything; the base class cannot."""
        return False

    # -- wait attribution (profiler seam) ----------------------------------------------

    def classify_wait(self, request: MemRequest) -> tuple[str, str, str]:
        """Attribute one blocked cycle of ``request`` to a wait state.

        Returns ``(state, site, port)`` where *state* is one of the
        :data:`repro.obs.attribution.WAIT_STATES` strings (plain
        literals here — ``repro.obs`` imports this module, not the
        other way round) and *site* is the controller that held the
        request.  Organizations override this to mirror their own
        grantability rules; the conservative base answer is that a
        blocked request was grantable but lost arbitration.
        """
        return ("arbitration-loss", self.bram.name, request.port)

    # -- quiescence (fast-kernel wake contract) -------------------------------------

    def next_wake(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which arbitrating this controller
        could differ from doing nothing, assuming its clients re-assert
        exactly the requests currently in ``self.blocked`` and submit no
        new ones.

        ``None`` means *quiescent*: the controller's observable state
        (grants, counters, arbiter pointers) provably cannot change
        until a new request arrives, so the fast kernel may skip it for
        any number of cycles.  The conservative base implementation
        wakes next cycle whenever anything is blocked; organizations
        override this with their actual grantability rules.  Returned
        cycles must be ``> cycle``.
        """
        return cycle + 1 if self.blocked else None

    def note_idle_cycles(self, cycle: int) -> None:
        """Fast-kernel seam: the kernel skipped straight past a quiescent
        stretch and ``cycle`` is the last cycle it did *not* arbitrate.
        On a quiescent controller ``arbitrate`` only tracks the current
        cycle (which stamps the issue cycles of later submissions), so
        catching ``self.cycle`` up is exactly the skipped no-op work.
        """
        self.cycle = cycle

    def reset(self) -> None:
        self._pending.clear()
        self._issue_cycle.clear()
        self.latency_samples.clear()
        self.blocked.clear()
        self.blocked_by_client = {}
        self.cycle = 0
        self.classify_epoch += 1

    # -- statistics -----------------------------------------------------------------

    def unfinished_request_counts(self) -> dict[str, int]:
        """Per-port count of requests submitted but never granted (their
        issue cycles are still outstanding).  With the grant count this
        reconstructs the number of distinct submissions: every first
        submission either grants eventually or leaves its entry here."""
        counts: dict[str, int] = {}
        for key in self._issue_cycle:
            port = key[1]
            counts[port] = counts.get(port, 0) + 1
        return counts

    def waits_for(
        self, port: Optional[str] = None, dep_id: Optional[str] = None
    ) -> list[int]:
        """Observed wait cycles, optionally filtered by port or dependency."""
        return [
            s.wait_cycles
            for s in self.latency_samples
            if (port is None or s.port == port)
            and (dep_id is None or s.dep_id == dep_id)
        ]


@dataclass
class ControllerStats:
    """Aggregate latency statistics for reporting."""

    count: int
    min_wait: int
    max_wait: int
    mean_wait: float

    @classmethod
    def from_waits(cls, waits: list[int]) -> "ControllerStats":
        if not waits:
            return cls(0, 0, 0, 0.0)
        return cls(
            count=len(waits),
            min_wait=min(waits),
            max_wait=max(waits),
            mean_wait=sum(waits) / len(waits),
        )

    @property
    def deterministic(self) -> bool:
        """All observed waits identical — the §3.2 guarantee."""
        return self.count == 0 or self.min_wait == self.max_wait
