"""Modulo scheduling for the event-driven statically scheduled organization.

Section 3.2: "The selection logic uses modulo scheduling method to schedule
the producer and consumer memory accesses.  Modulo scheduling happens at two
levels: between different producers and between different consumers of a
given producer. ... This scheduling however is implemented as an event from
the producer thread into the first consumer thread, from the first consumer
thread into the second, and so on."

:class:`ModuloSchedule` is the compile-time artifact (the slot table wired
into the selection logic); :class:`SelectionLogic` is its runtime behaviour
used by the simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..hic.pragmas import Dependency


class SlotKind(enum.Enum):
    PRODUCER = "producer"
    CONSUMER = "consumer"


@dataclass(frozen=True)
class Slot:
    """One entry of the static slot table."""

    index: int
    kind: SlotKind
    dep_id: str
    thread: str

    def describe(self) -> str:
        return f"slot{self.index}:{self.kind.value}:{self.thread}({self.dep_id})"


@dataclass
class ModuloSchedule:
    """The compile-time slot table of one BRAM's selection logic.

    The table interleaves producers round-robin ("between different
    producers"), and after each producer slot lists that producer's
    consumers in their declared (compile-time) order.
    """

    slots: list[Slot] = field(default_factory=list)

    @classmethod
    def build(cls, dependencies: list[Dependency]) -> "ModuloSchedule":
        slots: list[Slot] = []
        for dep in dependencies:
            slots.append(
                Slot(len(slots), SlotKind.PRODUCER, dep.dep_id, dep.producer_thread)
            )
            for ref in dep.consumers:
                slots.append(
                    Slot(len(slots), SlotKind.CONSUMER, dep.dep_id, ref.thread)
                )
        return cls(slots)

    def __len__(self) -> int:
        return len(self.slots)

    def producer_slots(self) -> list[Slot]:
        return [s for s in self.slots if s.kind is SlotKind.PRODUCER]

    def consumer_slots(self, dep_id: str) -> list[Slot]:
        return [
            s
            for s in self.slots
            if s.kind is SlotKind.CONSUMER and s.dep_id == dep_id
        ]

    def consumer_rank(self, dep_id: str, thread: str) -> int:
        """Position of ``thread`` in the consumer chain of ``dep_id``
        (0 = first consumer to receive the event)."""
        for rank, slot in enumerate(self.consumer_slots(dep_id)):
            if slot.thread == thread:
                return rank
        raise KeyError(f"{thread!r} is not a consumer of {dep_id!r}")

    @property
    def select_bits(self) -> int:
        """Width of the selection value driving the mux network."""
        return max(1, (len(self.slots) - 1).bit_length())


@dataclass
class SelectionLogic:
    """Runtime behaviour of the selection logic.

    The current slot's thread is the only one whose port-B access is
    enabled.  A producer slot *blocks* until its producer performs the
    write ("The producer thread starts the selection logic — until this
    point the selection logic is blocking"); each consumer slot blocks
    until that consumer's read completes, then the event chains onward.
    """

    schedule: ModuloSchedule
    _position: int = 0
    event_log: list[tuple[int, str]] = field(default_factory=list)

    @property
    def current(self) -> Slot | None:
        if not self.schedule.slots:
            return None
        return self.schedule.slots[self._position]

    def enabled(self, thread: str, dep_id: str, is_producer: bool) -> bool:
        """Whether the access (thread, dep, role) holds the current slot."""
        slot = self.current
        if slot is None:
            return False
        wanted = SlotKind.PRODUCER if is_producer else SlotKind.CONSUMER
        return (
            slot.kind is wanted
            and slot.dep_id == dep_id
            and slot.thread == thread
        )

    def advance(self, cycle: int = 0) -> Slot | None:
        """Move to the next slot (called when the current access completes).
        Returns the new current slot."""
        if not self.schedule.slots:
            return None
        slot = self.schedule.slots[self._position]
        self.event_log.append((cycle, slot.describe()))
        self._position = (self._position + 1) % len(self.schedule.slots)
        return self.current

    def reset(self) -> None:
        self._position = 0
        self.event_log.clear()
