"""Arbiters for the arbitrated memory organization.

Section 3.1: access to the wrapper's guarded ports is arbitrated because
"there can be more than one thread as a client on these ports"; the paper's
experiments use "a simple round robin arbitration scheme".  Between port
classes, priority is fixed: "the write port (port D) gets highest priority,
the read port (port C) gets second priority, and the remaining standard
port has lowest priority".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RoundRobinArbiter:
    """Work-conserving round-robin arbiter over a fixed client list.

    The grant pointer advances past the last winner, so every requester is
    served within ``len(clients)`` grants (starvation-free) — but the *wait*
    any individual client experiences depends on who else is requesting,
    which is exactly the non-determinism the paper attributes to the
    arbitrated organization.
    """

    clients: list[str]
    _pointer: int = 0
    grant_history: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.clients:
            raise ValueError("arbiter needs at least one client")
        if len(set(self.clients)) != len(self.clients):
            raise ValueError("arbiter clients must be unique")

    def grant(self, requesting: set[str]) -> str | None:
        """Pick the next requester in round-robin order, or None."""
        unknown = requesting - set(self.clients)
        if unknown:
            raise KeyError(f"unknown arbiter clients: {sorted(unknown)}")
        n = len(self.clients)
        for i in range(n):
            idx = (self._pointer + i) % n
            client = self.clients[idx]
            if client in requesting:
                self._pointer = (idx + 1) % n
                self.grant_history.append(client)
                return client
        return None

    def reset(self) -> None:
        self._pointer = 0
        self.grant_history.clear()

    @property
    def width(self) -> int:
        """Number of request lines (sizing input for the area model)."""
        return len(self.clients)


@dataclass
class PriorityArbiter:
    """Fixed-priority selection among port classes (D > C > B)."""

    priority_order: tuple[str, ...] = ("D", "C", "B")

    def select(self, requesting_ports: set[str]) -> str | None:
        """The highest-priority port class with a pending request."""
        for port in self.priority_order:
            if port in requesting_ports:
                return port
        return None
