"""The paper's primary contribution: memory-centric synchronization
controllers for on-chip BRAMs.

* :mod:`~repro.core.arbitrated` — the arbitrated memory organization
  (§3.1): 4-port wrapper, CAM-matched dependency list, priority D > C > B,
  round-robin arbitration, blocking guarded accesses;
* :mod:`~repro.core.event_driven` — the event-driven statically scheduled
  organization (§3.2): mux/demux network + modulo-scheduling selection
  logic chaining events through consumers;
* :mod:`~repro.core.lock_baseline` — the hand-built lock/flag protocol the
  paper argues against, for measurable comparison;
* :mod:`~repro.core.advisor` — the §4 design-time organization selector;
* supporting pieces: round-robin/priority arbiters, the CAM, and the
  modulo scheduler.
"""

from .advisor import DesignConstraints, Organization, Recommendation, recommend
from .arbiter import PriorityArbiter, RoundRobinArbiter
from .arbitrated import ArbitratedConfig, ArbitratedController
from .cam import CamEntry, ContentAddressableMemory
from .controller import (
    BlockedRequest,
    ControllerStats,
    LatencySample,
    MemRequest,
    MemResult,
    MemoryController,
)
from .errors import (
    AllocationError,
    ControllerError,
    GuardViolationError,
    ParameterError,
    ProtocolError,
    RuntimeDeadlockError,
    SimulationTimeout,
    UnknownPortError,
    WatchdogTimeout,
)
from .event_driven import EventDrivenConfig, EventDrivenController
from .lock_baseline import LockBaselineController, LockStats
from .modulo import ModuloSchedule, SelectionLogic, Slot, SlotKind

__all__ = [
    "DesignConstraints",
    "Organization",
    "Recommendation",
    "recommend",
    "PriorityArbiter",
    "RoundRobinArbiter",
    "ArbitratedConfig",
    "ArbitratedController",
    "AllocationError",
    "BlockedRequest",
    "CamEntry",
    "ContentAddressableMemory",
    "ControllerError",
    "ControllerStats",
    "GuardViolationError",
    "ParameterError",
    "ProtocolError",
    "RuntimeDeadlockError",
    "SimulationTimeout",
    "UnknownPortError",
    "WatchdogTimeout",
    "LatencySample",
    "MemRequest",
    "MemResult",
    "MemoryController",
    "EventDrivenConfig",
    "EventDrivenController",
    "LockBaselineController",
    "LockStats",
    "ModuloSchedule",
    "SelectionLogic",
    "Slot",
    "SlotKind",
]
