"""End-to-end design flow: hic source to implementation and simulation.

This is the reproduction of the paper's tool flow (§3): "describing an
application in hic, from which a RTL HDL description is generated.  This
RTL code is then fed into standard synthesis, place, and route tools" —
with our FPGA estimation models standing in for ISE (see DESIGN.md §2).

Typical use::

    from repro.flow import compile_design, build_simulation
    from repro.core import Organization

    design = compile_design(source, organization=Organization.EVENT_DRIVEN)
    print(design.area_report("bram0").table_row())
    print(design.timing_report("bram0").render())
    verilog_text = design.verilog()

    sim = build_simulation(design)
    sim.kernel.run(1000)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .analysis.channels import (
    ChannelDecision,
    classify_channels,
    fifo_channel_name,
    fifo_lowered_variables,
)
from .analysis.deadlock import assert_deadlock_free
from .analysis.depgraph import DependencyGraph
from .analysis.memgraph import build_memory_graphs
from .core.advisor import Organization
from .core.arbitrated import ArbitratedController
from .core.controller import MemoryController
from .core.event_driven import EventDrivenController
from .core.lock_baseline import LockBaselineController
from .fabric import FabricConfig, FabricPlan, build_fabric, plan_fabric
from .fpga.area import (
    AreaReport,
    FabricAreaReport,
    UtilizationReport,
    estimate_area,
    estimate_design,
    estimate_fabric_area,
)
from .fpga.device import Device, XC2VP20
from .fpga.timing import (
    FabricTimingReport,
    TimingReport,
    estimate_fabric_timing,
    estimate_timing,
)
from .hic.pragmas import Dependency
from .hic.semantic import CheckedProgram, analyze
from .memory.allocation import (
    FABRIC_BRAM,
    MemoryMap,
    allocate,
    dependencies_per_bram,
)
from .memory.bram import BlockRam
from .memory.deplist import DependencyList
from .memory.fifo import DEFAULT_FIFO_DEPTH, FifoChannelController
from .memory.offchip import OffchipController, OffchipMemory
from .rtl.generate import (
    DEFAULT_DEPLIST_ENTRIES,
    WrapperParams,
    generate_arbitrated_wrapper,
    generate_crossbar,
    generate_design,
    generate_event_driven_wrapper,
    generate_fifo_channel,
    generate_lock_baseline,
    generate_thread_module,
)
from .rtl.netlist import Module
from .rtl.verilog import emit_verilog
from .sim.executor import RxInterface, ThreadExecutor, TxInterface
from .sim.kernel import SimulationKernel
from .synth.binding import DatapathSummary, bind_program
from .synth.fsm import ThreadFsm, synthesize_program

#: Port remapping per organization: guarded FSM ports (C/D) are served on
#: the event-driven wrapper's port B, and on the lock baseline's guarded
#: ("G") path.
_PORT_OVERRIDES: dict[Organization, dict[str, str]] = {
    Organization.ARBITRATED: {},
    Organization.EVENT_DRIVEN: {"C": "B", "D": "B"},
    Organization.LOCK_BASELINE: {"C": "G", "D": "G"},
}


@dataclass
class CompiledDesign:
    """Everything the flow produced for one hic program."""

    name: str
    checked: CheckedProgram
    organization: Organization
    memory_map: MemoryMap
    dep_groups: dict[str, list[Dependency]]
    deplists: dict[str, DependencyList]
    fsms: dict[str, ThreadFsm]
    bindings: dict[str, DatapathSummary]
    wrapper_modules: dict[str, Module]
    thread_modules: dict[str, Module]
    top: Module
    #: fabric-mode artifacts (None for the single-address-space flow)
    fabric: Optional[FabricPlan] = None
    crossbar_module: Optional[Module] = None
    #: channel-synthesis artifacts ("guarded" keeps every dependency on
    #: the §3.1/§3.2 machinery; "fifo" lowers proven streams — see
    #: docs/scenarios.md)
    channel_synthesis: str = "guarded"
    channel_decisions: dict[str, ChannelDecision] = field(default_factory=dict)
    #: FIFO-lowered channels: storage name -> the dependency it carries
    fifo_deps: dict[str, Dependency] = field(default_factory=dict)

    # -- reports -------------------------------------------------------------------

    def area_report(self, bram: str) -> AreaReport:
        """Area of one BRAM's wrapper (a paper-table row)."""
        return estimate_area(self.wrapper_modules[bram])

    def timing_report(self, bram: str, device: Device = XC2VP20) -> TimingReport:
        return estimate_timing(self.wrapper_modules[bram], device)

    def fabric_area_report(self) -> FabricAreaReport:
        """Aggregate area of the fabric: bank wrappers plus the crossbar."""
        if self.fabric is None or self.crossbar_module is None:
            raise ValueError("design was not compiled with num_banks > 0")
        return estimate_fabric_area(self.wrapper_modules, self.crossbar_module)

    def fabric_timing_report(
        self, device: Device = XC2VP20
    ) -> FabricTimingReport:
        """Fabric clock estimate (the slowest of banks and crossbar)."""
        if self.fabric is None or self.crossbar_module is None:
            raise ValueError("design was not compiled with num_banks > 0")
        return estimate_fabric_timing(
            self.wrapper_modules, self.crossbar_module, device
        )

    def utilization(self, device: Device = XC2VP20) -> UtilizationReport:
        return estimate_design(self.top, device)

    def verilog(self) -> str:
        return emit_verilog(self.top)

    def thread_verilog(self, thread_name: str) -> str:
        """Behavioral Verilog of one synthesized thread FSM."""
        from .rtl.fsm_verilog import emit_thread_verilog

        return emit_thread_verilog(
            self.fsms[thread_name],
            banks=self.memory_map.bram_names
            + self.memory_map.offchip_names
            + self.memory_map.fifo_names,
            constants=self.checked.constants,
        )

    def hierarchy(self) -> str:
        return self.top.hierarchy()

    def dependency_graph(self) -> DependencyGraph:
        return DependencyGraph.build(
            self.checked.dependencies, self.checked.program.thread_names()
        )

    def model_parameters(self, **overrides):
        """Extract the analytical performance model's compile-time
        parameters (:class:`repro.model.ModelParameters`) from this
        design; keyword overrides set the deployment fields (traffic
        rate, off-chip latency).  See docs/performance_model.md."""
        from .model import extract_parameters  # deferred: imports us back

        return extract_parameters(self, **overrides)


def _wrapper_params(
    dependencies: list[Dependency], deplist_entries: int
) -> WrapperParams:
    consumers = sum(dep.dependency_number for dep in dependencies)
    producers = len({dep.producer_thread for dep in dependencies})
    return WrapperParams(
        consumers=max(1, consumers),
        producers=max(1, producers),
        deplist_entries=max(deplist_entries, len(dependencies)),
    )


def compile_design(
    source: str,
    name: str = "design",
    organization: Organization = Organization.ARBITRATED,
    force_single_bram: bool = False,
    deplist_entries: int = DEFAULT_DEPLIST_ENTRIES,
    check_deadlock: bool = True,
    infer_pragmas: bool = False,
    allow_offchip: bool = False,
    optimize: bool = False,
    num_banks: int = 0,
    shard_policy: str = "interleaved",
    link_latency: int = 1,
    batch_size: int = 1,
    dep_home: str = "address",
    channel_synthesis: str = "guarded",
) -> CompiledDesign:
    """Run the full front-end + synthesis + generation flow.

    ``infer_pragmas=True`` derives producer/consumer dependencies from
    use-def analysis instead of requiring explicit pragmas (paper §2).
    ``allow_offchip=True`` lets private data too large for one BRAM spill
    to the modelled external SRAM tier.  ``optimize=True`` runs the FSM
    optimization passes (dead-state elimination, pass-through collapsing,
    compute-state packing) on every thread before binding.

    ``num_banks > 0`` switches to the sharded fabric flow: allocation
    targets one logical address space over that many banks (sliced by
    ``shard_policy``), a crossbar netlist joins the per-bank wrappers, and
    simulation runs through a :class:`repro.fabric.MemoryFabric`.
    ``dep_home="spread"`` distributes dependency entries round-robin over
    banks, exercising the cross-bank dependency router.

    ``channel_synthesis="fifo"`` runs the channel classifier
    (:mod:`repro.analysis.channels`) and lowers every dependency proven a
    single-writer in-order stream to a plain FIFO channel; everything
    else falls back to the guarded-BRAM machinery.  The default
    ``"guarded"`` keeps the paper's organizations for every dependency.
    """
    if num_banks > 0 and force_single_bram:
        raise ValueError("force_single_bram is incompatible with a fabric")
    if channel_synthesis not in ("guarded", "fifo"):
        raise ValueError(
            f"unknown channel_synthesis {channel_synthesis!r} "
            "(expected 'guarded' or 'fifo')"
        )
    if channel_synthesis == "fifo" and num_banks > 0:
        raise ValueError(
            "channel_synthesis='fifo' is incompatible with a sharded "
            "fabric (FIFO channels bypass the crossbar)"
        )
    checked = analyze(source, infer_pragmas=infer_pragmas)
    if check_deadlock:
        assert_deadlock_free(checked)

    channel_decisions: dict[str, ChannelDecision] = {}
    fifo_channels: dict[tuple[str, str], str] = {}
    if channel_synthesis == "fifo":
        channel_decisions = classify_channels(checked)
        fifo_channels = fifo_lowered_variables(channel_decisions)

    # The §2 mapping inputs: the memory access graph guides affinity-aware
    # BRAM packing (co-locate variables the same threads touch).
    access_graph, __ = build_memory_graphs(checked)
    memory_map = allocate(
        checked,
        access=access_graph,
        force_single_bram=force_single_bram,
        allow_offchip=allow_offchip,
        fabric_banks=num_banks,
        fabric_policy=shard_policy,
        fifo_channels=fifo_channels or None,
    )

    fabric_plan: Optional[FabricPlan] = None
    if num_banks > 0:
        fabric_plan = plan_fabric(
            checked,
            memory_map,
            FabricConfig(
                num_banks=num_banks,
                shard_policy=shard_policy,
                link_latency=link_latency,
                batch_size=batch_size,
                dep_home=dep_home,
            ),
        )
        dep_groups = dict(fabric_plan.native_dep_groups)
        deplists = dict(fabric_plan.bank_deplists)
    else:
        # FIFO-lowered dependencies live on their own channel storage and
        # never enter a guarded dependency list.
        fifo_dep_ids = set(fifo_channels.values())
        guarded_deps = [
            dep
            for dep in checked.dependencies
            if dep.dep_id not in fifo_dep_ids
        ]
        dep_groups = dependencies_per_bram(memory_map, guarded_deps)
        deplists = {
            bram: DependencyList.build(bram, deps, memory_map)
            for bram, deps in dep_groups.items()
        }

    fsms = synthesize_program(checked, memory_map)
    if optimize:
        from .synth.optimize import optimize_fsm

        for fsm in fsms.values():
            optimize_fsm(fsm)
    bank_of = None
    if fabric_plan is not None:
        policy = fabric_plan.policy
        bank_of = lambda addr: policy.bank_name(policy.bank_for(addr))
    bindings = bind_program(checked, memory_map, fsms, bank_of=bank_of)

    wrapper_modules: dict[str, Module] = {}
    multi_bram = len(dep_groups) > 1
    for bram, deps in dep_groups.items():
        params = _wrapper_params(deps, deplist_entries)
        suffix = f"_{bram}" if multi_bram else ""
        if organization is Organization.ARBITRATED:
            wrapper_modules[bram] = generate_arbitrated_wrapper(params, suffix)
        elif organization is Organization.EVENT_DRIVEN:
            wrapper_modules[bram] = generate_event_driven_wrapper(
                params, deps, suffix
            )
        else:
            wrapper_modules[bram] = generate_lock_baseline(params, suffix)

    deps_by_id = {dep.dep_id: dep for dep in checked.dependencies}
    fifo_deps = {
        fifo_channel_name(dep_id): deps_by_id[dep_id]
        for dep_id in sorted(fifo_channels.values())
    }
    for fifo_name, dep in fifo_deps.items():
        wrapper_modules[fifo_name] = generate_fifo_channel(
            dep.dep_id, depth=DEFAULT_FIFO_DEPTH
        )

    crossbar_module: Optional[Module] = None
    if fabric_plan is not None:
        crossbar_module = generate_crossbar(
            num_banks=num_banks,
            clients=max(1, len(fsms)),
            link_latency=link_latency,
            batch_size=batch_size,
        )

    thread_modules = {
        thread: generate_thread_module(fsms[thread], bindings[thread])
        for thread in fsms
    }
    top = generate_design(
        name,
        list(wrapper_modules.values())
        + ([crossbar_module] if crossbar_module is not None else []),
        list(thread_modules.values()),
    )

    return CompiledDesign(
        name=name,
        checked=checked,
        organization=organization,
        memory_map=memory_map,
        dep_groups=dep_groups,
        deplists=deplists,
        fsms=fsms,
        bindings=bindings,
        wrapper_modules=wrapper_modules,
        thread_modules=thread_modules,
        top=top,
        fabric=fabric_plan,
        crossbar_module=crossbar_module,
        channel_synthesis=channel_synthesis,
        channel_decisions=channel_decisions,
        fifo_deps=fifo_deps,
    )


@dataclass
class Simulation:
    """A ready-to-run simulation of a compiled design."""

    design: CompiledDesign
    kernel: SimulationKernel
    controllers: dict[str, MemoryController]
    executors: dict[str, ThreadExecutor]
    rx: dict[str, RxInterface] = field(default_factory=dict)
    tx: dict[str, TxInterface] = field(default_factory=dict)
    #: telemetry handle, set by :meth:`attach_telemetry` (None = the
    #: zero-overhead disabled path)
    telemetry: Optional[object] = None

    def run(self, cycles: int, until=None, max_wall_seconds=None):
        """Run the kernel; ``max_wall_seconds`` is the livelock valve —
        exceeding it raises :class:`~repro.core.errors.SimulationTimeout`."""
        return self.kernel.run(cycles, until, max_wall_seconds=max_wall_seconds)

    def inject(self, interface: str, message: dict[str, int]) -> None:
        """Queue a message on an ingress interface."""
        self.rx[interface].push(message)

    # -- robustness wiring (lazy imports: repro.faults imports this module) ----------

    def attach_watchdog(self, **kwargs):
        """Attach a runtime :class:`repro.faults.Watchdog` (blocked-read
        timeouts, dynamic deadlock detection) and return it."""
        from .faults.watchdog import Watchdog

        return Watchdog(**kwargs).attach(self)

    def inject_faults(self, faults):
        """Arm a list of :mod:`repro.faults.models` faults and return the
        :class:`repro.faults.FaultInjector`."""
        from .faults.injector import FaultInjector

        return FaultInjector(list(faults)).attach(self)

    # -- observability (lazy import: repro.obs imports repro.core) -------------------

    def attach_telemetry(self, **kwargs):
        """Attach a :class:`repro.obs.Telemetry` (event tracing, span
        assembly, metrics) and return it; also sets ``self.telemetry``."""
        from .obs.tracer import Telemetry

        return Telemetry(**kwargs).attach(self)

    def attach_profiler(self, **kwargs):
        """Attach profiling telemetry and return the
        :class:`repro.obs.CycleProfiler` (the telemetry object lands on
        ``self.telemetry``; extra kwargs configure it)."""
        return self.attach_telemetry(profile=True, **kwargs).profiler


#: Simulation kernel backends (see ``docs/simulation_kernels.md``):
#: "reference" ticks every component every cycle; "wheel" is the
#: cycle-equivalent event-wheel kernel that skips provably idle
#: stretches; "compiled" specializes the design into a generated
#: straight-line tick function (codegen cached in-process per design).
SIMULATION_KERNELS = ("reference", "wheel", "compiled")

#: The one shared kernel default: ``build_simulation`` and every CLI
#: surface (`run`, `faults`, `profile`, `predict --validate`) use this
#: constant, pinned by ``tests/test_kernel_defaults.py``.
DEFAULT_KERNEL = "wheel"


def build_simulation(
    design: CompiledDesign,
    functions: Optional[dict[str, Callable[..., int]]] = None,
    *,
    kernel: str = DEFAULT_KERNEL,
) -> Simulation:
    """Instantiate controllers, interfaces, and executors for a design."""
    controllers: dict[str, MemoryController] = {}
    if design.fabric is not None:
        # One fabric behind the logical address space: executors address
        # it like any other controller; routing happens inside.
        controllers[FABRIC_BRAM] = build_fabric(
            design.organization, design.fabric
        )
        return _finish_simulation(design, controllers, functions, kernel)
    for bram_name in design.memory_map.bram_names:
        bram = BlockRam(bram_name)
        deps = design.dep_groups.get(bram_name, [])
        # Controllers mutate guard counters; never share the design's copy.
        deplist = design.deplists[bram_name].clone()
        if design.organization is Organization.ARBITRATED:
            consumer_clients = sorted(
                {t for dep in deps for t in dep.consumer_threads()}
            )
            producer_clients = sorted({dep.producer_thread for dep in deps})
            controllers[bram_name] = ArbitratedController(
                bram,
                deplist,
                consumer_clients or ["-"],
                producer_clients or ["-"],
            )
        elif design.organization is Organization.EVENT_DRIVEN:
            controllers[bram_name] = EventDrivenController(bram, deps)
        else:
            clients = sorted(
                {dep.producer_thread for dep in deps}
                | {t for dep in deps for t in dep.consumer_threads()}
            )
            controllers[bram_name] = LockBaselineController(
                bram, deplist, clients or ["-"]
            )

    for bank in design.memory_map.offchip_names:
        controllers[bank] = OffchipController(OffchipMemory(bank))

    for fifo_name in design.memory_map.fifo_names:
        controllers[fifo_name] = FifoChannelController(
            BlockRam(fifo_name), design.fifo_deps[fifo_name]
        )

    return _finish_simulation(design, controllers, functions, kernel)


def _finish_simulation(
    design: CompiledDesign,
    controllers: dict[str, MemoryController],
    functions: Optional[dict[str, Callable[..., int]]],
    kernel: str = DEFAULT_KERNEL,
) -> Simulation:
    """Shared tail of :func:`build_simulation`: interfaces, executors, kernel."""
    rx = {name: RxInterface(name) for name in design.checked.interfaces}
    tx = {name: TxInterface(name) for name in design.checked.interfaces}

    override = _PORT_OVERRIDES[design.organization]
    executors = {
        thread: ThreadExecutor(
            design.checked,
            design.memory_map,
            fsm,
            controllers,
            functions=functions,
            rx_interfaces=rx,
            tx_interfaces=tx,
            guarded_port_override=override,
        )
        for thread, fsm in design.fsms.items()
    }

    if kernel not in SIMULATION_KERNELS:
        raise ValueError(
            f"unknown simulation kernel {kernel!r} "
            f"(expected one of {SIMULATION_KERNELS})"
        )
    if kernel == "wheel":
        from .sim.wheel import FastKernel

        sim_kernel: SimulationKernel = FastKernel(executors, controllers)
    elif kernel == "compiled":
        from .sim.compiled import CompiledKernel

        sim_kernel = CompiledKernel(executors, controllers, design=design)
    else:
        sim_kernel = SimulationKernel(executors, controllers)
    return Simulation(
        design=design,
        kernel=sim_kernel,
        controllers=controllers,
        executors=executors,
        rx=rx,
        tx=tx,
    )
