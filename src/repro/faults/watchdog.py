"""Runtime watchdogs over the memory controllers.

The static deadlock check (:mod:`repro.analysis.deadlock`) proves the
*declared* dependencies consistent; it cannot see runtime violations —
a dead producer, a corrupted dependency list, a dropped request.  The
watchdog closes that gap with two detectors driven from the kernel's
post-cycle hook:

* **blocked-read timeout** — a request has sat ungranted at one
  controller for ``read_timeout`` consecutive cycles (read off the
  controller's :class:`~repro.core.controller.BlockedRequest` tap);
* **system deadlock** — no executor has taken a state transition for
  ``deadlock_window`` cycles while at least one request is blocked (the
  kernel's progress counters stopped with work outstanding).

What happens next is the *recovery policy*:

* ``abort`` — raise a structured :class:`~repro.core.errors.ControllerError`
  (simulation stops with an attributable failure, never a silent hang);
* ``warn-continue`` — record the event and keep running;
* ``break-dependency`` — ask the controller to
  :meth:`~repro.core.controller.MemoryController.force_unblock` the stuck
  request (force-arm the deplist entry / skip the dead slot), recording
  the degradation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..core.controller import BlockedRequest, MemoryController
from ..core.errors import RuntimeDeadlockError, WatchdogTimeout

#: Default thresholds, in cycles.  Both sit well above the longest legal
#: wait of the reproduced designs (a full consumer chain is < 16 cycles)
#: and well below any practical simulation horizon.
DEFAULT_READ_TIMEOUT = 64
DEFAULT_DEADLOCK_WINDOW = 128


class RecoveryPolicy(enum.Enum):
    """What the watchdog does when a detector fires."""

    ABORT = "abort"
    WARN_CONTINUE = "warn-continue"
    BREAK_DEPENDENCY = "break-dependency"


@dataclass(frozen=True)
class WatchdogEvent:
    """One detector firing, with the action taken."""

    cycle: int
    kind: str  # "blocked-read-timeout" | "system-deadlock"
    action: str  # "aborted" | "warned" | "broke-dependency"
    bram: Optional[str] = None
    client: Optional[str] = None
    dep_id: Optional[str] = None
    blocked_cycles: int = 0

    def describe(self) -> str:
        where = "/".join(p for p in (self.bram, self.client) if p)
        dep = f" dep={self.dep_id}" if self.dep_id else ""
        return (
            f"cycle {self.cycle}: {self.kind} at {where or 'system'}{dep} "
            f"(blocked {self.blocked_cycles} cycles) -> {self.action}"
        )


class Watchdog:
    """Per-controller and system-level runtime supervision."""

    def __init__(
        self,
        *,
        read_timeout: int = DEFAULT_READ_TIMEOUT,
        deadlock_window: int = DEFAULT_DEADLOCK_WINDOW,
        policy: RecoveryPolicy | str = RecoveryPolicy.ABORT,
    ):
        if read_timeout < 1 or deadlock_window < 1:
            raise ValueError("watchdog thresholds must be >= 1 cycle")
        self.read_timeout = read_timeout
        self.deadlock_window = deadlock_window
        self.policy = RecoveryPolicy(policy)
        self.events: list[WatchdogEvent] = []
        self.degradations: list[str] = []
        #: telemetry seam (:class:`repro.obs.Telemetry`); wired by
        #: whichever of watchdog/telemetry attaches second
        self.observer = None
        self._controllers: dict[str, MemoryController] = {}
        self._reported: set[tuple] = set()
        self._last_advances: Optional[int] = None
        #: cycle of the last observed progress (advance counter change);
        #: the stall age is derived as ``cycle - _progress_cycle`` so the
        #: detector is insensitive to *when* the hook runs — the fast
        #: kernel may skip idle cycles and still fire at the same cycle
        #: number as the reference kernel
        self._progress_cycle = 0
        self._deadlock_reported = False

    # -- wiring ---------------------------------------------------------------------

    def attach(self, target) -> "Watchdog":
        """Wire into a :class:`repro.flow.Simulation` (or a bare kernel)."""
        kernel = getattr(target, "kernel", target)
        self._controllers = dict(kernel.controllers)
        kernel.add_post_cycle_hook(self.hook)
        kernel.context["watchdog"] = self
        telemetry = kernel.context.get("telemetry")
        if telemetry is not None:
            self.observer = telemetry
        return self

    @property
    def tripped(self) -> bool:
        return bool(self.events)

    # -- detection --------------------------------------------------------------------

    def hook(self, cycle: int, kernel) -> None:
        self._check_blocked_reads(cycle)
        self._check_system_deadlock(cycle, kernel)

    def next_wake(self, cycle: int, limit: int, kernel):
        """Fast-kernel wake contract: the earliest future cycle either
        detector could fire, assuming nothing else changes meanwhile.

        * an unreported blocked request trips the read timeout exactly
          at ``issue_cycle + read_timeout``;
        * the deadlock detector trips at ``progress cycle +
          deadlock_window`` while anything is blocked and unreported.

        Any activity before that (a grant, an advance, new traffic)
        executes a real cycle anyway, after which the kernel re-asks.
        ``None`` means the watchdog cannot fire until something else
        wakes the system.
        """
        wakes = []
        blocked_anywhere = False
        for name in sorted(self._controllers):
            for blocked in self._controllers[name].blocked:
                blocked_anywhere = True
                token = (name, blocked.request.key, blocked.issue_cycle)
                if token in self._reported:
                    continue
                wakes.append(
                    max(cycle + 1, blocked.issue_cycle + self.read_timeout)
                )
        if blocked_anywhere and not self._deadlock_reported:
            wakes.append(
                max(cycle + 1, self._progress_cycle + self.deadlock_window)
            )
        return min(wakes) if wakes else None

    def _check_blocked_reads(self, cycle: int) -> None:
        for name in sorted(self._controllers):
            controller = self._controllers[name]
            for blocked in controller.blocked:
                if blocked.blocked_cycles < self.read_timeout:
                    continue
                token = (name, blocked.request.key, blocked.issue_cycle)
                if token in self._reported:
                    continue
                self._reported.add(token)
                self._handle_blocked(cycle, name, controller, blocked)

    def _handle_blocked(
        self,
        cycle: int,
        name: str,
        controller: MemoryController,
        blocked: BlockedRequest,
    ) -> None:
        request = blocked.request
        action = {
            RecoveryPolicy.ABORT: "aborted",
            RecoveryPolicy.WARN_CONTINUE: "warned",
            RecoveryPolicy.BREAK_DEPENDENCY: "broke-dependency",
        }[self.policy]
        if self.policy is RecoveryPolicy.BREAK_DEPENDENCY:
            if controller.force_unblock(request, cycle):
                degradation = (
                    f"cycle {cycle}: forced {name} to unblock "
                    f"{request.client} (port {request.port}, "
                    f"address {request.address})"
                )
                self.degradations.append(degradation)
                if self.observer is not None:
                    self.observer.on_recovery(cycle, degradation)
            else:
                action = "warned"
        event = WatchdogEvent(
            cycle=cycle,
            kind="blocked-read-timeout",
            action=action,
            bram=name,
            client=request.client,
            dep_id=request.dep_id,
            blocked_cycles=blocked.blocked_cycles,
        )
        self.events.append(event)
        if self.observer is not None:
            self.observer.on_watchdog_event(event)
        if self.policy is RecoveryPolicy.ABORT:
            raise WatchdogTimeout(
                f"request blocked {blocked.blocked_cycles} cycles "
                f"(threshold {self.read_timeout})",
                bram=name,
                client=request.client,
                cycle=cycle,
                dep_id=request.dep_id,
                blocked_cycles=blocked.blocked_cycles,
            )

    def _check_system_deadlock(self, cycle: int, kernel) -> None:
        advances = kernel.total_advances()
        if advances != self._last_advances:
            self._last_advances = advances
            self._progress_cycle = cycle
            self._deadlock_reported = False
            return
        stalled_cycles = cycle - self._progress_cycle
        blocked_anywhere = [
            (name, blocked)
            for name in sorted(self._controllers)
            for blocked in self._controllers[name].blocked
        ]
        if (
            stalled_cycles < self.deadlock_window
            or not blocked_anywhere
            or self._deadlock_reported
        ):
            return
        self._deadlock_reported = True
        clients = sorted({b.request.client for __, b in blocked_anywhere})
        action = {
            RecoveryPolicy.ABORT: "aborted",
            RecoveryPolicy.WARN_CONTINUE: "warned",
            RecoveryPolicy.BREAK_DEPENDENCY: "broke-dependency",
        }[self.policy]
        if self.policy is RecoveryPolicy.BREAK_DEPENDENCY:
            recovered = False
            for name, blocked in blocked_anywhere:
                if self._controllers[name].force_unblock(blocked.request, cycle):
                    recovered = True
                    degradation = (
                        f"cycle {cycle}: deadlock break forced {name} to "
                        f"unblock {blocked.request.client}"
                    )
                    self.degradations.append(degradation)
                    if self.observer is not None:
                        self.observer.on_recovery(cycle, degradation)
            if not recovered:
                action = "warned"
            # Give the recovery a full window to restore progress before
            # the detector may fire again.
            self._progress_cycle = cycle
            self._deadlock_reported = False
            stalled_cycles = self.deadlock_window
        event = WatchdogEvent(
            cycle=cycle,
            kind="system-deadlock",
            action=action,
            client=",".join(clients),
            blocked_cycles=stalled_cycles,
        )
        self.events.append(event)
        if self.observer is not None:
            self.observer.on_watchdog_event(event)
        if self.policy is RecoveryPolicy.ABORT:
            raise RuntimeDeadlockError(
                f"no executor progress for {self.deadlock_window} cycles "
                f"with blocked clients: {', '.join(clients)}",
                cycle=cycle,
                stalled_cycles=self.deadlock_window,
            )

    # -- reporting --------------------------------------------------------------------

    def report(self) -> str:
        if not self.events:
            return "watchdog: no events"
        lines = [event.describe() for event in self.events]
        lines.extend(f"degradation: {d}" for d in self.degradations)
        return "\n".join(lines)
