"""Seeded, schedulable fault models.

Each model is a frozen description of *one* injected disturbance: what it
hits, and at which simulation cycle it fires.  The models cover the
classic platform-FPGA concerns the paper's safe-by-construction argument
leaves open:

* :class:`SeuBitFlip` — a single-event upset in BRAM: one stored bit
  flips behind the port logic (configuration memory and user state are
  both SEU targets on Virtex-II Pro class devices);
* :class:`ProducerStall` — a producer thread stalls for N cycles or dies
  outright: its requests simply stop arriving at the controller;
* :class:`RequestDrop` — a request is lost at a controller port (glitched
  request line);
* :class:`RequestDuplicate` — a granted request is replayed the next
  cycle (stuck request line), which can steal a ``dn`` read slot or
  double-arm a guard;
* :class:`DeplistCorruption` — the dependency list's configuration is
  upset: wrong dependency number or wrong guarded base address.

:func:`sample_fault` draws a parameterized fault from a seeded RNG and a
:class:`FaultSurface` (the design-derived description of what exists to be
faulted), which is how campaigns generate reproducible chaos.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

#: Canonical fault-kind names, in campaign/report order.
FAULT_KINDS: tuple[str, ...] = (
    "seu",
    "producer-stall",
    "request-drop",
    "request-duplicate",
    "deplist-corruption",
)


@dataclass(frozen=True)
class Fault:
    """Base class: a disturbance scheduled at one simulation cycle."""

    at_cycle: int

    kind = "fault"

    def describe(self) -> str:  # pragma: no cover - overridden
        return f"{self.kind}@{self.at_cycle}"


@dataclass(frozen=True)
class SeuBitFlip(Fault):
    """Flip one stored bit of one BRAM word at ``at_cycle``."""

    bram: str = "bram0"
    address: int = 0
    bit: int = 0

    kind = "seu"

    def describe(self) -> str:
        return (
            f"seu@{self.at_cycle}: flip {self.bram}[{self.address}] "
            f"bit {self.bit}"
        )


@dataclass(frozen=True)
class ProducerStall(Fault):
    """Suppress every request from ``client`` starting at ``at_cycle``.

    ``duration=None`` models thread death (the stall never ends).
    """

    client: str = ""
    duration: Optional[int] = None

    kind = "producer-stall"

    def describe(self) -> str:
        span = "forever" if self.duration is None else f"{self.duration} cycles"
        return f"producer-stall@{self.at_cycle}: {self.client} silent {span}"


@dataclass(frozen=True)
class RequestDrop(Fault):
    """Drop the next ``count`` requests matching (bram, client) once the
    fault is active.  ``client=None`` matches any client."""

    bram: str = "bram0"
    client: Optional[str] = None
    count: int = 1

    kind = "request-drop"

    def describe(self) -> str:
        who = self.client or "any client"
        return (
            f"request-drop@{self.at_cycle}: lose {self.count} request(s) "
            f"from {who} at {self.bram}"
        )


@dataclass(frozen=True)
class RequestDuplicate(Fault):
    """Replay the next matching granted request one cycle later."""

    bram: str = "bram0"
    client: Optional[str] = None

    kind = "request-duplicate"

    def describe(self) -> str:
        who = self.client or "any client"
        return (
            f"request-duplicate@{self.at_cycle}: replay next grant "
            f"of {who} at {self.bram}"
        )


@dataclass(frozen=True)
class DeplistCorruption(Fault):
    """Upset one dependency-list entry's configuration at ``at_cycle``."""

    bram: str = "bram0"
    dep_id: str = ""
    dependency_number: Optional[int] = None
    base_address: Optional[int] = None

    kind = "deplist-corruption"

    def describe(self) -> str:
        changes = []
        if self.dependency_number is not None:
            changes.append(f"dn={self.dependency_number}")
        if self.base_address is not None:
            changes.append(f"base={self.base_address}")
        return (
            f"deplist-corruption@{self.at_cycle}: {self.bram}/{self.dep_id} "
            f"-> {', '.join(changes) or 'no-op'}"
        )


@dataclass(frozen=True)
class GuardedEntry:
    """One faultable dependency-list entry, as seen by the sampler."""

    bram: str
    dep_id: str
    dependency_number: int
    base_address: int
    producer_thread: str


@dataclass(frozen=True)
class FaultSurface:
    """What a compiled design exposes to the fault sampler."""

    brams: tuple[str, ...]
    entries: tuple[GuardedEntry, ...]
    clients: tuple[str, ...]
    depth: int = 512
    width: int = 36

    @classmethod
    def from_simulation(cls, sim) -> "FaultSurface":
        """Derive the surface from a built :class:`repro.flow.Simulation`."""
        brams = []
        entries = []
        for name in sorted(sim.controllers):
            controller = sim.controllers[name]
            bram = getattr(controller, "bram", None)
            if bram is None:
                continue  # off-chip banks are outside the BRAM fault model
            brams.append(name)
            deplist = getattr(controller, "deplist", None)
            dep_entries = (
                deplist.entries
                if deplist is not None
                else _event_driven_entries(controller, sim)
            )
            for entry in dep_entries:
                entries.append(
                    GuardedEntry(
                        bram=name,
                        dep_id=entry.dep_id,
                        dependency_number=entry.dependency_number,
                        base_address=entry.base_address,
                        producer_thread=entry.producer_thread,
                    )
                )
        return cls(
            brams=tuple(brams),
            entries=tuple(entries),
            clients=tuple(sorted(sim.executors)),
        )

    @property
    def producers(self) -> tuple[str, ...]:
        return tuple(sorted({e.producer_thread for e in self.entries}))

    @property
    def guarded_addresses(self) -> tuple[int, ...]:
        return tuple(sorted({e.base_address for e in self.entries}))


def _event_driven_entries(controller, sim):
    """The event-driven wrapper has no deplist; recover the equivalent
    entries from the design's per-BRAM dependency lists."""
    design = getattr(sim, "design", None)
    if design is None:
        return []
    deplist = design.deplists.get(controller.bram.name)
    return deplist.entries if deplist is not None else []


def sample_fault(
    rng: random.Random,
    kind: str,
    surface: FaultSurface,
    horizon: int,
) -> Optional[Fault]:
    """Draw one parameterized fault of ``kind``.

    Returns ``None`` when the surface has nothing of that kind to fault
    (e.g. no guarded entries for a deplist corruption).  Every random
    draw comes from ``rng``, so a seeded campaign replays exactly.
    """
    fire = rng.randrange(1, max(2, horizon // 2))
    if kind == "seu":
        if not surface.brams:
            return None
        # Bias toward live (guarded) words: those flips are the ones that
        # can propagate; a uniformly random word is usually unused.
        addresses = surface.guarded_addresses or (0,)
        address = rng.choice(addresses) if rng.random() < 0.75 else rng.randrange(
            surface.depth
        )
        return SeuBitFlip(
            at_cycle=fire,
            bram=rng.choice(surface.brams),
            address=address,
            bit=rng.randrange(surface.width),
        )
    if kind == "producer-stall":
        if not surface.producers:
            return None
        duration = None if rng.random() < 0.5 else rng.randrange(10, horizon)
        return ProducerStall(
            at_cycle=fire,
            client=rng.choice(surface.producers),
            duration=duration,
        )
    if kind == "request-drop":
        if not surface.brams:
            return None
        client = (
            rng.choice(surface.clients)
            if surface.clients and rng.random() < 0.5
            else None
        )
        return RequestDrop(
            at_cycle=fire,
            bram=rng.choice(surface.brams),
            client=client,
            count=rng.randrange(1, 4),
        )
    if kind == "request-duplicate":
        if not surface.brams:
            return None
        client = (
            rng.choice(surface.clients)
            if surface.clients and rng.random() < 0.5
            else None
        )
        return RequestDuplicate(
            at_cycle=fire,
            bram=rng.choice(surface.brams),
            client=client,
        )
    if kind == "deplist-corruption":
        if not surface.entries:
            return None
        entry = rng.choice(surface.entries)
        if rng.random() < 0.5:
            # Wrong dn: off by one in either direction (never negative).
            delta = rng.choice([-1, 1, 2])
            return DeplistCorruption(
                at_cycle=fire,
                bram=entry.bram,
                dep_id=entry.dep_id,
                dependency_number=max(0, entry.dependency_number + delta),
            )
        return DeplistCorruption(
            at_cycle=fire,
            bram=entry.bram,
            dep_id=entry.dep_id,
            base_address=(entry.base_address + rng.randrange(1, 8))
            % surface.depth,
        )
    raise ValueError(f"unknown fault kind {kind!r}")
