"""Arms fault models onto a running simulation.

The injector needs no special kernel support beyond what real hardware
faults get: SEUs strike BRAM cells directly (``BlockRam.flip_bit``),
configuration upsets rewrite the dependency list in place
(``DependencyList.corrupt``), and request-line faults ride the
controllers' ``request_taps`` seam — the software analogue of glitching
the physical request wires.

Everything the injector does is logged with its cycle, so a campaign
report can correlate injections with watchdog events and trace diffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.controller import MemRequest, MemoryController
from .models import (
    DeplistCorruption,
    Fault,
    ProducerStall,
    RequestDrop,
    RequestDuplicate,
    SeuBitFlip,
)

#: How many cycles a captured request is replayed before the duplication
#: fault gives up (the stuck request line un-sticks).
DUPLICATE_REPLAY_WINDOW = 8


@dataclass
class _DropState:
    fault: RequestDrop
    remaining: int


@dataclass
class _DuplicateState:
    fault: RequestDuplicate
    captured: Optional[MemRequest] = None
    replays_left: int = DUPLICATE_REPLAY_WINDOW


@dataclass
class _StallState:
    fault: ProducerStall
    announced: bool = False

    def active(self, cycle: int) -> bool:
        if cycle < self.fault.at_cycle:
            return False
        if self.fault.duration is None:
            return True
        return cycle < self.fault.at_cycle + self.fault.duration


@dataclass
class FaultInjector:
    """Schedules a list of fault models against one simulation."""

    faults: list[Fault] = field(default_factory=list)
    #: (cycle, description) of every injection actually performed
    log: list[tuple[int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.cycle = 0
        self._controllers: dict[str, MemoryController] = {}
        self._replaying = False
        self._one_shots = [
            f for f in self.faults if isinstance(f, (SeuBitFlip, DeplistCorruption))
        ]
        self._stalls = [
            _StallState(f) for f in self.faults if isinstance(f, ProducerStall)
        ]
        self._drops = {
            id(f): _DropState(f, f.count)
            for f in self.faults
            if isinstance(f, RequestDrop)
        }
        self._duplicates = {
            id(f): _DuplicateState(f)
            for f in self.faults
            if isinstance(f, RequestDuplicate)
        }

    # -- wiring ---------------------------------------------------------------------

    def attach(self, target) -> "FaultInjector":
        """Wire into a :class:`repro.flow.Simulation` (or a bare kernel)."""
        kernel = getattr(target, "kernel", target)
        self._controllers = dict(kernel.controllers)
        kernel.add_pre_cycle_hook(self._pre_cycle)
        for name, controller in self._controllers.items():
            controller.request_taps.append(self._make_tap(name))
        kernel.context["fault-injector"] = self
        return self

    # -- pre-cycle injections ---------------------------------------------------------

    def _pre_cycle(self, cycle: int, kernel) -> None:
        self.cycle = cycle
        for fault in self._one_shots:
            if fault.at_cycle != cycle:
                continue
            if isinstance(fault, SeuBitFlip):
                self._inject_seu(fault)
            else:
                self._inject_corruption(fault)
        for state in self._stalls:
            if state.active(cycle) and not state.announced:
                state.announced = True
                self.log.append((cycle, state.fault.describe()))
        for state in self._duplicates.values():
            if state.captured is not None and state.replays_left > 0:
                controller = self._controllers.get(state.fault.bram)
                if controller is not None:
                    self._replaying = True
                    try:
                        controller.submit(state.captured)
                    finally:
                        self._replaying = False
                state.replays_left -= 1

    def _inject_seu(self, fault: SeuBitFlip) -> None:
        controller = self._controllers.get(fault.bram)
        bram = getattr(controller, "bram", None)
        if bram is None:
            return
        address = fault.address % bram.depth
        bram.flip_bit(address, fault.bit % bram.width)
        self.log.append((fault.at_cycle, fault.describe()))

    def _inject_corruption(self, fault: DeplistCorruption) -> None:
        controller = self._controllers.get(fault.bram)
        deplist = getattr(controller, "deplist", None)
        if deplist is None:
            # The event-driven wrapper carries no dependency list at
            # runtime — its static schedule is structurally immune to
            # this upset.  Log the no-op so reports stay honest.
            self.log.append(
                (fault.at_cycle, f"{fault.describe()} (no deplist: no-op)")
            )
            return
        try:
            deplist.corrupt(
                fault.dep_id,
                dependency_number=fault.dependency_number,
                base_address=fault.base_address,
            )
            # Guard state changed behind the controller's back:
            # invalidate cached wait classifications (profiler seam).
            controller.classify_epoch += 1
        except KeyError:
            return
        self.log.append((fault.at_cycle, fault.describe()))

    # -- quiescence (fast-kernel wake contract) -----------------------------------------

    def next_wake(self, cycle: int, limit: int, kernel):
        """Earliest future cycle an armed fault changes behaviour.

        One-shots and stall windows have exact boundaries.  Drop and
        duplicate faults interact with *every* submission while live
        (each re-asserted request burns a drop count or a replay), so
        the injector pins the simulation to cycle-by-cycle execution
        until those faults are exhausted — fault semantics must not
        depend on which cycles the kernel chose to execute.
        """
        wakes = []
        for fault in self._one_shots:
            if fault.at_cycle > cycle:
                wakes.append(fault.at_cycle)
        for state in self._stalls:
            fault = state.fault
            if fault.at_cycle > cycle:
                wakes.append(fault.at_cycle)
            elif state.active(cycle) and not state.announced:
                wakes.append(cycle + 1)
            if fault.duration is not None:
                end = fault.at_cycle + fault.duration
                if end > cycle:
                    wakes.append(end)
        for state in self._drops.values():
            if state.remaining > 0:
                wakes.append(max(cycle + 1, state.fault.at_cycle))
        for state in self._duplicates.values():
            if state.captured is None:
                wakes.append(max(cycle + 1, state.fault.at_cycle))
            elif state.replays_left > 0:
                wakes.append(cycle + 1)
        return min(wakes) if wakes else None

    # -- request taps -----------------------------------------------------------------

    def _make_tap(self, bram_name: str):
        def tap(request: MemRequest) -> Optional[MemRequest]:
            if self._replaying:
                return request
            for state in self._stalls:
                if state.active(self.cycle) and request.client == state.fault.client:
                    return None
            for state in self._drops.values():
                fault = state.fault
                if (
                    fault.bram == bram_name
                    and self.cycle >= fault.at_cycle
                    and state.remaining > 0
                    and (fault.client is None or fault.client == request.client)
                ):
                    state.remaining -= 1
                    self.log.append((self.cycle, fault.describe()))
                    return None
            for state in self._duplicates.values():
                fault = state.fault
                if (
                    fault.bram == bram_name
                    and self.cycle >= fault.at_cycle
                    and state.captured is None
                    and (fault.client is None or fault.client == request.client)
                ):
                    state.captured = request
                    self.log.append((self.cycle, fault.describe()))
            return request

        return tap

    # -- reporting --------------------------------------------------------------------

    def describe(self) -> list[str]:
        """Scheduled faults, in declaration order."""
        return [fault.describe() for fault in self.faults]
