"""Chaos campaigns: randomized fault injection with golden-trace triage.

A campaign compiles a design, records a fault-free *golden* run, then
replays the same horizon many times under seeded random faults.  Each run
is classified against the golden signature (final BRAM contents plus every
executor's architectural register file):

* ``clean`` — no watchdog event, signature matches: the fault was masked;
* ``detected-recovered`` — the watchdog fired and the run continued
  (policies ``warn-continue`` / ``break-dependency``);
* ``detected-aborted`` — the watchdog aborted the run with a structured
  :class:`~repro.core.errors.ControllerError` (policy ``abort``);
* ``silent-corruption`` — no detection, but the signature diverged: the
  worst case, and the reason fault campaigns exist.

Everything is driven by one integer seed; two campaigns with the same
configuration render byte-identical reports.

CLI::

    python -m repro faults --seed 7 --runs 8 --cycles 400
    python -m repro faults --organization arbitrated --policy abort
    python -m repro faults --kinds seu,producer-stall --report out.txt
"""

from __future__ import annotations

import argparse
import enum
import random
import sys
from dataclasses import dataclass, field
from typing import Optional

from ..core.advisor import Organization
from ..core.errors import ControllerError
from .injector import FaultInjector
from .models import FAULT_KINDS, FaultSurface, sample_fault
from .watchdog import RecoveryPolicy, Watchdog

#: The built-in campaign workload: a three-stage pipeline with two
#: producer/consumer dependencies — enough structure for every fault kind
#: to have a target, and valid for every memory organization.
CAMPAIGN_SOURCE = """
thread stage1 () {
  int a, raw;
  #consumer{d1,[stage2,b]}
  a = f(raw);
}

thread stage2 () {
  int b, scratch;
  #producer{d1,[stage1,a]}
  b = g(a, scratch);
  #consumer{d2,[stage3,c]}
  b = h(b);
}

thread stage3 () {
  int c, out;
  #producer{d2,[stage2,b]}
  c = f(b);
  out = c + 1;
}
"""


class Classification(enum.Enum):
    CLEAN = "clean"
    DETECTED_RECOVERED = "detected-recovered"
    DETECTED_ABORTED = "detected-aborted"
    SILENT_CORRUPTION = "silent-corruption"


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign (and hence its report)."""

    seed: int = 7
    runs: int = 8
    cycles: int = 400
    organizations: tuple[str, ...] = ("arbitrated", "event_driven")
    fault_kinds: tuple[str, ...] = FAULT_KINDS
    policy: str = RecoveryPolicy.BREAK_DEPENDENCY.value
    read_timeout: int = 40
    deadlock_window: int = 80


@dataclass(frozen=True)
class RunOutcome:
    """One classified fault run."""

    organization: str
    index: int
    fault_kinds: tuple[str, ...]
    faults: tuple[str, ...]
    classification: Classification
    cycles_run: int
    watchdog_events: tuple[str, ...] = ()
    degradations: tuple[str, ...] = ()
    error: Optional[str] = None


@dataclass
class CampaignReport:
    """A campaign's classified outcomes plus deterministic rendering."""

    config: CampaignConfig
    outcomes: list[RunOutcome] = field(default_factory=list)

    def by_classification(self) -> dict[str, int]:
        counts: dict[str, int] = {c.value: 0 for c in Classification}
        for outcome in self.outcomes:
            counts[outcome.classification.value] += 1
        return counts

    def by_kind(self) -> dict[str, dict[str, int]]:
        """fault kind -> classification -> run count (runs with several
        faults count under each kind involved)."""
        table: dict[str, dict[str, int]] = {}
        for outcome in self.outcomes:
            for kind in sorted(set(outcome.fault_kinds)) or ["none"]:
                row = table.setdefault(kind, {})
                row[outcome.classification.value] = (
                    row.get(outcome.classification.value, 0) + 1
                )
        return table

    def kinds_classified(self) -> tuple[str, ...]:
        """Distinct fault kinds that produced at least one classified run."""
        return tuple(sorted({k for o in self.outcomes for k in o.fault_kinds}))

    def render(self) -> str:
        cfg = self.config
        lines = [
            "fault campaign",
            f"  seed={cfg.seed} runs={cfg.runs} cycles={cfg.cycles} "
            f"policy={cfg.policy}",
            f"  organizations: {', '.join(cfg.organizations)}",
            f"  watchdog: read_timeout={cfg.read_timeout} "
            f"deadlock_window={cfg.deadlock_window}",
            "",
        ]
        for outcome in self.outcomes:
            lines.append(
                f"run {outcome.organization}#{outcome.index}: "
                f"{outcome.classification.value} "
                f"({outcome.cycles_run} cycles)"
            )
            for fault in outcome.faults:
                lines.append(f"    fault: {fault}")
            for event in outcome.watchdog_events:
                lines.append(f"    watchdog: {event}")
            for degradation in outcome.degradations:
                lines.append(f"    {degradation}")
            if outcome.error:
                lines.append(f"    error: {outcome.error}")
        lines.append("")
        lines.append("summary by fault kind:")
        for kind, row in sorted(self.by_kind().items()):
            cells = " ".join(
                f"{name}={count}" for name, count in sorted(row.items())
            )
            lines.append(f"  {kind}: {cells}")
        totals = " ".join(
            f"{name}={count}"
            for name, count in sorted(self.by_classification().items())
        )
        lines.append(f"totals: {totals}")
        return "\n".join(lines)


def _trace_rounds(sim) -> dict[str, list[tuple]]:
    """Install a golden-trace recorder: per thread, the architectural
    register file at every completed round.

    Round boundaries make the trace phase-insensitive, so comparing
    *histories* distinguishes the cases a single final snapshot cannot:

    * pure delay (dropped request, short stall) produces a *prefix* of the
      golden history — degradation, not corruption;
    * a corrupted value survives in the round it escaped into, even if
      the next producer write heals the memory afterwards.
    """
    histories: dict[str, list[tuple]] = {name: [] for name in sim.executors}
    seen = {name: 0 for name in sim.executors}

    def hook(cycle: int, kernel) -> None:
        for name, executor in sim.executors.items():
            if executor.stats.rounds_completed > seen[name]:
                seen[name] = executor.stats.rounds_completed
                histories[name].append(
                    tuple(sorted((executor.last_round_env or {}).items()))
                )

    sim.kernel.add_post_cycle_hook(hook)
    return histories


def _diverged(golden: dict[str, list[tuple]], faulted: dict[str, list[tuple]]) -> bool:
    """True iff any thread's faulted round history contradicts the golden
    one on their common prefix (shorter-but-consistent = delayed, clean)."""
    for name, golden_rounds in golden.items():
        faulted_rounds = faulted.get(name, [])
        common = min(len(golden_rounds), len(faulted_rounds))
        if golden_rounds[:common] != faulted_rounds[:common]:
            return True
    return False


def _compile(source: str, organization: str):
    from ..flow import compile_design

    return compile_design(
        source,
        name="campaign",
        organization=Organization(organization),
    )


def run_campaign(
    config: CampaignConfig = CampaignConfig(),
    source: str = CAMPAIGN_SOURCE,
) -> CampaignReport:
    """Run the full campaign and return its report."""
    from ..flow import build_simulation

    report = CampaignReport(config=config)
    for org_index, organization in enumerate(config.organizations):
        golden_sim = build_simulation(_compile(source, organization))
        golden = _trace_rounds(golden_sim)
        golden_sim.run(config.cycles)

        for index in range(config.runs):
            rng = random.Random(
                config.seed * 1_000_003 + org_index * 7_919 + index
            )
            # Recompile per run: faults mutate configuration-time state
            # (the dependency list), which must not leak across runs.
            sim = build_simulation(_compile(source, organization))
            surface = FaultSurface.from_simulation(sim)
            n_faults = 1 + (rng.random() < 0.4)
            faults = []
            for __ in range(n_faults):
                fault = sample_fault(
                    rng,
                    rng.choice(config.fault_kinds),
                    surface,
                    config.cycles,
                )
                if fault is not None:
                    faults.append(fault)
            injector = FaultInjector(faults).attach(sim)
            traced = _trace_rounds(sim)
            watchdog = Watchdog(
                read_timeout=config.read_timeout,
                deadlock_window=config.deadlock_window,
                policy=config.policy,
            ).attach(sim)

            error: Optional[str] = None
            try:
                sim.run(config.cycles)
            except ControllerError as exc:
                error = exc.describe()

            if error is not None:
                classification = Classification.DETECTED_ABORTED
            elif watchdog.tripped:
                classification = Classification.DETECTED_RECOVERED
            elif _diverged(golden, traced):
                classification = Classification.SILENT_CORRUPTION
            else:
                classification = Classification.CLEAN

            report.outcomes.append(
                RunOutcome(
                    organization=organization,
                    index=index,
                    fault_kinds=tuple(f.kind for f in faults),
                    faults=tuple(injector.describe()),
                    classification=classification,
                    cycles_run=sim.kernel.cycle,
                    watchdog_events=tuple(
                        e.describe() for e in watchdog.events
                    ),
                    degradations=tuple(watchdog.degradations),
                    error=error,
                )
            )
    return report


# -- command line ---------------------------------------------------------------------


def _faults_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description=(
            "Run a seeded fault-injection campaign against the generated "
            "memory controllers and classify every run against a golden "
            "trace."
        ),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--runs", type=int, default=8, help="fault runs per organization"
    )
    parser.add_argument(
        "--cycles", type=int, default=400, help="simulated cycles per run"
    )
    parser.add_argument(
        "--organization",
        choices=["arbitrated", "event_driven", "both"],
        default="both",
    )
    parser.add_argument(
        "--policy",
        choices=[p.value for p in RecoveryPolicy],
        default=RecoveryPolicy.BREAK_DEPENDENCY.value,
        help="watchdog recovery policy",
    )
    parser.add_argument(
        "--kinds",
        default=",".join(FAULT_KINDS),
        help=f"comma-separated fault kinds (default: all of {FAULT_KINDS})",
    )
    parser.add_argument(
        "--read-timeout", type=int, default=40, metavar="CYCLES"
    )
    parser.add_argument(
        "--deadlock-window", type=int, default=80, metavar="CYCLES"
    )
    parser.add_argument(
        "--source", metavar="FILE", help="hic design to fault (default: built-in pipeline)"
    )
    parser.add_argument(
        "--report", metavar="FILE", help="also write the report to FILE"
    )
    return parser


def faults_main(argv: Optional[list] = None) -> int:
    """Entry point for ``python -m repro faults``."""
    args = _faults_parser().parse_args(argv)
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    unknown = set(kinds) - set(FAULT_KINDS)
    if unknown:
        print(f"error: unknown fault kinds {sorted(unknown)}", file=sys.stderr)
        return 2
    organizations = (
        ("arbitrated", "event_driven")
        if args.organization == "both"
        else (args.organization,)
    )
    source = CAMPAIGN_SOURCE
    if args.source:
        try:
            with open(args.source) as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: cannot read {args.source}: {error}", file=sys.stderr)
            return 2
    config = CampaignConfig(
        seed=args.seed,
        runs=args.runs,
        cycles=args.cycles,
        organizations=organizations,
        fault_kinds=kinds,
        policy=args.policy,
        read_timeout=args.read_timeout,
        deadlock_window=args.deadlock_window,
    )
    try:
        report = run_campaign(config, source=source)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    text = report.render()
    print(text)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote report to {args.report}")
    return 0
