"""Chaos campaigns: randomized fault injection with golden-trace triage.

A campaign compiles a design, records a fault-free *golden* run, then
replays the same horizon many times under seeded random faults.  Each run
is classified against the golden signature (final BRAM contents plus every
executor's architectural register file):

* ``clean`` — no watchdog event, signature matches: the fault was masked;
* ``detected-recovered`` — the watchdog fired and the run continued
  (policies ``warn-continue`` / ``break-dependency``);
* ``detected-aborted`` — the watchdog aborted the run with a structured
  :class:`~repro.core.errors.ControllerError` (policy ``abort``);
* ``silent-corruption`` — no detection, but the signature diverged: the
  worst case, and the reason fault campaigns exist.

Runs execute through the fault-tolerant campaign engine
(:mod:`repro.campaign`), so the matrix can fan across worker processes
(``--workers``) where three more classifications become possible when the
*harness itself* is wounded — fault campaigns deliberately drive the
simulator into pathological states, and a harness that dies with its
workload loses every completed result:

* ``worker-crashed`` — the worker process died before reporting
  (``os._exit``, OOM kill); retried with capped exponential backoff,
  reported only if the retry budget is exhausted;
* ``worker-timeout`` — the run blew its ``--run-timeout`` wall-clock
  budget and the worker was killed (also retried);
* ``harness-error`` — the run raised an unexpected non-controller
  exception (a harness bug: deterministic, never retried).

Everything is driven by one integer seed; the merged report is
byte-identical regardless of worker count, scheduling order, retries, or
``--resume`` boundaries, because every run's faults derive only from its
own run index (never shared RNG state) and results merge sorted by index.

CLI::

    python -m repro faults --seed 7 --runs 8 --cycles 400
    python -m repro faults --organization arbitrated --policy abort
    python -m repro faults --kinds seu,producer-stall --report out.txt
    python -m repro faults --workers 4 --run-timeout 120 --retries 2 \\
        --journal campaign.jsonl            # crash-safe parallel campaign
    python -m repro faults --resume campaign.jsonl --journal campaign.jsonl
    python -m repro faults --profile --summary-json summary.json
        # per-run cycle attribution merged into a bottleneck heatmap

With ``--profile`` every run carries the cycle-attribution profiler
(:mod:`repro.obs.profiler`); workers ship the per-run ledger back
through the same result pipe/journal as the classification, and the
orchestrator merges them — index-sorted, commutative addition — into an
organization × wait-state bottleneck heatmap that is byte-identical
across worker counts and resume boundaries.
"""

from __future__ import annotations

import argparse
import enum
import hashlib
import json
import math
import random
import sys
from dataclasses import dataclass, field
from typing import Optional

from ..campaign import (
    OUTCOME_OK,
    OUTCOME_TASK_ERROR,
    OUTCOME_WORKER_CRASHED,
    OUTCOME_WORKER_TIMEOUT,
    CampaignEngine,
    EngineConfig,
    EngineReport,
    RunResult,
    RunSpec,
)
from ..core.advisor import Organization
from ..core.errors import ControllerError
from ..obs.attribution import WAIT_STATES
from ..obs.profiler import merge_profiles
from .injector import FaultInjector
from .models import FAULT_KINDS, FaultSurface, sample_fault
from .watchdog import RecoveryPolicy, Watchdog

#: The built-in campaign workload: a three-stage pipeline with two
#: producer/consumer dependencies — enough structure for every fault kind
#: to have a target, and valid for every memory organization.
CAMPAIGN_SOURCE = """
thread stage1 () {
  int a, raw;
  #consumer{d1,[stage2,b]}
  a = f(raw);
}

thread stage2 () {
  int b, scratch;
  #producer{d1,[stage1,a]}
  b = g(a, scratch);
  #consumer{d2,[stage3,c]}
  b = h(b);
}

thread stage3 () {
  int c, out;
  #producer{d2,[stage2,b]}
  c = f(b);
  out = c + 1;
}
"""


class Classification(enum.Enum):
    CLEAN = "clean"
    DETECTED_RECOVERED = "detected-recovered"
    DETECTED_ABORTED = "detected-aborted"
    SILENT_CORRUPTION = "silent-corruption"
    #: harness-level outcomes (see the module docstring): the run did
    #: not complete because the *worker*, not the workload, failed
    WORKER_CRASHED = "worker-crashed"
    WORKER_TIMEOUT = "worker-timeout"
    HARNESS_ERROR = "harness-error"


#: Engine outcome -> classification for runs that never produced a
#: simulator-level verdict.
_ENGINE_CLASSIFICATIONS = {
    OUTCOME_WORKER_CRASHED: Classification.WORKER_CRASHED,
    OUTCOME_WORKER_TIMEOUT: Classification.WORKER_TIMEOUT,
    OUTCOME_TASK_ERROR: Classification.HARNESS_ERROR,
}


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's *results* (and hence its
    report).  Execution parameters — worker count, timeouts, retries,
    journals — live in :class:`repro.campaign.EngineConfig` and may
    never influence report bytes."""

    seed: int = 7
    runs: int = 8
    cycles: int = 400
    organizations: tuple[str, ...] = ("arbitrated", "event_driven")
    fault_kinds: tuple[str, ...] = FAULT_KINDS
    policy: str = RecoveryPolicy.BREAK_DEPENDENCY.value
    read_timeout: int = 40
    deadlock_window: int = 80
    #: attach the cycle-attribution profiler to every run and merge the
    #: per-run ledgers into a campaign-level bottleneck heatmap (part of
    #: the result surface: profiles ride in each run's journaled value,
    #: so flipping this changes the campaign fingerprint)
    profile: bool = False


@dataclass(frozen=True)
class RunOutcome:
    """One classified fault run."""

    organization: str
    index: int
    fault_kinds: tuple[str, ...]
    faults: tuple[str, ...]
    classification: Classification
    cycles_run: int
    watchdog_events: tuple[str, ...] = ()
    degradations: tuple[str, ...] = ()
    error: Optional[str] = None
    #: the run's cycle-attribution ledger (``cycles``/``states``/``sites``)
    #: when the campaign profiles; ``None`` otherwise
    profile: Optional[dict] = None

    def to_json(self) -> dict:
        """JSON-pure record (tuples become lists) — what a worker
        returns and what the resume journal stores."""
        record = {
            "organization": self.organization,
            "index": self.index,
            "fault_kinds": list(self.fault_kinds),
            "faults": list(self.faults),
            "classification": self.classification.value,
            "cycles_run": self.cycles_run,
            "watchdog_events": list(self.watchdog_events),
            "degradations": list(self.degradations),
            "error": self.error,
        }
        # Emitted only when profiling so unprofiled journals/goldens keep
        # their historical byte layout.
        if self.profile is not None:
            record["profile"] = self.profile
        return record

    @classmethod
    def from_json(cls, record: dict) -> "RunOutcome":
        return cls(
            organization=record["organization"],
            index=record["index"],
            fault_kinds=tuple(record["fault_kinds"]),
            faults=tuple(record["faults"]),
            classification=Classification(record["classification"]),
            cycles_run=record["cycles_run"],
            watchdog_events=tuple(record["watchdog_events"]),
            degradations=tuple(record["degradations"]),
            error=record["error"],
            profile=record.get("profile"),
        )


@dataclass
class CampaignReport:
    """A campaign's classified outcomes plus deterministic rendering."""

    config: CampaignConfig
    outcomes: list[RunOutcome] = field(default_factory=list)
    #: the campaign was cut short by Ctrl-C: ``outcomes`` is a valid
    #: partial result set, rendered with an ``interrupted`` marker
    interrupted: bool = False
    #: the engine's execution telemetry (wall time, retries, worker
    #: utilization) — never part of the deterministic render
    engine: Optional[EngineReport] = None

    def expected_runs(self) -> int:
        return self.config.runs * len(self.config.organizations)

    def by_classification(self) -> dict[str, int]:
        counts: dict[str, int] = {c.value: 0 for c in Classification}
        for outcome in self.outcomes:
            counts[outcome.classification.value] += 1
        return counts

    def by_kind(self) -> dict[str, dict[str, int]]:
        """fault kind -> classification -> run count (runs with several
        faults count under each kind involved)."""
        table: dict[str, dict[str, int]] = {}
        for outcome in self.outcomes:
            for kind in sorted(set(outcome.fault_kinds)) or ["none"]:
                row = table.setdefault(kind, {})
                row[outcome.classification.value] = (
                    row.get(outcome.classification.value, 0) + 1
                )
        return table

    def kinds_classified(self) -> tuple[str, ...]:
        """Distinct fault kinds that produced at least one classified run."""
        return tuple(sorted({k for o in self.outcomes for k in o.fault_kinds}))

    def profile_by_organization(self) -> dict[str, dict]:
        """organization -> merged cycle-attribution ledger (the campaign
        bottleneck heatmap).  ``outcomes`` is index-sorted by the engine
        merge, so the fold order — and hence the merged dict — is
        identical across worker counts and resume boundaries."""
        grouped: dict[str, list[dict]] = {}
        for outcome in self.outcomes:
            if outcome.profile is not None:
                grouped.setdefault(outcome.organization, []).append(
                    outcome.profile
                )
        return {
            organization: merge_profiles(profiles)
            for organization, profiles in grouped.items()
        }

    def render(self) -> str:
        cfg = self.config
        lines = [
            "fault campaign",
            f"  seed={cfg.seed} runs={cfg.runs} cycles={cfg.cycles} "
            f"policy={cfg.policy}",
            f"  organizations: {', '.join(cfg.organizations)}",
            f"  watchdog: read_timeout={cfg.read_timeout} "
            f"deadlock_window={cfg.deadlock_window}",
            "",
        ]
        for outcome in self.outcomes:
            lines.append(
                f"run {outcome.organization}#{outcome.index}: "
                f"{outcome.classification.value} "
                f"({outcome.cycles_run} cycles)"
            )
            for fault in outcome.faults:
                lines.append(f"    fault: {fault}")
            for event in outcome.watchdog_events:
                lines.append(f"    watchdog: {event}")
            for degradation in outcome.degradations:
                lines.append(f"    {degradation}")
            if outcome.error:
                lines.append(f"    error: {outcome.error}")
        lines.append("")
        lines.append("summary by fault kind:")
        for kind, row in sorted(self.by_kind().items()):
            cells = " ".join(
                f"{name}={count}" for name, count in sorted(row.items())
            )
            lines.append(f"  {kind}: {cells}")
        totals = " ".join(
            f"{name}={count}"
            for name, count in sorted(self.by_classification().items())
        )
        lines.append(f"totals: {totals}")
        heatmap = self.profile_by_organization()
        if heatmap:
            # Only profiled campaigns grow this section: the committed
            # unprofiled golden keeps its historical bytes.
            lines.append("")
            lines.append("bottleneck heatmap (cycles per wait state):")
            for organization, merged in sorted(heatmap.items()):
                cells = " ".join(
                    f"{state}={merged['states'][state]}"
                    for state in WAIT_STATES
                    if merged["states"].get(state)
                )
                lines.append(
                    f"  {organization} ({merged['runs']} runs, "
                    f"{merged['cycles']} cycles): {cells or 'no cycles'}"
                )
                for site, per_state in merged["sites"].items():
                    site_cells = " ".join(
                        f"{state}={count}"
                        for state, count in per_state.items()
                    )
                    lines.append(f"    {site}: {site_cells}")
        if len(self.outcomes) < self.expected_runs():
            lines.append(
                f"partial: {len(self.outcomes)}/{self.expected_runs()} runs"
            )
        if self.interrupted:
            lines.append("interrupted: true")
        return "\n".join(lines)


#: Versioned schema tag of :func:`campaign_summary_dict` / ``--summary-json``.
SUMMARY_SCHEMA = "repro.faults.summary/1"


def campaign_summary_dict(report: CampaignReport) -> dict:
    """Machine-readable campaign summary (the ``--summary-json`` body).

    Every key except ``engine`` is part of the deterministic result
    surface — byte-identical across worker counts, retries, and resume
    boundaries once serialized with sorted keys.  ``engine`` carries the
    execution telemetry (retry counters, worker utilization, wall time)
    that used to be stderr/Prometheus-only; it describes *this
    execution* and legitimately varies between invocations, which is why
    it lives under its own clearly-non-deterministic key instead of
    leaking into the totals."""
    cfg = report.config
    summary: dict = {
        "schema": SUMMARY_SCHEMA,
        "config": {
            "seed": cfg.seed,
            "runs": cfg.runs,
            "cycles": cfg.cycles,
            "organizations": list(cfg.organizations),
            "fault_kinds": list(cfg.fault_kinds),
            "policy": cfg.policy,
            "read_timeout": cfg.read_timeout,
            "deadlock_window": cfg.deadlock_window,
            "profile": cfg.profile,
        },
        "expected_runs": report.expected_runs(),
        "completed_runs": len(report.outcomes),
        "interrupted": report.interrupted,
        "totals": report.by_classification(),
        "by_kind": report.by_kind(),
        "outcomes": [outcome.to_json() for outcome in report.outcomes],
        "profile": report.profile_by_organization() or None,
        "engine": None,
    }
    if report.engine is not None:
        engine = report.engine
        summary["engine"] = {
            **engine.counters(),
            "workers": engine.workers,
            "wall_seconds": round(engine.wall_seconds, 6),
            "utilization": round(engine.utilization, 6),
            "degraded_serial": engine.degraded_serial,
            "stopped": engine.stopped,
        }
    return summary


def dumps_campaign_summary(report: CampaignReport) -> str:
    return (
        json.dumps(campaign_summary_dict(report), sort_keys=True, indent=2)
        + "\n"
    )


def _trace_rounds(sim) -> dict[str, list[tuple]]:
    """Install a golden-trace recorder: per thread, the architectural
    register file at every completed round.

    Round boundaries make the trace phase-insensitive, so comparing
    *histories* distinguishes the cases a single final snapshot cannot:

    * pure delay (dropped request, short stall) produces a *prefix* of the
      golden history — degradation, not corruption;
    * a corrupted value survives in the round it escaped into, even if
      the next producer write heals the memory afterwards.
    """
    histories: dict[str, list[tuple]] = {name: [] for name in sim.executors}
    seen = {name: 0 for name in sim.executors}

    def hook(cycle: int, kernel) -> None:
        for name, executor in sim.executors.items():
            if executor.stats.rounds_completed > seen[name]:
                seen[name] = executor.stats.rounds_completed
                histories[name].append(
                    tuple(sorted((executor.last_round_env or {}).items()))
                )

    sim.kernel.add_post_cycle_hook(hook)
    return histories


def _canonical(value):
    """Recursively normalize lists to tuples: pickle/JSON transport of
    a round history between orchestrator and workers must not affect
    divergence comparison."""
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    return value


def _canonical_history(history) -> dict[str, tuple]:
    return {name: _canonical(rounds) for name, rounds in history.items()}


def _diverged(golden: dict[str, list[tuple]], faulted: dict[str, list[tuple]]) -> bool:
    """True iff any thread's faulted round history contradicts the golden
    one on their common prefix (shorter-but-consistent = delayed, clean)."""
    golden = _canonical_history(golden)
    faulted = _canonical_history(faulted)
    for name, golden_rounds in golden.items():
        faulted_rounds = faulted.get(name, [])
        common = min(len(golden_rounds), len(faulted_rounds))
        if golden_rounds[:common] != faulted_rounds[:common]:
            return True
    return False


def _compile(source: str, organization: str):
    from ..flow import compile_design

    return compile_design(
        source,
        name="campaign",
        organization=Organization(organization),
    )


def model_read_timeout(source, organizations, *, slack: float = 3.0) -> int:
    """Watchdog read-timeout derived from the analytical model.

    The watchdog must distinguish a consumer *legitimately* parked on a
    guarded read from one a fault has hung.  The model's saturated round
    (:func:`repro.model.saturated_round`) bounds the legitimate wait, so
    the worst predicted consumer wait across the campaign's
    organizations — padded by ``slack`` for fault-induced delay the
    campaign still wants classified as recovered, not tripped — makes a
    principled ``--auto-timeout`` default instead of a hand-tuned cycle
    count.
    """
    from ..model import extract_parameters, saturated_round

    worst = 0.0
    for organization in organizations:
        params = extract_parameters(_compile(source, organization))
        worst = max(worst, saturated_round(params).consumer_wait)
    return max(1, math.ceil(worst * slack))


def run_seed(config: CampaignConfig, org_index: int, index: int) -> int:
    """The per-run RNG seed: a pure function of campaign seed and run
    coordinates, never of shared RNG state — what keeps faults identical
    across worker counts, retries, and resume boundaries."""
    return config.seed * 1_000_003 + org_index * 7_919 + index


def campaign_fingerprint(config: CampaignConfig, source: str) -> str:
    """Identity of a campaign's *result surface* — binds a resume
    journal to one (config, source) pair."""
    digest = hashlib.sha256()
    digest.update(repr(config).encode())
    digest.update(source.encode())
    return digest.hexdigest()[:16]


def build_run_specs(
    config: CampaignConfig,
    source: str = CAMPAIGN_SOURCE,
    kernel: Optional[str] = None,
) -> list[RunSpec]:
    """Flatten the (organization × run) matrix into engine run specs.

    The fault-free golden run per organization executes here, once, in
    the orchestrator; its round histories ride along in every payload so
    workers classify independently.
    """
    from ..flow import DEFAULT_KERNEL, build_simulation

    # The kernel is an *execution* parameter, not part of CampaignConfig:
    # every backend is cycle-equivalent, so it may never influence the
    # report bytes or the campaign fingerprint.
    if kernel is None:
        kernel = DEFAULT_KERNEL
    specs: list[RunSpec] = []
    flat = 0
    for org_index, organization in enumerate(config.organizations):
        golden_sim = build_simulation(
            _compile(source, organization), kernel=kernel
        )
        golden = _trace_rounds(golden_sim)
        golden_sim.run(config.cycles)
        for index in range(config.runs):
            specs.append(
                RunSpec(
                    index=flat,
                    payload={
                        "source": source,
                        "organization": organization,
                        "org_index": org_index,
                        "index": index,
                        "rng_seed": run_seed(config, org_index, index),
                        "cycles": config.cycles,
                        "fault_kinds": list(config.fault_kinds),
                        "policy": config.policy,
                        "read_timeout": config.read_timeout,
                        "deadlock_window": config.deadlock_window,
                        "profile": config.profile,
                        "kernel": kernel,
                        "golden": golden,
                    },
                )
            )
            flat += 1
    return specs


def run_one(payload: dict) -> dict:
    """Execute and classify one fault run (the engine task; runs in a
    worker process under ``--workers N``).  Returns the
    :class:`RunOutcome` as a JSON-pure dict."""
    from ..flow import DEFAULT_KERNEL, build_simulation

    # Compile per run: faults mutate configuration-time state (the
    # dependency list), which must not leak across runs.
    sim = build_simulation(
        _compile(payload["source"], payload["organization"]),
        kernel=payload.get("kernel") or DEFAULT_KERNEL,
    )
    surface = FaultSurface.from_simulation(sim)
    rng = random.Random(payload["rng_seed"])
    n_faults = 1 + (rng.random() < 0.4)
    faults = []
    for __ in range(n_faults):
        fault = sample_fault(
            rng,
            rng.choice(tuple(payload["fault_kinds"])),
            surface,
            payload["cycles"],
        )
        if fault is not None:
            faults.append(fault)
    injector = FaultInjector(faults).attach(sim)
    traced = _trace_rounds(sim)
    profiler = sim.attach_profiler() if payload.get("profile") else None
    watchdog = Watchdog(
        read_timeout=payload["read_timeout"],
        deadlock_window=payload["deadlock_window"],
        policy=payload["policy"],
    ).attach(sim)

    error: Optional[str] = None
    try:
        sim.run(payload["cycles"])
    except ControllerError as exc:
        error = exc.describe()

    if error is not None:
        classification = Classification.DETECTED_ABORTED
    elif watchdog.tripped:
        classification = Classification.DETECTED_RECOVERED
    elif _diverged(payload["golden"], traced):
        classification = Classification.SILENT_CORRUPTION
    else:
        classification = Classification.CLEAN

    profile: Optional[dict] = None
    if profiler is not None:
        # The worker ships only the ledger's aggregate axes back through
        # the result pipe/journal: enough for the campaign heatmap and
        # JSON-pure by construction.
        from ..obs.profiler import breakdown_dict

        breakdown = breakdown_dict(profiler)
        profile = {
            "cycles": breakdown["cycles"],
            "states": breakdown["states"],
            "sites": breakdown["sites"],
            "conservation_ok": breakdown["conservation"]["ok"],
        }

    return RunOutcome(
        organization=payload["organization"],
        index=payload["index"],
        fault_kinds=tuple(f.kind for f in faults),
        faults=tuple(injector.describe()),
        classification=classification,
        cycles_run=sim.kernel.cycle,
        watchdog_events=tuple(e.describe() for e in watchdog.events),
        degradations=tuple(watchdog.degradations),
        error=error,
        profile=profile,
    ).to_json()


def _outcome_from_result(result: RunResult, spec: RunSpec) -> RunOutcome:
    """Map an engine result to a classified outcome — including runs
    the harness, not the simulator, failed to complete."""
    if result.outcome == OUTCOME_OK:
        return RunOutcome.from_json(result.value)
    return RunOutcome(
        organization=spec.payload["organization"],
        index=spec.payload["index"],
        fault_kinds=(),
        faults=(),
        classification=_ENGINE_CLASSIFICATIONS[result.outcome],
        cycles_run=0,
        error=result.error,
    )


def run_campaign(
    config: CampaignConfig = CampaignConfig(),
    source: str = CAMPAIGN_SOURCE,
    engine: Optional[EngineConfig] = None,
    metrics=None,
    kernel: Optional[str] = None,
) -> CampaignReport:
    """Run the full campaign through the fault-tolerant engine and
    return its report.

    ``engine=None`` (or ``workers=1``) executes serially in-process;
    any :class:`~repro.campaign.EngineConfig` fans the same matrix
    across worker processes with crash isolation, per-run timeouts,
    retry/backoff, and journal checkpoint/resume — the merged report is
    byte-identical either way.
    """
    specs = build_run_specs(config, source, kernel)
    campaign_engine = CampaignEngine(
        run_one,
        engine or EngineConfig(),
        fingerprint=campaign_fingerprint(config, source),
        metrics=metrics,
    )
    engine_report = campaign_engine.run(specs)
    spec_by_index = {spec.index: spec for spec in specs}
    report = CampaignReport(
        config=config,
        interrupted=engine_report.interrupted,
        engine=engine_report,
    )
    for result in engine_report.results:
        report.outcomes.append(
            _outcome_from_result(result, spec_by_index[result.index])
        )
    return report


# -- command line ---------------------------------------------------------------------

#: Single source of truth for CLI defaults: the dataclasses above.  The
#: parser derives every default from these instances so the two can
#: never drift (asserted by ``tests/faults/test_campaign.py``).
CONFIG_DEFAULTS = CampaignConfig()
ENGINE_DEFAULTS = EngineConfig()


def _simulation_kernels() -> list:
    # deferred: the flow imports this module back
    from ..flow import SIMULATION_KERNELS

    return list(SIMULATION_KERNELS)


def _faults_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description=(
            "Run a seeded fault-injection campaign against the generated "
            "memory controllers and classify every run against a golden "
            "trace.  Runs execute through the fault-tolerant campaign "
            "engine: --workers fans them across crash-isolated processes, "
            "--journal/--resume checkpoint completed runs, and the merged "
            "report is byte-identical regardless."
        ),
    )
    parser.add_argument("--seed", type=int, default=CONFIG_DEFAULTS.seed)
    parser.add_argument(
        "--runs",
        type=int,
        default=CONFIG_DEFAULTS.runs,
        help="fault runs per organization",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=CONFIG_DEFAULTS.cycles,
        help="simulated cycles per run",
    )
    parser.add_argument(
        "--organization",
        choices=["arbitrated", "event_driven", "both"],
        default="both",
    )
    parser.add_argument(
        "--policy",
        choices=[p.value for p in RecoveryPolicy],
        default=CONFIG_DEFAULTS.policy,
        help="watchdog recovery policy",
    )
    parser.add_argument(
        "--kinds",
        default=",".join(CONFIG_DEFAULTS.fault_kinds),
        help=f"comma-separated fault kinds (default: all of {FAULT_KINDS})",
    )
    parser.add_argument(
        "--read-timeout",
        type=int,
        default=CONFIG_DEFAULTS.read_timeout,
        metavar="CYCLES",
    )
    parser.add_argument(
        "--auto-timeout",
        action="store_true",
        help=(
            "derive --read-timeout from the analytical performance "
            "model: worst predicted saturated consumer wait across the "
            "campaign's organizations, padded 3x (overrides "
            "--read-timeout; see docs/performance_model.md)"
        ),
    )
    parser.add_argument(
        "--deadlock-window",
        type=int,
        default=CONFIG_DEFAULTS.deadlock_window,
        metavar="CYCLES",
    )
    parser.add_argument(
        "--source", metavar="FILE", help="hic design to fault (default: built-in pipeline)"
    )
    parser.add_argument(
        "--kernel",
        choices=_simulation_kernels(),
        default=None,
        help=(
            "simulation backend for every run (default: the flow's "
            "default kernel); report bytes are kernel-independent"
        ),
    )
    parser.add_argument(
        "--report", metavar="FILE", help="also write the report to FILE"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "attach the cycle-attribution profiler to every run and "
            "append the merged bottleneck heatmap (organization × wait "
            "state) to the report — byte-identical across worker counts "
            "and resume boundaries (see docs/profiling.md)"
        ),
    )
    parser.add_argument(
        "--summary-json",
        metavar="FILE",
        help=(
            "write a machine-readable campaign summary to FILE: "
            "deterministic totals/outcomes/heatmap plus the engine's "
            "execution telemetry under the non-deterministic 'engine' key"
        ),
    )
    engine = parser.add_argument_group(
        "engine", "fault-tolerant execution (see docs/campaign.md)"
    )
    engine.add_argument(
        "--workers",
        type=int,
        default=ENGINE_DEFAULTS.workers,
        metavar="N",
        help=(
            "worker processes; each run executes crash-isolated in its "
            "own process (1 = serial, in-process)"
        ),
    )
    engine.add_argument(
        "--run-timeout",
        type=float,
        default=ENGINE_DEFAULTS.run_timeout,
        metavar="SECONDS",
        help=(
            "wall-clock budget per run: a hung worker is killed and the "
            "run classified worker-timeout (default: no timeout)"
        ),
    )
    engine.add_argument(
        "--retries",
        type=int,
        default=ENGINE_DEFAULTS.retries,
        metavar="N",
        help=(
            "extra attempts after a crashed/timed-out worker, with "
            "capped exponential backoff"
        ),
    )
    engine.add_argument(
        "--journal",
        metavar="FILE",
        default=ENGINE_DEFAULTS.journal,
        help=(
            "append each finalized run to this JSONL journal the moment "
            "it completes (the crash-safety checkpoint)"
        ),
    )
    engine.add_argument(
        "--resume",
        metavar="FILE",
        default=ENGINE_DEFAULTS.resume,
        help=(
            "skip runs already finalized in this journal (refused if it "
            "belongs to a differently-configured campaign)"
        ),
    )
    engine.add_argument(
        "--stop-after",
        type=int,
        default=ENGINE_DEFAULTS.stop_after,
        metavar="N",
        help=(
            "checkpoint valve: stop after N new results (exit code 3), "
            "leaving the rest for --resume"
        ),
    )
    engine.add_argument(
        "--chaos-crash",
        type=int,
        action="append",
        metavar="INDEX",
        help=(
            "testing aid: hard-crash the worker for flat run INDEX on "
            "its first attempt (exercises retry/resume for real; "
            "repeatable)"
        ),
    )
    engine.add_argument(
        "--engine-metrics",
        metavar="FILE",
        help=(
            "write the engine's robustness counters (runs completed/"
            "retried/crashed/timed-out, worker utilization) as "
            "Prometheus text to FILE"
        ),
    )
    return parser


def faults_main(argv: Optional[list] = None) -> int:
    """Entry point for ``python -m repro faults``.

    Exit codes: 0 complete, 1 campaign error, 2 usage error, 3 stopped
    at a ``--stop-after`` checkpoint (resume to finish), 130
    interrupted by Ctrl-C (partial report still rendered).
    """
    args = _faults_parser().parse_args(argv)
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    unknown = set(kinds) - set(FAULT_KINDS)
    if unknown:
        print(f"error: unknown fault kinds {sorted(unknown)}", file=sys.stderr)
        return 2
    organizations = (
        ("arbitrated", "event_driven")
        if args.organization == "both"
        else (args.organization,)
    )
    source = CAMPAIGN_SOURCE
    if args.source:
        try:
            with open(args.source) as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: cannot read {args.source}: {error}", file=sys.stderr)
            return 2
    read_timeout = args.read_timeout
    if args.auto_timeout:
        read_timeout = model_read_timeout(source, organizations)
        print(
            f"auto-timeout: model-derived read timeout = "
            f"{read_timeout} cycles",
            file=sys.stderr,
        )
    config = CampaignConfig(
        seed=args.seed,
        runs=args.runs,
        cycles=args.cycles,
        organizations=organizations,
        fault_kinds=kinds,
        policy=args.policy,
        read_timeout=read_timeout,
        deadlock_window=args.deadlock_window,
        profile=args.profile,
    )
    engine_config = EngineConfig(
        workers=args.workers,
        run_timeout=args.run_timeout,
        retries=args.retries,
        journal=args.journal,
        resume=args.resume,
        stop_after=args.stop_after,
        chaos=tuple((index, "crash") for index in (args.chaos_crash or ())),
    )
    metrics = None
    if args.engine_metrics:
        from ..obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    try:
        report = run_campaign(
            config,
            source=source,
            engine=engine_config,
            metrics=metrics,
            kernel=args.kernel,
        )
    except KeyboardInterrupt:
        # Interrupted before the engine produced any result (e.g. during
        # the golden runs): nothing to render, but exit like an
        # interrupted campaign.
        print("interrupted before any campaign results", file=sys.stderr)
        return 130
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    text = report.render()
    print(text)
    if report.engine is not None:
        # Execution telemetry goes to stderr: stdout is the
        # deterministic report surface (byte-identical across worker
        # counts), wall-clock numbers are not.
        print(report.engine.describe(), file=sys.stderr)
    if args.engine_metrics and metrics is not None:
        with open(args.engine_metrics, "w") as handle:
            handle.write(metrics.render_prometheus())
        print(f"wrote engine metrics to {args.engine_metrics}")
    if args.summary_json:
        with open(args.summary_json, "w") as handle:
            handle.write(dumps_campaign_summary(report))
        print(f"wrote campaign summary to {args.summary_json}")
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote report to {args.report}")
    if report.interrupted:
        return 130
    if report.engine is not None and report.engine.stopped:
        print(
            f"checkpoint: stopped after {report.engine.completed} new "
            f"results; resume with --resume {args.journal or '<journal>'}"
        )
        return 3
    return 0
