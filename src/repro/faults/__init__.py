"""Fault injection and runtime watchdogs for the memory controllers.

The paper argues the generated controllers make synchronization *safe by
construction* — this package exercises the *unhappy* path that claim never
covers:

* :mod:`~repro.faults.models` — seeded, schedulable fault models: BRAM
  single-event upsets, producer stall/death, request drop/duplication at a
  controller port, and dependency-list configuration corruption;
* :mod:`~repro.faults.injector` — arms fault models onto a running
  simulation through the kernel's pre-cycle hook and the controllers'
  request taps;
* :mod:`~repro.faults.watchdog` — runtime detection of blocked-read
  timeouts and system-level deadlock/livelock (the dynamic complement of
  :mod:`repro.analysis.deadlock`), with configurable recovery policies;
* :mod:`~repro.faults.campaign` — randomized chaos campaigns with
  golden-trace classification (clean / detected-recovered /
  detected-aborted / silent-corruption) and deterministic reports.
"""

from .campaign import (
    CampaignConfig,
    CampaignReport,
    Classification,
    RunOutcome,
    run_campaign,
)
from .injector import FaultInjector
from .models import (
    DeplistCorruption,
    Fault,
    ProducerStall,
    RequestDrop,
    RequestDuplicate,
    SeuBitFlip,
    sample_fault,
)
from .watchdog import RecoveryPolicy, Watchdog, WatchdogEvent

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "Classification",
    "RunOutcome",
    "run_campaign",
    "FaultInjector",
    "DeplistCorruption",
    "Fault",
    "ProducerStall",
    "RequestDrop",
    "RequestDuplicate",
    "SeuBitFlip",
    "sample_fault",
    "RecoveryPolicy",
    "Watchdog",
    "WatchdogEvent",
]
