"""The inter-thread dependency graph.

Nodes are threads; a directed edge producer→consumer exists for every
consumer endpoint of every resolved dependency.  This graph drives the
static deadlock check, the controller generators (which need the fan-out of
each producer), and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hic.pragmas import Dependency


@dataclass(frozen=True)
class DepEdge:
    """A producer→consumer edge labelled with its dependency."""

    producer: str
    consumer: str
    dep_id: str
    variable: str


@dataclass
class DependencyGraph:
    """Directed multigraph of inter-thread dependencies."""

    threads: set[str] = field(default_factory=set)
    edges: list[DepEdge] = field(default_factory=list)
    dependencies: dict[str, Dependency] = field(default_factory=dict)

    @classmethod
    def build(
        cls, dependencies: list[Dependency], all_threads: list[str] | None = None
    ) -> "DependencyGraph":
        graph = cls()
        if all_threads:
            graph.threads.update(all_threads)
        for dep in dependencies:
            graph.dependencies[dep.dep_id] = dep
            graph.threads.add(dep.producer_thread)
            for ref in dep.consumers:
                graph.threads.add(ref.thread)
                graph.edges.append(
                    DepEdge(
                        producer=dep.producer_thread,
                        consumer=ref.thread,
                        dep_id=dep.dep_id,
                        variable=dep.producer_var,
                    )
                )
        return graph

    # -- queries --------------------------------------------------------------------

    def successors(self, thread: str) -> list[str]:
        """Threads that consume values produced by ``thread``."""
        seen: list[str] = []
        for edge in self.edges:
            if edge.producer == thread and edge.consumer not in seen:
                seen.append(edge.consumer)
        return seen

    def predecessors(self, thread: str) -> list[str]:
        """Threads whose values ``thread`` consumes."""
        seen: list[str] = []
        for edge in self.edges:
            if edge.consumer == thread and edge.producer not in seen:
                seen.append(edge.producer)
        return seen

    def produced_by(self, thread: str) -> list[Dependency]:
        return [
            dep
            for dep in self.dependencies.values()
            if dep.producer_thread == thread
        ]

    def consumed_by(self, thread: str) -> list[Dependency]:
        return [
            dep
            for dep in self.dependencies.values()
            if thread in dep.consumer_threads()
        ]

    def fan_out(self, dep_id: str) -> int:
        """The dependency number ``dn`` of a dependency."""
        return self.dependencies[dep_id].dependency_number

    def max_fan_out(self) -> int:
        if not self.dependencies:
            return 0
        return max(dep.dependency_number for dep in self.dependencies.values())

    # -- structure -------------------------------------------------------------------

    def thread_cycles(self) -> list[list[str]]:
        """Elementary cycles in the thread graph (producer→consumer edges).

        A cycle here is *necessary but not sufficient* for deadlock — the
        statement-order-aware analysis in :mod:`repro.analysis.deadlock`
        decides which cycles actually block.
        """
        adjacency: dict[str, set[str]] = {t: set() for t in self.threads}
        for edge in self.edges:
            adjacency[edge.producer].add(edge.consumer)

        cycles: list[list[str]] = []
        seen_keys: set[tuple[str, ...]] = set()

        def dfs(start: str, node: str, path: list[str], visited: set[str]) -> None:
            for nxt in sorted(adjacency[node]):
                if nxt == start:
                    # canonicalize rotation for dedup
                    rotation = min(range(len(path)), key=lambda i: path[i])
                    key = tuple(path[rotation:] + path[:rotation])
                    if key not in seen_keys:
                        seen_keys.add(key)
                        cycles.append(list(key))
                elif nxt not in visited and nxt > start:
                    visited.add(nxt)
                    dfs(start, nxt, path + [nxt], visited)
                    visited.discard(nxt)

        for start in sorted(self.threads):
            dfs(start, start, [start], {start})
        return cycles

    def topological_layers(self) -> list[list[str]]:
        """Threads grouped in dataflow layers (Kahn).  Raises ``ValueError``
        if the graph has a cycle."""
        in_degree: dict[str, int] = {t: 0 for t in self.threads}
        adjacency: dict[str, set[str]] = {t: set() for t in self.threads}
        for edge in self.edges:
            if edge.consumer not in adjacency[edge.producer]:
                adjacency[edge.producer].add(edge.consumer)
                in_degree[edge.consumer] += 1

        layers: list[list[str]] = []
        frontier = sorted(t for t, deg in in_degree.items() if deg == 0)
        remaining = dict(in_degree)
        placed = 0
        while frontier:
            layers.append(frontier)
            placed += len(frontier)
            next_frontier: list[str] = []
            for node in frontier:
                for nxt in sorted(adjacency[node]):
                    remaining[nxt] -= 1
                    if remaining[nxt] == 0:
                        next_frontier.append(nxt)
            frontier = sorted(next_frontier)
        if placed != len(self.threads):
            raise ValueError("dependency graph has a cycle; no topological order")
        return layers

    def to_dot(self) -> str:
        """Graphviz rendering of the dependency graph (for documentation)."""
        lines = ["digraph dependencies {"]
        for thread in sorted(self.threads):
            lines.append(f'  "{thread}";')
        for edge in self.edges:
            lines.append(
                f'  "{edge.producer}" -> "{edge.consumer}" '
                f'[label="{edge.dep_id}:{edge.variable}"];'
            )
        lines.append("}")
        return "\n".join(lines)
