"""Channel classification: which dependencies are plain FIFO channels.

The paper's guarded-BRAM organizations (§3.1/§3.2) synchronize *every*
produced variable with CAM-matched dependency entries, whether or not the
communication pattern needs that generality.  For streaming process
networks most channels are far simpler: one producer thread writes a
scalar in program order, exactly one consumer thread reads each value
exactly once, and neither side ever addresses the storage any other way.
Such a channel needs no address CAM and no dependency counter — a plain
FIFO with full/empty handshakes synchronizes it at strictly lower cost
(Alias, arXiv:1801.04821 makes the same observation for process-network
synthesis).

This pass inspects a checked program — dependencies, scopes, and the
use-def chains of each thread — and classifies every dependency as either

* ``FIFO``     — lowerable to a plain FIFO channel
  (:class:`repro.memory.fifo.FifoChannelController`), or
* ``GUARDED``  — must keep the guarded-BRAM machinery.

The decision rules (see docs/scenarios.md for the catalogue):

1. single consumer: ``dependency_number == 1`` — a broadcast value needs
   the runtime read counter;
2. scalar payload: the produced variable is neither an array nor a
   ``message`` — FIFO slots are not addressable;
3. exclusive channel: no other dependency produces the same variable
   (two dep_ids on one address imply address reuse the FIFO cannot see);
4. write-only producer: the producer thread writes the variable only at
   the producing statement and never reads it back;
5. read-only consumer: the consumer thread reads the variable only at
   the consuming statement (every use carries the dependency's
   ``#producer`` pragma) and never writes it.

Everything the rules consult is static — pragmas, symbol kinds, and
use-def sets — so classification is address-independent and runs before
memory allocation, which then homes each FIFO channel's variable in its
own channel storage instead of a guarded BRAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..hic import ast
from ..hic.pragmas import Dependency
from ..hic.semantic import CheckedProgram
from ..hic.types import MessageType
from .usedef import linearize


class ChannelClass(enum.Enum):
    """How a dependency's synchronization is synthesized."""

    FIFO = "fifo"
    GUARDED = "guarded"


@dataclass(frozen=True)
class ChannelDecision:
    """Classification of one dependency, with the deciding rule."""

    dep_id: str
    producer_thread: str
    producer_var: str
    consumer_threads: tuple[str, ...]
    channel_class: ChannelClass
    #: human-readable reason (the first rule that forced GUARDED, or
    #: "single-writer in-order stream" for FIFO)
    reason: str

    @property
    def is_fifo(self) -> bool:
        return self.channel_class is ChannelClass.FIFO


def _statement_pragma_ids(info, pragma_type) -> set[str]:
    """dep_ids of pragmas of ``pragma_type`` attached to a statement."""
    stmt = info.stmt
    pragmas = getattr(stmt, "pragmas", None) or []
    return {p.dep_id for p in pragmas if isinstance(p, pragma_type)}


def _producer_rule(dep: Dependency, statements) -> str | None:
    """Rule 4: every def at the producing statement, no reads back."""
    for info in statements:
        produced_here = dep.dep_id in _statement_pragma_ids(
            info, ast.ConsumerPragma
        )
        if dep.producer_var in info.defs and not produced_here:
            return (
                f"producer {dep.producer_thread!r} also writes "
                f"{dep.producer_var!r} outside the producing statement"
            )
        if dep.producer_var in info.uses:
            return (
                f"producer {dep.producer_thread!r} reads "
                f"{dep.producer_var!r} back"
            )
    return None


def _consumer_rule(dep: Dependency, consumer: str, statements) -> str | None:
    """Rule 5: every use at the consuming statement, no writes."""
    for info in statements:
        consumed_here = dep.dep_id in _statement_pragma_ids(
            info, ast.ProducerPragma
        )
        if dep.producer_var in info.defs:
            return (
                f"consumer {consumer!r} writes shared "
                f"{dep.producer_var!r}"
            )
        if dep.producer_var in info.uses and not consumed_here:
            return (
                f"consumer {consumer!r} reads {dep.producer_var!r} "
                "outside the consuming statement"
            )
    return None


def classify_channel(
    dep: Dependency,
    checked: CheckedProgram,
    statements_by_thread: dict[str, list] | None = None,
) -> ChannelDecision:
    """Classify one dependency against the FIFO decision rules."""

    def guarded(reason: str) -> ChannelDecision:
        return ChannelDecision(
            dep_id=dep.dep_id,
            producer_thread=dep.producer_thread,
            producer_var=dep.producer_var,
            consumer_threads=dep.consumer_threads(),
            channel_class=ChannelClass.GUARDED,
            reason=reason,
        )

    # Rule 1: single consumer.
    if dep.dependency_number != 1:
        return guarded(
            f"broadcast: dependency number {dep.dependency_number} > 1"
        )

    # Rule 2: scalar payload.
    symbol = checked.scopes[dep.producer_thread].symbols[dep.producer_var]
    if symbol.is_array:
        return guarded(f"produced variable {dep.producer_var!r} is an array")
    if isinstance(symbol.hic_type, MessageType):
        return guarded(f"produced variable {dep.producer_var!r} is a message")

    # Rule 3: exclusive channel over the produced variable.
    owner = (dep.producer_thread, dep.producer_var)
    for other in checked.dependencies:
        if other.dep_id == dep.dep_id:
            continue
        if (other.producer_thread, other.producer_var) == owner:
            return guarded(
                f"variable shared with dependency {other.dep_id!r}"
            )

    if statements_by_thread is None:
        statements_by_thread = {}

    def statements(thread_name: str):
        if thread_name not in statements_by_thread:
            thread = next(
                t
                for t in checked.program.threads
                if t.name == thread_name
            )
            statements_by_thread[thread_name] = linearize(thread)
        return statements_by_thread[thread_name]

    # Rule 4: write-only producer.
    reason = _producer_rule(dep, statements(dep.producer_thread))
    if reason is not None:
        return guarded(reason)

    # Rule 5: read-only consumer.
    consumer = dep.consumers[0].thread
    reason = _consumer_rule(dep, consumer, statements(consumer))
    if reason is not None:
        return guarded(reason)

    return ChannelDecision(
        dep_id=dep.dep_id,
        producer_thread=dep.producer_thread,
        producer_var=dep.producer_var,
        consumer_threads=dep.consumer_threads(),
        channel_class=ChannelClass.FIFO,
        reason="single-writer in-order stream",
    )


def classify_channels(checked: CheckedProgram) -> dict[str, ChannelDecision]:
    """Classify every dependency of a checked program.

    Returns ``dep_id -> ChannelDecision`` in deterministic (sorted)
    order.  The linearized statement lists are shared across decisions,
    so the pass is linear in program size.
    """
    cache: dict[str, list] = {}
    return {
        dep.dep_id: classify_channel(dep, checked, cache)
        for dep in sorted(checked.dependencies, key=lambda d: d.dep_id)
    }


def fifo_channel_name(dep_id: str) -> str:
    """Controller/storage name of a FIFO-lowered channel."""
    return f"fifo_{dep_id}"


def fifo_lowered_variables(
    decisions: dict[str, ChannelDecision],
) -> dict[tuple[str, str], str]:
    """``(producer_thread, producer_var) -> dep_id`` for FIFO channels —
    the allocator input that re-homes each channel variable into its own
    channel storage."""
    return {
        (decision.producer_thread, decision.producer_var): decision.dep_id
        for decision in decisions.values()
        if decision.is_fifo
    }
