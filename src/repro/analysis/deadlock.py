"""Static deadlock detection.

The paper (section 1): "deadlocks are identified statically since the user
explicitly specifies producer(s) and consumer(s)".  With blocking consumer
reads and no rollback, a deadlock occurs exactly when the happens-before
relation required by the dependencies conflicts with each thread's own
program order:

* *cross-thread edges*: the consuming read of a dependency cannot start
  before its producing write;
* *program-order edges*: within one thread, a later statement cannot start
  before an earlier one completes (threads "run to completion" per message,
  so a blocked read stalls everything after it).

A cycle in the union of these two relations is a static deadlock.  The
classic instance: t1 consumes a value produced late in t2, while t2 consumes
a value produced late in t1 — each blocks before reaching its own write.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hic import ast
from ..hic.pragmas import Dependency
from ..hic.semantic import CheckedProgram


@dataclass(frozen=True)
class Event:
    """A producing write or consuming read, positioned in its thread."""

    thread: str
    statement_index: int
    dep_id: str
    is_producer: bool

    def describe(self) -> str:
        role = "produce" if self.is_producer else "consume"
        return f"{self.thread}[{self.statement_index}] {role} {self.dep_id}"


@dataclass
class DeadlockReport:
    """Result of the static deadlock check."""

    deadlocked: bool
    cycle: list[Event]

    def explain(self) -> str:
        if not self.deadlocked:
            return "no static deadlock: the dependency order is consistent"
        steps = " -> ".join(event.describe() for event in self.cycle)
        return f"static deadlock cycle: {steps}"


def _collect_events(checked: CheckedProgram) -> list[Event]:
    """Locate every pragma-annotated statement in its thread's linear order."""
    events: list[Event] = []
    for thread in checked.program.threads:
        index = 0
        for node in ast.walk(thread.body):
            if not isinstance(node, ast.Stmt) or isinstance(node, ast.Block):
                continue
            if isinstance(node, ast.VarDecl):
                continue
            if isinstance(node, ast.Assign):
                for pragma in node.pragmas:
                    events.append(
                        Event(
                            thread=thread.name,
                            statement_index=index,
                            dep_id=pragma.dep_id,
                            is_producer=isinstance(pragma, ast.ConsumerPragma),
                        )
                    )
            index += 1
    return events


def check_deadlock(checked: CheckedProgram) -> DeadlockReport:
    """Run the static deadlock analysis over a checked program.

    Builds the combined happens-before graph over producer/consumer events
    and searches it for a cycle.
    """
    events = _collect_events(checked)
    dep_ids = {dep.dep_id for dep in checked.dependencies}

    # Adjacency over event indices.
    successors: dict[int, set[int]] = {i: set() for i in range(len(events))}

    # Program order within each thread: earlier event must complete first,
    # so edge earlier -> later ("later waits on earlier").
    by_thread: dict[str, list[int]] = {}
    for i, event in enumerate(events):
        by_thread.setdefault(event.thread, []).append(i)
    for indices in by_thread.values():
        ordered = sorted(indices, key=lambda i: events[i].statement_index)
        for a, b in zip(ordered, ordered[1:]):
            successors[a].add(b)

    # Cross-thread order: produce(dep) -> consume(dep).
    for dep_id in dep_ids:
        producer_events = [
            i for i, e in enumerate(events) if e.dep_id == dep_id and e.is_producer
        ]
        consumer_events = [
            i for i, e in enumerate(events) if e.dep_id == dep_id and not e.is_producer
        ]
        for p in producer_events:
            for c in consumer_events:
                successors[p].add(c)

    # Cycle detection (iterative DFS with colors).
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {i: WHITE for i in range(len(events))}
    parent: dict[int, int] = {}

    def extract_cycle(start: int, end: int) -> list[Event]:
        cycle = [end]
        node = end
        while node != start:
            node = parent[node]
            cycle.append(node)
        cycle.reverse()
        return [events[i] for i in cycle]

    for root in range(len(events)):
        if color[root] != WHITE:
            continue
        stack: list[tuple[int, list[int]]] = [(root, sorted(successors[root]))]
        color[root] = GRAY
        while stack:
            node, pending = stack[-1]
            if pending:
                nxt = pending.pop(0)
                if color[nxt] == GRAY:
                    parent[nxt] = node  # close the back edge for extraction
                    return DeadlockReport(True, extract_cycle(nxt, node))
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, sorted(successors[nxt])))
            else:
                color[node] = BLACK
                stack.pop()
    return DeadlockReport(False, [])


def assert_deadlock_free(checked: CheckedProgram) -> None:
    """Raise ``ValueError`` with an explanation if the program can deadlock."""
    report = check_deadlock(checked)
    if report.deadlocked:
        raise ValueError(report.explain())


def wait_chain_depth(dependencies: list[Dependency]) -> dict[str, int]:
    """Longest producer→consumer chain ending at each thread.

    Used by the controller advisor: deep chains amplify the arbitrated
    organization's non-deterministic latency.
    """
    # Build thread-level adjacency.
    adjacency: dict[str, set[str]] = {}
    threads: set[str] = set()
    for dep in dependencies:
        threads.add(dep.producer_thread)
        for ref in dep.consumers:
            threads.add(ref.thread)
            adjacency.setdefault(dep.producer_thread, set()).add(ref.thread)

    depth: dict[str, int] = {}

    def visit(node: str, visiting: set[str]) -> int:
        if node in depth:
            return depth[node]
        if node in visiting:
            return 0  # cycle; deadlock check reports it separately
        visiting.add(node)
        best = 0
        for prev, nexts in adjacency.items():
            if node in nexts:
                best = max(best, visit(prev, visiting) + 1)
        visiting.discard(node)
        depth[node] = best
        return best

    for thread in threads:
        visit(thread, set())
    return depth
