"""Use-def analysis over hic threads.

The paper notes (section 2) that the explicit producer/consumer pragmas are
a convenience, and that "one can use standard compiler use-def analysis and
other lifetime analysis methods to extract producers and consumers from a
given specification".  This module provides both:

* per-thread def/use sets for every statement (in a linearized statement
  order), the substrate for lifetime analysis and the operation order graph;
* :func:`infer_dependencies`, which derives producer/consumer relationships
  across threads *without* pragmas, by treating a variable written in exactly
  one thread and read in others as a shared produced value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hic import ast
from ..hic.pragmas import ConsumerRef, Dependency


@dataclass
class StatementInfo:
    """One linearized statement with its definition and use sets.

    Attributes:
        index: Position in the thread's linear statement order.  Statements
            inside loops and branches are numbered in source order, which is
            a valid *partial* order for the analyses in this package (the
            paper likewise works with a partial order of operations, §3).
        stmt: The underlying AST statement.
        defs: Variable names written by the statement.
        uses: Variable names read by the statement.
        loop_depth: Nesting depth (used to weight access counts).
    """

    index: int
    stmt: ast.Stmt
    defs: frozenset[str]
    uses: frozenset[str]
    loop_depth: int = 0


def expression_uses(expr: ast.Expr) -> set[str]:
    """All root variable names read by an expression."""
    names: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.add(node.ident)
    return names


def target_root(target: ast.LValue) -> str:
    """The root variable written through an assignment target."""
    node: ast.Expr = target
    while isinstance(node, (ast.FieldAccess, ast.Index)):
        node = node.base
    assert isinstance(node, ast.Name), "parser guarantees a Name root"
    return node.ident


def target_index_uses(target: ast.LValue) -> set[str]:
    """Variables *read* while computing an assignment target address
    (e.g. ``i`` in ``table[i] = v``)."""
    uses: set[str] = set()
    node: ast.Expr = target
    while isinstance(node, (ast.FieldAccess, ast.Index)):
        if isinstance(node, ast.Index):
            uses |= expression_uses(node.index)
        node = node.base
    return uses


class _Linearizer:
    """Walks a thread body producing :class:`StatementInfo` records."""

    def __init__(self) -> None:
        self.infos: list[StatementInfo] = []
        self._depth = 0

    def run(self, block: ast.Block) -> list[StatementInfo]:
        self._block(block)
        return self.infos

    def _emit(self, stmt: ast.Stmt, defs: set[str], uses: set[str]) -> None:
        self.infos.append(
            StatementInfo(
                index=len(self.infos),
                stmt=stmt,
                defs=frozenset(defs),
                uses=frozenset(uses),
                loop_depth=self._depth,
            )
        )

    def _block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            return
        if isinstance(stmt, ast.Assign):
            uses = expression_uses(stmt.value) | target_index_uses(stmt.target)
            root = target_root(stmt.target)
            if stmt.op != "=" or isinstance(stmt.target, (ast.Index, ast.FieldAccess)):
                # Compound assignment and partial writes also read the target.
                uses.add(root)
            self._emit(stmt, {root}, uses)
        elif isinstance(stmt, ast.ExprStmt):
            self._emit(stmt, set(), expression_uses(stmt.expr))
        elif isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.If):
            self._emit(stmt, set(), expression_uses(stmt.cond))
            self._block(stmt.then_body)
            if stmt.else_body is not None:
                self._block(stmt.else_body)
        elif isinstance(stmt, ast.Case):
            uses = expression_uses(stmt.selector)
            for arm in stmt.arms:
                for value in arm.values:
                    uses |= expression_uses(value)
            self._emit(stmt, set(), uses)
            for arm in stmt.arms:
                self._block(arm.body)
            if stmt.default is not None:
                self._block(stmt.default)
        elif isinstance(stmt, ast.While):
            self._emit(stmt, set(), expression_uses(stmt.cond))
            self._depth += 1
            self._block(stmt.body)
            self._depth -= 1
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._stmt(stmt.init)
            uses = expression_uses(stmt.cond) if stmt.cond is not None else set()
            self._emit(stmt, set(), uses)
            self._depth += 1
            self._block(stmt.body)
            if stmt.step is not None:
                self._stmt(stmt.step)
            self._depth -= 1
        elif isinstance(stmt, ast.Receive):
            self._emit(stmt, {stmt.target.ident}, set())
        elif isinstance(stmt, ast.Transmit):
            self._emit(stmt, set(), expression_uses(stmt.source))
        elif isinstance(stmt, ast.Return):
            uses = expression_uses(stmt.value) if stmt.value is not None else set()
            self._emit(stmt, set(), uses)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            self._emit(stmt, set(), set())
        else:  # pragma: no cover
            raise TypeError(f"unsupported statement {type(stmt).__name__}")


def linearize(thread: ast.Thread) -> list[StatementInfo]:
    """Linearize a thread body into statements with def/use sets."""
    return _Linearizer().run(thread.body)


@dataclass
class ThreadUseDef:
    """Aggregated use/def facts for one thread."""

    thread_name: str
    statements: list[StatementInfo] = field(default_factory=list)

    @property
    def all_defs(self) -> set[str]:
        defs: set[str] = set()
        for info in self.statements:
            defs |= info.defs
        return defs

    @property
    def all_uses(self) -> set[str]:
        uses: set[str] = set()
        for info in self.statements:
            uses |= info.uses
        return uses

    def definitions_of(self, name: str) -> list[StatementInfo]:
        return [info for info in self.statements if name in info.defs]

    def uses_of(self, name: str) -> list[StatementInfo]:
        return [info for info in self.statements if name in info.uses]

    def first_def_index(self, name: str) -> int | None:
        for info in self.statements:
            if name in info.defs:
                return info.index
        return None

    def last_use_index(self, name: str) -> int | None:
        last: int | None = None
        for info in self.statements:
            if name in info.uses:
                last = info.index
        return last

    def access_count(self, name: str, loop_weight: int = 4) -> int:
        """Weighted number of accesses (loop bodies weighted by depth)."""
        count = 0
        for info in self.statements:
            if name in info.defs or name in info.uses:
                count += loop_weight ** info.loop_depth
        return count


def analyze_thread(thread: ast.Thread) -> ThreadUseDef:
    """Compute use/def facts for one thread."""
    return ThreadUseDef(thread.name, linearize(thread))


def analyze_program(program: ast.Program) -> dict[str, ThreadUseDef]:
    """Use/def facts for every thread, keyed by thread name."""
    return {thread.name: analyze_thread(thread) for thread in program.threads}


def use_def_chains(thread: ast.Thread) -> dict[tuple[int, str], list[int]]:
    """Map each (statement index, used variable) to its possible defining
    statement indices within the thread.

    A conservative structured-program approximation: every definition whose
    index precedes the use reaches it, plus — for uses inside loops — any
    later definition at greater-or-equal loop depth (a back-edge definition).
    """
    infos = linearize(thread)
    chains: dict[tuple[int, str], list[int]] = {}
    for use_info in infos:
        for name in use_info.uses:
            reaching = [
                def_info.index
                for def_info in infos
                if name in def_info.defs
                and (
                    def_info.index < use_info.index
                    or (
                        use_info.loop_depth > 0
                        and def_info.loop_depth >= use_info.loop_depth
                    )
                )
            ]
            chains[(use_info.index, name)] = reaching
    return chains


def infer_dependencies(program: ast.Program) -> list[Dependency]:
    """Infer producer/consumer dependencies across threads without pragmas.

    A variable that is *written* in exactly one thread and *read* in at least
    one other thread is treated as a produced shared value; the writers and
    readers become the producer and consumers respectively.  Dependency ids
    are synthesized as ``auto_<var>``.

    Variables written in more than one thread are skipped (the paper's model
    assigns one producer per dependency entry; a multi-producer variable
    needs one entry per producer, which requires explicit pragmas to
    disambiguate ordering).
    """
    per_thread = analyze_program(program)
    writers: dict[str, list[str]] = {}
    readers: dict[str, list[str]] = {}
    for thread_name, facts in per_thread.items():
        for name in facts.all_defs:
            writers.setdefault(name, []).append(thread_name)
        for name in facts.all_uses:
            readers.setdefault(name, []).append(thread_name)

    inferred: list[Dependency] = []
    for name in sorted(writers):
        writing = writers[name]
        reading = [t for t in readers.get(name, []) if t not in writing]
        if len(writing) != 1 or not reading:
            continue
        consumers = tuple(
            ConsumerRef(thread=t, variable=f"{name}@{t}") for t in sorted(reading)
        )
        inferred.append(
            Dependency(
                dep_id=f"auto_{name}",
                producer_thread=writing[0],
                producer_var=name,
                consumers=consumers,
            )
        )
    return inferred
