"""Static analyses over checked hic programs.

This package implements the front-end analyses the paper relies on:

* :mod:`~repro.analysis.usedef` — use-def chains and pragma-free
  producer/consumer inference;
* :mod:`~repro.analysis.lifetime` — variable live ranges and memory-size
  analysis;
* :mod:`~repro.analysis.depgraph` — the inter-thread dependency graph;
* :mod:`~repro.analysis.memgraph` — the memory access graph and operation
  order graph that drive memory allocation;
* :mod:`~repro.analysis.deadlock` — static deadlock detection over the
  producer/consumer happens-before relation.
"""

from .deadlock import (
    DeadlockReport,
    Event,
    assert_deadlock_free,
    check_deadlock,
    wait_chain_depth,
)
from .depgraph import DepEdge, DependencyGraph
from .lifetime import (
    LiveRange,
    StorageRequirement,
    ThreadLifetimes,
    dependency_footprint,
    storage_requirements,
    thread_lifetimes,
    total_bits,
)
from .memgraph import (
    AccessKind,
    MemOperation,
    MemoryAccessGraph,
    OperationOrderGraph,
    build_memory_graphs,
)
from .usedef import (
    StatementInfo,
    ThreadUseDef,
    analyze_program,
    analyze_thread,
    infer_dependencies,
    linearize,
    use_def_chains,
)

__all__ = [
    "DeadlockReport",
    "Event",
    "assert_deadlock_free",
    "check_deadlock",
    "wait_chain_depth",
    "DepEdge",
    "DependencyGraph",
    "LiveRange",
    "StorageRequirement",
    "ThreadLifetimes",
    "dependency_footprint",
    "storage_requirements",
    "thread_lifetimes",
    "total_bits",
    "AccessKind",
    "MemOperation",
    "MemoryAccessGraph",
    "OperationOrderGraph",
    "build_memory_graphs",
    "StatementInfo",
    "ThreadUseDef",
    "analyze_program",
    "analyze_thread",
    "infer_dependencies",
    "linearize",
    "use_def_chains",
]
