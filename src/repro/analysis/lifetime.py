"""Variable lifetime analysis and memory-size estimation.

Section 3 of the paper: "the user makes memory allocation decisions based on
the memory size analysis and a partial order of operations".  This module
computes, per thread, each variable's live range over the linearized
statement order, the thread's total storage requirement in bits, and the
interference relation used to decide which variables could share storage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hic import ast
from ..hic.semantic import CheckedProgram, Symbol, SymbolKind
from .usedef import ThreadUseDef, analyze_thread


@dataclass(frozen=True)
class LiveRange:
    """The live range of one variable: [first event, last event] indices in
    the thread's linear statement order."""

    variable: str
    start: int
    end: int

    @property
    def span(self) -> int:
        return self.end - self.start + 1

    def overlaps(self, other: "LiveRange") -> bool:
        return self.start <= other.end and other.start <= self.end


@dataclass
class ThreadLifetimes:
    """Lifetime facts for one thread."""

    thread_name: str
    ranges: dict[str, LiveRange]

    def interfering_pairs(self) -> list[tuple[str, str]]:
        """Pairs of variables whose live ranges overlap (cannot share storage)."""
        names = sorted(self.ranges)
        pairs: list[tuple[str, str]] = []
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if self.ranges[a].overlaps(self.ranges[b]):
                    pairs.append((a, b))
        return pairs

    def disjoint_pairs(self) -> list[tuple[str, str]]:
        """Pairs of variables that could share storage."""
        names = sorted(self.ranges)
        return [
            (a, b)
            for i, a in enumerate(names)
            for b in names[i + 1 :]
            if not self.ranges[a].overlaps(self.ranges[b])
        ]


def thread_lifetimes(thread: ast.Thread, facts: ThreadUseDef | None = None) -> ThreadLifetimes:
    """Compute live ranges for every variable touched by a thread.

    A variable's range starts at its first definition (or first use, for
    variables live on entry such as shared imports) and ends at its last use
    (or last definition if it is never read — a produced value whose only
    readers live in other threads stays live to the end of the thread, since
    consumers may read it at any later time).

    Round-carried variables — used at or before their first definition,
    like accumulators (``t = t + 1``) and loop counters read in a loop
    condition — live across the FSM's wrap-around to the next round, so
    their range conservatively spans the whole body.  This is what makes
    the range safe as a register-sharing oracle.
    """
    if facts is None:
        facts = analyze_thread(thread)
    names = facts.all_defs | facts.all_uses
    last_index = len(facts.statements) - 1 if facts.statements else 0
    ranges: dict[str, LiveRange] = {}
    for name in sorted(names):
        first_def = facts.first_def_index(name)
        first_use_candidates = [
            info.index for info in facts.statements if name in info.uses
        ]
        first_use = min(first_use_candidates) if first_use_candidates else None
        last_use = facts.last_use_index(name)

        start_candidates = [x for x in (first_def, first_use) if x is not None]
        start = min(start_candidates) if start_candidates else 0
        round_carried = first_use is not None and (
            first_def is None or first_use <= first_def
        )
        if round_carried:
            # Live across the wrap-around: the whole body.
            start, end = 0, last_index
        elif last_use is None:
            # Written but never read locally: externally consumed, keep live.
            end = last_index
        else:
            end = last_use
            last_def_indices = [
                info.index for info in facts.statements if name in info.defs
            ]
            if last_def_indices:
                end = max(end, max(last_def_indices))
        ranges[name] = LiveRange(name, start, end)
    return ThreadLifetimes(thread.name, ranges)


@dataclass(frozen=True)
class StorageRequirement:
    """Storage demanded by one variable of one thread."""

    thread: str
    variable: str
    bits: int
    is_shared_endpoint: bool

    @property
    def words18k(self) -> float:
        """Fraction of an 18 Kb BRAM this variable occupies."""
        return self.bits / (18 * 1024)


def storage_requirements(checked: CheckedProgram) -> list[StorageRequirement]:
    """Memory-size analysis: the bits each declared variable needs.

    Shared imports (``SymbolKind.SHARED``) are excluded — their storage is
    accounted for once, in the producing thread.
    """
    shared = checked.shared_variables()
    requirements: list[StorageRequirement] = []
    for thread_name, scope in sorted(checked.scopes.items()):
        for name, symbol in sorted(scope.symbols.items()):
            if symbol.kind in (SymbolKind.SHARED, SymbolKind.CONSTANT):
                continue
            requirements.append(
                StorageRequirement(
                    thread=thread_name,
                    variable=name,
                    bits=symbol.storage_bits,
                    is_shared_endpoint=(thread_name, name) in shared,
                )
            )
    return requirements


def total_bits(checked: CheckedProgram) -> int:
    """Total storage requirement of the whole program, in bits."""
    return sum(req.bits for req in storage_requirements(checked))


def dependency_footprint(checked: CheckedProgram) -> dict[str, int]:
    """Bits of storage guarded per dependency (the producer variable)."""
    footprint: dict[str, int] = {}
    for dep in checked.dependencies:
        symbol: Symbol = checked.symbol(dep.producer_thread, dep.producer_var)
        footprint[dep.dep_id] = symbol.storage_bits
    return footprint
