"""repro — reproduction of *Memory centric thread synchronization on
platform FPGAs* (Kulkarni & Brebner, DATE 2006).

The package implements the paper's entire flow in Python:

* :mod:`repro.hic` — the hic concurrent language front-end;
* :mod:`repro.analysis` — use-def/lifetime analyses, dependency graphs,
  static deadlock detection;
* :mod:`repro.synth` — behavioral synthesis of threads into cycle-accurate
  FSMs;
* :mod:`repro.memory` — BRAM model, allocation, and the dependency list;
* :mod:`repro.core` — the two memory organizations (arbitrated and
  event-driven statically scheduled) plus a lock-based baseline;
* :mod:`repro.rtl` — structural netlists and Verilog emission;
* :mod:`repro.fpga` — Virtex-II Pro area/timing estimation (the ISE
  substitute);
* :mod:`repro.sim` — a two-phase cycle-accurate simulator;
* :mod:`repro.net` — packets, routing, traffic, and the IP forwarder;
* :mod:`repro.flow` — the end-to-end ``compile_design`` /
  ``build_simulation`` driver;
* :mod:`repro.report` — paper-style result tables.

Quick start::

    from repro.flow import compile_design, build_simulation
    from repro.core import Organization
    from repro.net import forwarding_source, forwarding_functions

    design = compile_design(forwarding_source(4),
                            organization=Organization.ARBITRATED)
    print(design.area_report("bram0").table_row())   # (LUT, FF, Slices)
    sim = build_simulation(design, functions=forwarding_functions())
    sim.run(1000)
"""

from .flow import CompiledDesign, Simulation, build_simulation, compile_design

__version__ = "1.0.0"

__all__ = [
    "CompiledDesign",
    "Simulation",
    "build_simulation",
    "compile_design",
    "__version__",
]
