"""Unit tests for lifetime analysis and memory-size estimation."""

from repro.analysis import (
    dependency_footprint,
    storage_requirements,
    thread_lifetimes,
    total_bits,
)
from repro.hic import analyze, parse


def lifetimes_of(source):
    program = parse(source)
    return thread_lifetimes(program.threads[0])


class TestLiveRanges:
    def test_simple_range(self):
        lt = lifetimes_of("thread t () { int x, y; x = 1; y = x; }")
        assert lt.ranges["x"].start == 0
        assert lt.ranges["x"].end == 1

    def test_write_only_variable_stays_live(self):
        # A variable never read locally is externally consumed: live to end.
        lt = lifetimes_of("thread t () { int x, y; x = 1; y = 2; y = y; }")
        assert lt.ranges["x"].end == 2

    def test_overlap_detection(self):
        lt = lifetimes_of("thread t () { int x, y; x = 1; y = x; y = y + x; }")
        assert lt.ranges["x"].overlaps(lt.ranges["y"])

    def test_disjoint_ranges(self):
        lt = lifetimes_of(
            "thread t () { int a, b, c; a = 1; c = a; b = 2; c = b; }"
        )
        pairs = lt.disjoint_pairs()
        assert ("a", "b") in pairs

    def test_interfering_pairs(self):
        lt = lifetimes_of("thread t () { int x, y; x = 1; y = x; y = y + x; }")
        assert ("x", "y") in lt.interfering_pairs()

    def test_span(self):
        lt = lifetimes_of("thread t () { int x, y; x = 1; y = 2; y = x; }")
        assert lt.ranges["x"].span == 3


class TestStorage:
    def test_scalar_bits(self):
        checked = analyze("thread t () { int x; char c; x = c; }")
        reqs = {r.variable: r for r in storage_requirements(checked)}
        assert reqs["x"].bits == 32
        assert reqs["c"].bits == 8

    def test_array_bits(self):
        checked = analyze("thread t () { int a[16], i; i = a[0]; }")
        reqs = {r.variable: r for r in storage_requirements(checked)}
        assert reqs["a"].bits == 16 * 32

    def test_message_bits(self):
        checked = analyze("thread t () { message m; m.ttl = 1; }")
        reqs = {r.variable: r for r in storage_requirements(checked)}
        assert reqs["m"].bits == 160

    def test_shared_import_not_double_counted(self, figure1_checked):
        reqs = storage_requirements(figure1_checked)
        x1_entries = [r for r in reqs if r.variable == "x1"]
        assert len(x1_entries) == 1
        assert x1_entries[0].thread == "t1"

    def test_shared_endpoint_flag(self, figure1_checked):
        reqs = {
            (r.thread, r.variable): r for r in storage_requirements(figure1_checked)
        }
        assert reqs[("t1", "x1")].is_shared_endpoint
        assert not reqs[("t1", "xtmp")].is_shared_endpoint

    def test_total_bits(self, figure1_checked):
        # 7 distinct int variables across the three threads.
        assert total_bits(figure1_checked) == 7 * 32

    def test_words18k_fraction(self):
        checked = analyze("thread t () { int a[576]; a[0] = 1; }")
        req = storage_requirements(checked)[0]
        assert req.words18k == (576 * 32) / (18 * 1024)


class TestDependencyFootprint:
    def test_figure1_footprint(self, figure1_checked):
        footprint = dependency_footprint(figure1_checked)
        assert footprint == {"mt1": 32}

    def test_pipeline_footprint(self, pipeline_checked):
        footprint = dependency_footprint(pipeline_checked)
        assert set(footprint) == {"d1", "d2"}
