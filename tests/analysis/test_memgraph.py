"""Unit tests for the memory access and operation order graphs."""

from repro.analysis import AccessKind, build_memory_graphs
from repro.hic import analyze


class TestOperationOrderGraph:
    def test_figure1_operations(self, figure1_checked):
        __, order = build_memory_graphs(figure1_checked)
        writes = order.writes("x1")
        reads = order.reads("x1")
        assert [op.thread for op in writes] == ["t1"]
        assert sorted(op.thread for op in reads) == ["t2", "t3"]

    def test_program_order_within_thread(self, pipeline_checked):
        __, order = build_memory_graphs(pipeline_checked)
        ops = order.thread_operations("stage2")
        first = [op for op in ops if op.statement_index == 0]
        later = [op for op in ops if op.statement_index == 1]
        assert first and later
        assert order.precedes(first[0], later[0])

    def test_no_order_across_threads(self, figure1_checked):
        __, order = build_memory_graphs(figure1_checked)
        w = order.writes("x1")[0]
        r = order.reads("x1")[0]
        assert not order.precedes(w, r)

    def test_access_kinds(self, figure1_checked):
        __, order = build_memory_graphs(figure1_checked)
        kinds = {op.kind for op in order.variable_operations("x1")}
        assert kinds == {AccessKind.READ, AccessKind.WRITE}


class TestMemoryAccessGraph:
    def test_sizes_recorded(self, figure1_checked):
        access, __ = build_memory_graphs(figure1_checked)
        assert access.sizes[("t1", "x1")] == 32

    def test_shared_access_attributed_to_owner(self, figure1_checked):
        access, __ = build_memory_graphs(figure1_checked)
        # t2 and t3 read x1; those accesses count against t1's storage.
        assert access.count("t1", "x1") >= 3  # 1 write + 2 consumer reads

    def test_loop_weighting(self):
        checked = analyze(
            "thread t () { int i, s; s = 0; while (i) { s = s + 1; } }"
        )
        access, __ = build_memory_graphs(checked)
        # s: write at depth 0 (1) + read+write at depth 1 (4+4)
        assert access.count("t", "s") == 1 + 4 + 4

    def test_affinity_between_covariables(self, figure1_checked):
        access, __ = build_memory_graphs(figure1_checked)
        a = ("t1", "x1")
        b = ("t1", "xtmp")
        assert access.affinity_between(a, b) >= 1

    def test_no_affinity_between_unrelated(self, figure1_checked):
        access, __ = build_memory_graphs(figure1_checked)
        assert access.affinity_between(("t2", "y2"), ("t3", "z2")) == 0

    def test_variables_listing(self, figure1_checked):
        access, __ = build_memory_graphs(figure1_checked)
        assert ("t1", "x1") in access.variables()

    def test_constants_have_no_storage(self):
        checked = analyze(
            "#constant{host, 7}\nthread t () { int x; x = host; }"
        )
        access, __ = build_memory_graphs(checked)
        assert all(var != "host" for (__, var) in access.variables())
