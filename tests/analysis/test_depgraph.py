"""Unit tests for the inter-thread dependency graph."""

import pytest

from repro.analysis import DependencyGraph
from repro.hic import analyze
from tests.conftest import make_fanout_source


def graph_of(checked):
    return DependencyGraph.build(
        checked.dependencies, checked.program.thread_names()
    )


class TestBuild:
    def test_figure1_nodes_edges(self, figure1_checked):
        graph = graph_of(figure1_checked)
        assert graph.threads == {"t1", "t2", "t3"}
        assert len(graph.edges) == 2

    def test_isolated_thread_kept(self):
        checked = analyze(
            """
            thread a () { int p, t;
              #consumer{d,[b,v]}
              p = f(t);
            }
            thread b () { int v;
              #producer{d,[a,p]}
              v = g(p);
            }
            thread idle () { int w; w = 0; }
            """
        )
        graph = graph_of(checked)
        assert "idle" in graph.threads


class TestQueries:
    def test_successors(self, figure1_checked):
        graph = graph_of(figure1_checked)
        assert graph.successors("t1") == ["t2", "t3"]

    def test_predecessors(self, figure1_checked):
        graph = graph_of(figure1_checked)
        assert graph.predecessors("t2") == ["t1"]
        assert graph.predecessors("t1") == []

    def test_produced_consumed_by(self, figure1_checked):
        graph = graph_of(figure1_checked)
        assert [d.dep_id for d in graph.produced_by("t1")] == ["mt1"]
        assert [d.dep_id for d in graph.consumed_by("t3")] == ["mt1"]

    def test_fan_out(self, figure1_checked):
        graph = graph_of(figure1_checked)
        assert graph.fan_out("mt1") == 2
        assert graph.max_fan_out() == 2

    @pytest.mark.parametrize("consumers", [2, 4, 8])
    def test_paper_scenario_fanout(self, consumers):
        checked = analyze(make_fanout_source(consumers))
        graph = graph_of(checked)
        assert graph.max_fan_out() == consumers

    def test_empty_graph_max_fanout(self):
        graph = DependencyGraph.build([], ["a"])
        assert graph.max_fan_out() == 0


class TestStructure:
    def test_figure1_acyclic(self, figure1_checked):
        graph = graph_of(figure1_checked)
        assert graph.thread_cycles() == []

    def test_layers(self, pipeline_checked):
        graph = graph_of(pipeline_checked)
        layers = graph.topological_layers()
        assert layers == [["stage1"], ["stage2"], ["stage3"]]

    def test_cycle_detected(self, deadlock_source):
        checked = analyze(deadlock_source)
        graph = graph_of(checked)
        cycles = graph.thread_cycles()
        assert cycles
        assert set(cycles[0]) == {"ta", "tb"}

    def test_topological_raises_on_cycle(self, deadlock_source):
        checked = analyze(deadlock_source)
        graph = graph_of(checked)
        with pytest.raises(ValueError):
            graph.topological_layers()

    def test_to_dot_mentions_edges(self, figure1_checked):
        dot = graph_of(figure1_checked).to_dot()
        assert '"t1" -> "t2"' in dot
        assert "mt1:x1" in dot
