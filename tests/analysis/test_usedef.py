"""Unit tests for use-def analysis and dependency inference."""

from repro.analysis import analyze_thread, infer_dependencies, linearize, use_def_chains
from repro.hic import parse


def thread_of(source, name=None):
    program = parse(source)
    return program.threads[0] if name is None else program.thread(name)


class TestLinearize:
    def test_simple_assignment(self):
        thread = thread_of("thread t () { int x, y; x = y + 1; }")
        infos = linearize(thread)
        assert len(infos) == 1
        assert infos[0].defs == frozenset({"x"})
        assert infos[0].uses == frozenset({"y"})

    def test_compound_assignment_reads_target(self):
        thread = thread_of("thread t () { int x; x += 1; }")
        infos = linearize(thread)
        assert "x" in infos[0].uses
        assert "x" in infos[0].defs

    def test_array_store_reads_index_and_target(self):
        thread = thread_of("thread t () { int a[4], i, v; a[i] = v; }")
        infos = linearize(thread)
        assert infos[0].defs == frozenset({"a"})
        assert {"i", "v", "a"} <= set(infos[0].uses)

    def test_if_condition_is_a_use(self):
        thread = thread_of("thread t () { int x, y; if (x > 0) { y = 1; } }")
        infos = linearize(thread)
        assert infos[0].uses == frozenset({"x"})
        assert infos[1].defs == frozenset({"y"})

    def test_loop_depth_recorded(self):
        thread = thread_of(
            "thread t () { int i, s; while (i) { s = s + 1; } }"
        )
        infos = linearize(thread)
        body = [info for info in infos if "s" in info.defs]
        assert body[0].loop_depth == 1

    def test_nested_loop_depth(self):
        thread = thread_of(
            "thread t () { int i, j, s; "
            "while (i) { while (j) { s = s + 1; } } }"
        )
        infos = linearize(thread)
        inner = [info for info in infos if "s" in info.defs]
        assert inner[0].loop_depth == 2

    def test_receive_defines_target(self):
        thread = thread_of(
            "#interface{e, gige}\nthread t () { message m; receive(m, e); }"
        )
        infos = linearize(thread)
        assert infos[0].defs == frozenset({"m"})

    def test_transmit_uses_source(self):
        thread = thread_of(
            "#interface{e, gige}\n"
            "thread t () { message m; receive(m, e); transmit(m, e); }"
        )
        infos = linearize(thread)
        assert infos[1].uses == frozenset({"m"})

    def test_for_loop_parts(self):
        thread = thread_of(
            "thread t () { int i, s; for (i = 0; i < 4; i = i + 1) { s += i; } }"
        )
        infos = linearize(thread)
        # init defines i; condition uses i; body and step inside loop
        assert infos[0].defs == frozenset({"i"})
        assert any(info.loop_depth == 1 for info in infos)

    def test_indices_are_sequential(self):
        thread = thread_of("thread t () { int a, b; a = 1; b = 2; a = b; }")
        infos = linearize(thread)
        assert [info.index for info in infos] == [0, 1, 2]


class TestThreadUseDef:
    def test_all_defs_uses(self):
        facts = analyze_thread(
            thread_of("thread t () { int x, y, z; x = y; z = x; }")
        )
        assert facts.all_defs == {"x", "z"}
        assert facts.all_uses == {"y", "x"}

    def test_first_def_last_use(self):
        facts = analyze_thread(
            thread_of("thread t () { int x, y; x = 1; y = x; y = x + 1; }")
        )
        assert facts.first_def_index("x") == 0
        assert facts.last_use_index("x") == 2
        assert facts.first_def_index("nothere") is None

    def test_access_count_weights_loops(self):
        facts = analyze_thread(
            thread_of("thread t () { int i, s; s = 0; while (i) { s = s + 1; } }")
        )
        # s accessed once at depth 0 (weight 1) and once at depth 1 (weight 4)
        assert facts.access_count("s") == 1 + 4

    def test_definitions_and_uses_of(self):
        facts = analyze_thread(
            thread_of("thread t () { int x, y; x = 1; y = x; }")
        )
        assert len(facts.definitions_of("x")) == 1
        assert len(facts.uses_of("x")) == 1


class TestUseDefChains:
    def test_straight_line_chain(self):
        thread = thread_of("thread t () { int x, y; x = 1; y = x; }")
        chains = use_def_chains(thread)
        assert chains[(1, "x")] == [0]

    def test_multiple_reaching_defs(self):
        thread = thread_of(
            "thread t () { int x, y, c; x = 1; if (c) { x = 2; } y = x; }"
        )
        chains = use_def_chains(thread)
        use_key = [k for k in chains if k[1] == "x" and k[0] > 1]
        defs = chains[use_key[-1]]
        assert len(defs) == 2

    def test_loop_back_edge_definition_reaches(self):
        thread = thread_of(
            "thread t () { int i; while (i < 4) { i = i + 1; } }"
        )
        chains = use_def_chains(thread)
        # The use of i inside the loop body sees the back-edge definition.
        in_loop = [(k, v) for k, v in chains.items() if k[1] == "i" and v]
        assert any(any(d >= k[0] for d in v) for k, v in in_loop)


class TestInference:
    def test_figure1_like_inference_without_pragmas(self):
        # Threads share variable names; writer t1, readers t2/t3.
        source = """
        thread t1 () { int x1, a; x1 = f(a); }
        thread t2 () { int y1; y1 = g(x1); }
        thread t3 () { int z1; z1 = h(x1); }
        """
        deps = infer_dependencies(parse(source))
        by_var = {d.producer_var: d for d in deps}
        assert "x1" in by_var
        dep = by_var["x1"]
        assert dep.producer_thread == "t1"
        assert set(dep.consumer_threads()) == {"t2", "t3"}

    def test_multi_writer_variable_skipped(self):
        source = """
        thread a () { int s; s = 1; }
        thread b () { int q; s = 2; q = s; }
        """
        deps = infer_dependencies(parse(source))
        assert all(d.producer_var != "s" for d in deps)

    def test_private_variable_not_inferred(self):
        source = "thread a () { int s, q; s = 1; q = s; }"
        assert infer_dependencies(parse(source)) == []

    def test_inferred_ids_are_stable(self):
        source = """
        thread t1 () { int x, a; x = f(a); }
        thread t2 () { int y; y = g(x); }
        """
        deps = infer_dependencies(parse(source))
        assert deps[0].dep_id == "auto_x"
