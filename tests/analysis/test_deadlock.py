"""Unit tests for static deadlock detection."""

import pytest

from repro.analysis import (
    assert_deadlock_free,
    check_deadlock,
    wait_chain_depth,
)
from repro.hic import analyze


class TestDeadlockDetection:
    def test_figure1_is_deadlock_free(self, figure1_checked):
        report = check_deadlock(figure1_checked)
        assert not report.deadlocked
        assert report.cycle == []

    def test_pipeline_is_deadlock_free(self, pipeline_checked):
        assert not check_deadlock(pipeline_checked).deadlocked

    def test_cross_blocking_deadlocks(self, deadlock_source):
        checked = analyze(deadlock_source)
        report = check_deadlock(checked)
        assert report.deadlocked
        assert len(report.cycle) >= 2

    def test_cycle_without_deadlock(self, cycle_no_deadlock_source):
        # Thread graph is cyclic, but each thread produces before it
        # consumes, so the order is satisfiable.
        checked = analyze(cycle_no_deadlock_source)
        assert not check_deadlock(checked).deadlocked

    def test_self_consistent_two_stage(self):
        source = """
        thread a () { int p, t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v;
          #producer{d,[a,p]}
          v = g(p);
        }
        """
        assert not check_deadlock(analyze(source)).deadlocked

    def test_explain_no_deadlock(self, figure1_checked):
        text = check_deadlock(figure1_checked).explain()
        assert "no static deadlock" in text

    def test_explain_deadlock_names_threads(self, deadlock_source):
        checked = analyze(deadlock_source)
        text = check_deadlock(checked).explain()
        assert "ta" in text and "tb" in text

    def test_assert_helper_raises(self, deadlock_source):
        checked = analyze(deadlock_source)
        with pytest.raises(ValueError, match="deadlock"):
            assert_deadlock_free(checked)

    def test_assert_helper_passes(self, figure1_checked):
        assert_deadlock_free(figure1_checked)


class TestWaitChainDepth:
    def test_figure1_depths(self, figure1_checked):
        depth = wait_chain_depth(figure1_checked.dependencies)
        assert depth["t1"] == 0
        assert depth["t2"] == 1
        assert depth["t3"] == 1

    def test_pipeline_depths(self, pipeline_checked):
        depth = wait_chain_depth(pipeline_checked.dependencies)
        assert depth["stage1"] == 0
        assert depth["stage2"] == 1
        assert depth["stage3"] == 2

    def test_cycle_terminates(self, deadlock_source):
        checked = analyze(deadlock_source)
        depth = wait_chain_depth(checked.dependencies)
        assert set(depth) == {"ta", "tb"}
