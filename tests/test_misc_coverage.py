"""Targeted tests for paths not covered by the per-module suites."""

import pytest

from repro.core import ControllerStats, MemRequest, Organization
from repro.flow import build_simulation, compile_design
from repro.fpga import estimate_design
from repro.hic import TokenKind, tokenize
from repro.hic.errors import HicSyntaxError
from repro.memory import BlockRam
from repro.net import Route, format_ip, ip
from repro.rtl import Module, PortDirection, Register, WrapperParams
from repro.rtl.generate import generate_arbitrated_wrapper, generate_design


class TestControllerStats:
    def test_from_empty_waits(self):
        stats = ControllerStats.from_waits([])
        assert stats.count == 0
        assert stats.deterministic

    def test_deterministic_detection(self):
        assert ControllerStats.from_waits([3, 3, 3]).deterministic
        assert not ControllerStats.from_waits([3, 4]).deterministic

    def test_mean(self):
        stats = ControllerStats.from_waits([1, 2, 3])
        assert stats.mean_wait == pytest.approx(2.0)
        assert stats.min_wait == 1
        assert stats.max_wait == 3


class TestLexerStrings:
    def test_string_literal_token(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == '"hello world"'

    def test_string_with_escape(self):
        tokens = tokenize(r'"a\"b"')
        assert tokens[0].kind is TokenKind.STRING

    def test_unterminated_string(self):
        with pytest.raises(HicSyntaxError):
            tokenize('"never closed')

    def test_token_str_and_value_guards(self):
        token = tokenize("abc")[0]
        assert "abc" in str(token)
        with pytest.raises(ValueError):
            token.int_value  # noqa: B018
        with pytest.raises(ValueError):
            token.char_value  # noqa: B018


class TestUtilizationDetails:
    def test_bram_utilization_fraction(self):
        wrapper = generate_arbitrated_wrapper(WrapperParams(consumers=2))
        top = generate_design("top", [wrapper], [])
        report = estimate_design(top)
        assert report.bram_utilization == pytest.approx(1 / 88)

    def test_zero_bram_device(self):
        from repro.fpga.device import Device

        tiny = Device("FAKE", slices=10, bram_blocks=0, multipliers=0,
                      ppc_cores=0)
        wrapper = generate_arbitrated_wrapper(WrapperParams(consumers=2))
        top = generate_design("top", [wrapper], [])
        report = estimate_design(top, device=tiny)
        assert report.bram_utilization == 0.0
        assert not report.fits


class TestRouteFormatting:
    def test_route_str(self):
        route = Route(ip(10, 1, 0, 0), 16, 3)
        assert str(route) == "10.1.0.0/16 -> port 3"

    def test_format_ip_zero(self):
        assert format_ip(0) == "0.0.0.0"


class TestExecutorErrorPaths:
    def test_message_on_register_raises(self):
        # Force a bogus transmit of a scalar via a hand-built design: the
        # parser prevents this, so call the helper directly.
        design = compile_design("thread t () { int x; x = 1; }")
        sim = build_simulation(design)
        executor = sim.executors["t"]
        with pytest.raises(KeyError, match="not BRAM-resident"):
            executor._load_message("x")

    def test_kernel_reset_clears_controllers(self, tmp_path):
        design = compile_design(
            "thread a () { int p, t;"
            " #consumer{d,[b,v]}\n p = f(t); }"
            "thread b () { int v;"
            " #producer{d,[a,p]}\n v = g(p); }"
        )
        sim = build_simulation(design)
        sim.run(100)
        assert sim.controllers["bram0"].latency_samples
        sim.kernel.reset()
        assert sim.controllers["bram0"].latency_samples == []
        assert sim.kernel.cycle == 0


class TestNetlistEdges:
    def test_grandchild_modules_deduplicated(self):
        leaf = Module(name="leaf")
        leaf.add_port("clk", PortDirection.INPUT)
        leaf.add_instance("r", Register(width=1), {"clk": "clk"})
        mid = Module(name="mid")
        mid.add_instance("u", leaf)
        top = Module(name="top")
        top.add_instance("m1", mid)
        top.add_instance("m2", mid)
        names = sorted(m.name for m in top.child_modules())
        assert names == ["leaf", "mid"]


class TestOrganizationEnum:
    def test_values_match_cli_choices(self):
        assert {o.value for o in Organization} == {
            "arbitrated",
            "event_driven",
            "lock_baseline",
        }


class TestBramPortAccounting:
    def test_distinct_ports_in_trace(self):
        bram = BlockRam("b", trace_enabled=True)
        bram.write(0, 1, cycle=0, port="D")
        bram.read(0, cycle=1, port="C")
        bram.read(0, cycle=2, port="A")
        ports = [access.port for access in bram.trace]
        assert ports == ["D", "C", "A"]


class TestRequestKey:
    def test_key_identity(self):
        a = MemRequest("t", "C", 3, False, dep_id="d")
        b = MemRequest("t", "C", 3, False, dep_id="d")
        assert a.key == b.key
        assert a == b
