"""Unit tests for the BRAM model."""

import pytest

from repro.memory import (
    ASPECT_RATIOS,
    BRAM_BITS,
    BlockRam,
    aspect_ratio_for_width,
)


class TestAspectRatios:
    def test_all_ratios_are_18kb(self):
        for depth, width in ASPECT_RATIOS:
            assert depth * width == 16 * 1024 or depth * width == BRAM_BITS
            assert depth * width <= BRAM_BITS

    def test_ratio_for_narrow_width(self):
        assert aspect_ratio_for_width(1) == (16384, 1)

    def test_ratio_for_32_bits(self):
        assert aspect_ratio_for_width(32) == (512, 36)

    def test_ratio_for_9_bits(self):
        assert aspect_ratio_for_width(9) == (2048, 9)

    def test_too_wide_raises(self):
        with pytest.raises(ValueError):
            aspect_ratio_for_width(37)


class TestBlockRam:
    def test_default_config(self):
        bram = BlockRam("b0")
        assert bram.depth == 512
        assert bram.width == 36

    def test_write_read_roundtrip(self):
        bram = BlockRam("b0")
        bram.write(5, 1234)
        assert bram.read(5) == 1234

    def test_write_truncates_to_width(self):
        bram = BlockRam("b0", depth=2048, width=9)
        bram.write(0, 0xFFFF)
        assert bram.read(0) == 0x1FF

    def test_initial_contents_zero(self):
        bram = BlockRam("b0")
        assert bram.read(0) == 0
        assert bram.read(511) == 0

    def test_out_of_range_read(self):
        bram = BlockRam("b0")
        with pytest.raises(IndexError):
            bram.read(512)

    def test_out_of_range_write(self):
        bram = BlockRam("b0")
        with pytest.raises(IndexError):
            bram.write(-1, 0)

    def test_invalid_aspect_ratio_rejected(self):
        with pytest.raises(ValueError):
            BlockRam("b0", depth=100, width=36)

    def test_load_preset(self):
        bram = BlockRam("b0")
        bram.load([1, 2, 3])
        assert [bram.peek(i) for i in range(3)] == [1, 2, 3]

    def test_load_too_many_words(self):
        bram = BlockRam("b0")
        with pytest.raises(ValueError):
            bram.load([0] * 513)

    def test_trace_records_accesses(self):
        bram = BlockRam("b0", trace_enabled=True)
        bram.write(1, 42, cycle=3, port="D")
        bram.read(1, cycle=4, port="C")
        trace = bram.trace
        assert len(trace) == 2
        assert trace[0].write and trace[0].port == "D"
        assert not trace[1].write and trace[1].cycle == 4

    def test_trace_disabled_by_default(self):
        bram = BlockRam("b0")
        bram.write(1, 42)
        assert bram.trace == []

    def test_clear_trace(self):
        bram = BlockRam("b0", trace_enabled=True)
        bram.write(1, 42)
        bram.clear_trace()
        assert bram.trace == []

    def test_peek_has_no_trace_side_effect(self):
        bram = BlockRam("b0", trace_enabled=True)
        bram.peek(0)
        assert bram.trace == []

    def test_utilization(self):
        bram = BlockRam("b0")
        assert bram.utilization(256) == pytest.approx(0.5)
