"""Unit tests for the dependency list (the §3.1 guard structure)."""

import pytest

from repro.hic import analyze
from repro.memory import DependencyEntry, DependencyList, allocate
from tests.conftest import make_fanout_source


def build_figure1_list(figure1_checked):
    mm = allocate(figure1_checked)
    return DependencyList.build("bram0", figure1_checked.dependencies, mm)


class TestConstruction:
    def test_build_from_figure1(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        assert len(deplist) == 1
        entry = deplist.entries[0]
        assert entry.dep_id == "mt1"
        assert entry.dependency_number == 2
        assert entry.producer_thread == "t1"
        assert entry.consumer_threads == ("t2", "t3")

    def test_base_address_matches_allocation(self, figure1_checked):
        mm = allocate(figure1_checked)
        deplist = DependencyList.build("bram0", figure1_checked.dependencies, mm)
        assert deplist.entries[0].base_address == mm.placement("t1", "x1").base_address

    def test_wrong_bram_rejected(self, figure1_checked):
        mm = allocate(figure1_checked)
        with pytest.raises(ValueError):
            DependencyList.build("bram9", figure1_checked.dependencies, mm)

    @pytest.mark.parametrize("consumers", [2, 4, 8])
    def test_fanout_dependency_numbers(self, consumers):
        checked = analyze(make_fanout_source(consumers))
        mm = allocate(checked)
        deplist = DependencyList.build("bram0", checked.dependencies, mm)
        assert deplist.entries[0].dependency_number == consumers


class TestCamMatch:
    def test_match_hits_guarded_address(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        address = deplist.entries[0].base_address
        assert deplist.match(address) is deplist.entries[0]

    def test_match_misses_unguarded_address(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        assert deplist.match(499) is None

    def test_entry_for_by_id(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        assert deplist.entry_for("mt1").dep_id == "mt1"
        with pytest.raises(KeyError):
            deplist.entry_for("nothere")


class TestGuardProtocol:
    def test_consumer_blocks_before_write(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        address = deplist.entries[0].base_address
        assert not deplist.consumer_read_allowed(address)

    def test_producer_allowed_when_idle(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        address = deplist.entries[0].base_address
        assert deplist.producer_write_allowed(address)

    def test_write_arms_dn_reads(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        address = deplist.entries[0].base_address
        deplist.note_producer_write(address)
        assert deplist.consumer_read_allowed(address)
        assert not deplist.producer_write_allowed(address)
        deplist.note_consumer_read(address)
        assert deplist.consumer_read_allowed(address)
        deplist.note_consumer_read(address)
        # Cycle complete: guard disarms, producer may write again.
        assert not deplist.consumer_read_allowed(address)
        assert deplist.producer_write_allowed(address)

    def test_extra_consumer_read_rejected(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        address = deplist.entries[0].base_address
        with pytest.raises(RuntimeError):
            deplist.note_consumer_read(address)

    def test_unguarded_write_has_no_entry(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        assert not deplist.producer_write_allowed(400)
        with pytest.raises(KeyError):
            deplist.note_producer_write(400)

    def test_unguarded_read_is_defensively_granted(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        assert deplist.consumer_read_allowed(400)

    def test_reset_clears_counters(self, figure1_checked):
        deplist = build_figure1_list(figure1_checked)
        address = deplist.entries[0].base_address
        deplist.note_producer_write(address)
        deplist.reset()
        assert not deplist.consumer_read_allowed(address)


class TestHardwareSizing:
    def test_counter_bits_scale_with_dn(self):
        entry2 = DependencyEntry("a", 2, 0, "p", ("c0", "c1"))
        entry8 = DependencyEntry("b", 8, 1, "p", tuple(f"c{i}" for i in range(8)))
        assert entry2.counter_bits == 2
        assert entry8.counter_bits == 4

    def test_list_counter_bits_is_max(self):
        deplist = DependencyList(
            bram="b",
            entries=[
                DependencyEntry("a", 2, 0, "p", ("c0", "c1")),
                DependencyEntry("b", 8, 1, "p", tuple(f"c{i}" for i in range(8))),
            ],
        )
        assert deplist.counter_bits == 4

    def test_empty_list_counter_bits(self):
        assert DependencyList(bram="b").counter_bits == 1

    def test_storage_bits(self):
        deplist = DependencyList(
            bram="b",
            entries=[DependencyEntry("a", 2, 0, "p", ("c0", "c1"))],
            address_bits=9,
        )
        # 9 addr + 2 counter + 1 valid
        assert deplist.storage_bits() == 12
