"""Unit tests for memory allocation."""

import pytest

from repro.analysis import build_memory_graphs
from repro.hic import analyze
from repro.memory import (
    WORDS_PER_BRAM,
    Residency,
    allocate,
    dependencies_per_bram,
)
from repro.memory.allocation import symbol_words
from repro.synth import message_words
from tests.conftest import make_fanout_source


class TestResidency:
    def test_produced_variable_is_bram_resident(self, figure1_checked):
        mm = allocate(figure1_checked)
        assert mm.is_bram_resident("t1", "x1")

    def test_private_scalar_stays_in_registers(self, figure1_checked):
        mm = allocate(figure1_checked)
        placement = mm.placement("t1", "xtmp")
        assert placement.residency is Residency.REGISTER

    def test_consumer_target_is_register(self, figure1_checked):
        # Only the guarded (produced) address needs BRAM.
        mm = allocate(figure1_checked)
        assert mm.placement("t2", "y1").residency is Residency.REGISTER

    def test_array_is_bram_resident(self):
        checked = analyze("thread t () { int a[8], i; i = a[0]; }")
        mm = allocate(checked)
        assert mm.is_bram_resident("t", "a")

    def test_message_is_bram_resident(self):
        checked = analyze("thread t () { message m; m.ttl = 1; }")
        mm = allocate(checked)
        assert mm.is_bram_resident("t", "m")


class TestWordLayout:
    def test_scalar_int_occupies_one_word(self, figure1_checked):
        mm = allocate(figure1_checked)
        assert mm.placement("t1", "x1").words == 1

    def test_array_word_per_element(self):
        checked = analyze("thread t () { int a[16], i; i = a[0]; }")
        mm = allocate(checked)
        assert mm.placement("t", "a").words == 16

    def test_message_field_per_word(self):
        checked = analyze("thread t () { message m; m.ttl = 1; }")
        mm = allocate(checked)
        assert mm.placement("t", "m").words == message_words()

    def test_symbol_words_rejects_wide_array_elements(self):
        checked = analyze("type wide : 40;\nthread t () { int x; x = 1; }")
        # build a fake symbol through the scope API
        from repro.hic.semantic import Symbol
        from repro.hic.types import BitsType

        symbol = Symbol("w", BitsType("wide", 40), array_size=4)
        with pytest.raises(ValueError):
            symbol_words(symbol)

    def test_no_address_overlap_within_bram(self, figure1_checked):
        mm = allocate(figure1_checked)
        for bram in mm.bram_names:
            placements = mm.bram_variables(bram)
            cursor = 0
            for p in placements:
                assert p.base_address >= cursor
                cursor = p.base_address + p.words


class TestPacking:
    def test_figure1_fits_one_bram(self, figure1_checked):
        mm = allocate(figure1_checked)
        assert mm.bram_count() == 1

    def test_overflow_spills_to_second_bram(self):
        # Two 400-word arrays cannot share one 512-word BRAM.
        checked = analyze(
            "thread t () { int a[400], i; i = a[0]; }\n"
            "thread u () { int b[400], j; j = b[0]; }"
        )
        mm = allocate(checked)
        assert mm.bram_count() == 2

    def test_variable_too_big_for_any_bram(self):
        checked = analyze("thread t () { int a[600], i; i = a[0]; }")
        with pytest.raises(ValueError, match="more than one BRAM"):
            allocate(checked)

    def test_force_single_bram_success(self, figure1_checked):
        mm = allocate(figure1_checked, force_single_bram=True)
        assert mm.bram_count() == 1

    def test_force_single_bram_overflow_raises(self):
        checked = analyze(
            "thread t () { int a[400], i; i = a[0]; }\n"
            "thread u () { int b[400], j; j = b[0]; }"
        )
        with pytest.raises(ValueError, match="force_single_bram"):
            allocate(checked, force_single_bram=True)

    def test_affinity_guided_packing_runs(self, figure1_checked):
        access, __ = build_memory_graphs(figure1_checked)
        mm = allocate(figure1_checked, access=access)
        assert mm.is_bram_resident("t1", "x1")

    def test_fill_never_exceeds_capacity(self):
        checked = analyze(
            "\n".join(
                f"thread t{i} () {{ int a{i}[100], x{i}; x{i} = a{i}[0]; }}"
                for i in range(12)
            )
        )
        mm = allocate(checked)
        for bram in mm.bram_names:
            assert mm.bram_fill[bram] <= WORDS_PER_BRAM

    def test_register_bits(self, figure1_checked):
        mm = allocate(figure1_checked)
        # xtmp, x2, y1, y2, z1, z2 are registers: 6 * 32 bits
        assert mm.register_bits() == 6 * 32

    def test_utilization(self, figure1_checked):
        mm = allocate(figure1_checked)
        assert 0 < mm.utilization("bram0") < 0.01

    def test_unknown_placement_raises(self, figure1_checked):
        mm = allocate(figure1_checked)
        with pytest.raises(KeyError):
            mm.placement("t1", "ghost")


class TestDependencyGrouping:
    def test_figure1_grouping(self, figure1_checked):
        mm = allocate(figure1_checked)
        groups = dependencies_per_bram(mm, figure1_checked.dependencies)
        assert [d.dep_id for d in groups["bram0"]] == ["mt1"]

    @pytest.mark.parametrize("consumers", [2, 4, 8])
    def test_fanout_scenarios_single_bram(self, consumers):
        checked = analyze(make_fanout_source(consumers))
        mm = allocate(checked, force_single_bram=True)
        groups = dependencies_per_bram(mm, checked.dependencies)
        assert len(groups["bram0"]) == 1
        assert groups["bram0"][0].dependency_number == consumers


class TestAffinityPacking:
    def test_first_fit_preserved_with_affinity(self):
        # Affinity may reorder co-location but never opens extra BRAMs.
        from repro.analysis import build_memory_graphs
        from repro.net import multi_pair_source

        checked = analyze(multi_pair_source(3, 2))
        access, __ = build_memory_graphs(checked)
        without = allocate(checked)
        with_affinity = allocate(checked, access=access)
        assert with_affinity.bram_count() == without.bram_count() == 1

    def test_affine_variables_colocate_when_spilling(self):
        # Two threads, each with a big array + a small scalar sharing its
        # thread's accesses: when the arrays force two BRAMs, each scalar
        # should land beside its own thread's array.
        source = """
        thread ta () { int big_a[400], xa, sa[4]; xa = big_a[0] + sa[0]; }
        thread tb () { int big_b[400], xb, sb[4]; xb = big_b[0] + sb[0]; }
        """
        from repro.analysis import build_memory_graphs

        checked = analyze(source)
        access, __ = build_memory_graphs(checked)
        mm = allocate(checked, access=access)
        assert mm.bram_count() == 2
        assert (
            mm.placement("ta", "sa").bram == mm.placement("ta", "big_a").bram
        )
        assert (
            mm.placement("tb", "sb").bram == mm.placement("tb", "big_b").bram
        )
